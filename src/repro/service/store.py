"""Content-addressed, crash-safe persistence for assessment results.

The :class:`ReportStore` maps a *content key* — a SHA-1 over the scenario
fingerprint (:func:`repro.runtime.fingerprint_scenario`), the job kind,
and the expected result quality — to the job's serialised result
document.  Because the key covers data content rather than scenario
names, a job submitted twice for identical scenario content is served
from the store the second time, across processes if a spool directory is
configured.

Layout of the spool directory: one ``<key>.json`` file per entry,
written atomically (temp file + fsync + rename) so a crashed writer
never leaves a torn document behind.  Every spooled envelope carries a
SHA-256 checksum of its document; an entry that fails to parse or whose
checksum does not verify is **quarantined** — moved into
``<spool>/quarantine/`` rather than deleted, so operators can inspect
what went wrong — and treated as a miss.  A recovery scan runs on
startup (and on demand via :meth:`recover`), sweeping damaged entries
aside before they can poison reads.

Writes retry under a small :class:`~repro.resilience.RetryPolicy`
(transient ``OSError`` only); ``store.read`` / ``store.write`` /
``store.fsync`` are named fault-injection sites, and spooled text passes
through :func:`~repro.resilience.corrupt_text` so chaos tests can
manufacture exactly the torn files the quarantine machinery exists for.

The spool no longer grows without bound: optional **LRU eviction caps**
(``max_entries`` for the in-memory map, ``max_spool_bytes`` for the
on-disk spool) trigger a sweep after every put.  The sweep never evicts
an entry whose key is *protected* — the attached scheduler registers its
unsettled journal-referenced store keys via :attr:`protected_keys`, so a
result a recovering job still needs cannot be evicted out from under it.
Evictions are counted on ``store_evictions``.

Hits/misses/puts/quarantines are counted on the attached
:class:`~repro.runtime.metrics.RuntimeMetrics` (``store_hits``,
``store_misses``, ``store_puts``, ``store_quarantined``,
``store_write_retries``, ``store_evictions``), which is how the
service's ``/metrics`` endpoint exposes store effectiveness and damage.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from collections.abc import Callable
from pathlib import Path

from ..resilience import RetryPolicy, call_with_retry, corrupt_text, fault_point
from ..runtime import RuntimeMetrics, fingerprint_scenario

#: Store format marker embedded in every spooled document.
STORE_VERSION = 2

#: Spool versions this reader accepts.  Version-1 envelopes predate the
#: checksum field and are readable (trusted as-written); version-2
#: envelopes must verify.
READABLE_VERSIONS = (1, STORE_VERSION)

#: Subdirectory of the spool where damaged entries are set aside.
QUARANTINE_DIRNAME = "quarantine"

#: Spool writes retry transient I/O errors a few times with short
#: backoff; deterministic (seeded) so chaos tests are reproducible.
SPOOL_RETRY_POLICY = RetryPolicy(
    max_attempts=3,
    base_delay=0.01,
    max_delay=0.1,
    retry_on=(OSError,),
    seed=0,
)


def job_key(scenario, kind: str, quality: str | None = None) -> str:
    """The content address of one (scenario content, kind, quality) job."""
    digest = hashlib.sha1()
    digest.update(fingerprint_scenario(scenario).encode())
    digest.update(b"\x1f")
    digest.update(kind.encode("utf-8"))
    digest.update(b"\x1f")
    digest.update((quality or "").encode("utf-8"))
    return digest.hexdigest()


def document_checksum(doc: dict) -> str:
    """Canonical SHA-256 of a result document (sorted-key JSON)."""
    canonical = json.dumps(doc, sort_keys=True, ensure_ascii=False)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class StoreCorruptionError(ValueError):
    """A spooled envelope failed validation (parse or checksum)."""


class ReportStore:
    """An in-memory + optional on-disk map of content key -> result doc.

    ``directory=None`` keeps the store purely in memory; with a directory
    every put is spooled to disk and misses fall back to the spool, so
    results survive process restarts.  Damaged spool entries are
    quarantined, never silently served.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        metrics: RuntimeMetrics | None = None,
        *,
        recover_on_start: bool = True,
        max_entries: int | None = None,
        max_spool_bytes: int | None = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        if max_spool_bytes is not None and max_spool_bytes < 0:
            raise ValueError(
                f"max_spool_bytes must be >= 0, got {max_spool_bytes}"
            )
        self.directory = Path(directory) if directory is not None else None
        self.metrics = metrics if metrics is not None else RuntimeMetrics()
        #: LRU cap on the in-memory map (``None`` = unbounded).  Evicted
        #: entries still live in the spool and re-enter on the next get.
        self.max_entries = max_entries
        #: Byte cap on the on-disk spool (``None`` = unbounded); sweeps
        #: delete the least-recently-written unprotected entries.
        self.max_spool_bytes = max_spool_bytes
        #: Optional callable returning the set of store keys eviction
        #: must never touch — the scheduler points this at its unsettled
        #: journal-referenced keys so crash recovery keeps its promises.
        self.protected_keys: Callable[[], set[str]] | None = None
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, dict] = OrderedDict()
        self._quarantined_total = 0
        self.last_recovery: dict | None = None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            if recover_on_start:
                self.recover()

    # -- core protocol ----------------------------------------------------

    def get(self, key: str) -> dict | None:
        """The stored document, or ``None``; counts a hit or a miss."""
        with self._lock:
            doc = self._entries.get(key)
            if doc is not None:
                self._entries.move_to_end(key)
        if doc is None and self.directory is not None:
            doc = self._read_spool(key)
            if doc is not None:
                with self._lock:
                    self._entries[key] = doc
                    self._entries.move_to_end(key)
        if doc is None:
            self.metrics.increment("store_misses")
            return None
        self.metrics.increment("store_hits")
        return doc

    def contains(self, key: str) -> bool:
        """Membership without touching the hit/miss counters."""
        with self._lock:
            if key in self._entries:
                return True
        return (
            self.directory is not None and (self._spool_path(key)).exists()
        )

    def put(self, key: str, doc: dict) -> None:
        with self._lock:
            self._entries[key] = doc
            self._entries.move_to_end(key)
        self.metrics.increment("store_puts")
        if self.directory is not None:
            call_with_retry(
                self._write_spool,
                key,
                doc,
                policy=SPOOL_RETRY_POLICY,
                on_retry=lambda attempt, delay, exc: self.metrics.increment(
                    "store_write_retries"
                ),
            )
        if self.max_entries is not None or self.max_spool_bytes is not None:
            self.sweep()

    # -- spool ------------------------------------------------------------

    @property
    def quarantine_directory(self) -> Path | None:
        if self.directory is None:
            return None
        return self.directory / QUARANTINE_DIRNAME

    def _spool_path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def _decode_envelope(self, text: str) -> dict | None:
        """The document inside a spooled envelope, validated.

        Returns ``None`` for foreign versions (not readable, not an
        error), raises :class:`StoreCorruptionError` for anything torn:
        bad JSON, missing document, or a checksum mismatch.
        """
        try:
            envelope = json.loads(text)
        except ValueError as exc:
            raise StoreCorruptionError(f"not valid JSON: {exc}") from exc
        if not isinstance(envelope, dict):
            raise StoreCorruptionError("envelope is not an object")
        version = envelope.get("version")
        if version not in READABLE_VERSIONS:
            return None
        document = envelope.get("document")
        if not isinstance(document, dict):
            raise StoreCorruptionError("envelope has no document")
        if version >= 2:
            expected = envelope.get("checksum")
            actual = document_checksum(document)
            if expected != actual:
                raise StoreCorruptionError(
                    f"checksum mismatch: envelope says {expected!r}, "
                    f"document hashes to {actual!r}"
                )
        return document

    def _read_spool(self, key: str) -> dict | None:
        path = self._spool_path(key)
        try:
            fault_point("store.read", key=key)
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None  # missing entry (or injected read fault): a miss
        try:
            return self._decode_envelope(text)
        except StoreCorruptionError:
            self._quarantine(path)
            return None

    def _write_spool(self, key: str, doc: dict) -> None:
        envelope = {
            "version": STORE_VERSION,
            "key": key,
            "checksum": document_checksum(doc),
            "document": doc,
        }
        text = json.dumps(envelope, sort_keys=True, ensure_ascii=False)
        text = corrupt_text("store.write", text, key=key)
        path = self._spool_path(key)
        temporary = path.with_suffix(
            f".tmp.{os.getpid()}.{threading.get_ident()}"
        )
        fault_point("store.write", key=key)
        with temporary.open("w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            fault_point("store.fsync", key=key)
            os.fsync(handle.fileno())
        temporary.replace(path)

    def _quarantine(self, path: Path) -> None:
        """Set a damaged spool file aside (never served, never deleted)."""
        quarantine = self.quarantine_directory
        try:
            quarantine.mkdir(parents=True, exist_ok=True)
            path.replace(quarantine / path.name)
        except OSError:  # pragma: no cover - racing cleanup/permissions
            try:
                path.unlink()
            except OSError:
                return
        self._quarantined_total += 1
        self.metrics.increment("store_quarantined")

    # -- recovery ---------------------------------------------------------

    def recover(self) -> dict:
        """Scan the spool, quarantining every damaged entry.

        Runs automatically on startup for directory-backed stores, so a
        crash mid-write (or bit rot between runs) costs exactly the
        damaged entries — the healthy remainder keeps serving.  Returns
        and remembers a summary: ``{"scanned", "valid", "quarantined"}``.
        """
        summary = {"scanned": 0, "valid": 0, "quarantined": 0}
        if self.directory is None:
            self.last_recovery = summary
            return summary
        for path in sorted(self.directory.glob("*.json")):
            summary["scanned"] += 1
            try:
                text = path.read_text(encoding="utf-8")
                self._decode_envelope(text)
            except StoreCorruptionError:
                self._quarantine(path)
                summary["quarantined"] += 1
            except OSError:  # pragma: no cover - concurrent removal
                continue
            else:
                summary["valid"] += 1
        # Stale temp files from a crashed writer are garbage, not data:
        # they were never renamed into place, so nothing references them.
        for stale in self.directory.glob("*.tmp.*"):
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - concurrent cleanup
                pass
        self.last_recovery = summary
        return summary

    # -- maintenance ------------------------------------------------------

    def sweep(self) -> int:
        """LRU eviction down to the configured caps; returns evictions.

        Two caps, swept independently: ``max_entries`` trims the
        in-memory map (spool files stay, so trimmed entries are demoted
        to disk, not lost), ``max_spool_bytes`` deletes the oldest spool
        files until the directory fits.  A key reported by
        :attr:`protected_keys` — a result an unsettled journalled job
        still references — is never evicted by either sweep.
        """
        protected: set[str] = set()
        if self.protected_keys is not None:
            try:
                protected = set(self.protected_keys())
            except Exception:  # noqa: BLE001 - protection must not break puts
                protected = set()
        evicted = self._sweep_memory(protected) + self._sweep_spool(protected)
        if evicted:
            self.metrics.increment("store_evictions", evicted)
        return evicted

    def _sweep_memory(self, protected: set[str]) -> int:
        evicted = 0
        if self.max_entries is None:
            return evicted
        with self._lock:
            while len(self._entries) > self.max_entries:
                victim = next(
                    (k for k in self._entries if k not in protected), None
                )
                if victim is None:
                    break  # everything left is protected: over-cap is fine
                del self._entries[victim]
                evicted += 1
        return evicted

    def _sweep_spool(self, protected: set[str]) -> int:
        evicted = 0
        if self.max_spool_bytes is None or self.directory is None:
            return evicted
        files: list[tuple[float, int, Path]] = []
        total = 0
        for path in self.directory.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - concurrent removal
                continue
            files.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        files.sort()
        for _, size, path in files:
            if total <= self.max_spool_bytes:
                break
            if path.stem in protected:
                continue
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent removal
                continue
            total -= size
            evicted += 1
            with self._lock:
                self._entries.pop(path.stem, None)
        return evicted

    def clear(self, *, spool: bool = False) -> None:
        """Drop the in-memory entries (and, optionally, the spool files)."""
        with self._lock:
            self._entries.clear()
        if spool and self.directory is not None:
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - concurrent cleanup
                    pass

    def spooled_count(self) -> int:
        if self.directory is None:
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))

    def quarantined_count(self) -> int:
        """Damaged entries currently set aside in the quarantine dir."""
        quarantine = self.quarantine_directory
        if quarantine is None or not quarantine.is_dir():
            return 0
        return sum(1 for _ in quarantine.glob("*.json"))

    def stats(self) -> dict:
        return {
            "entries": len(self),
            "spooled": self.spooled_count(),
            "quarantined": self.quarantined_count(),
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        where = str(self.directory) if self.directory else "memory"
        return f"ReportStore({len(self)} entries, spool={where})"
