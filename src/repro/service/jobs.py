"""The assessment-service job model.

A *job* is one unit of effort-estimation work submitted to the
:class:`~repro.service.scheduler.JobScheduler`: a full pipeline run
(``estimate``), a phase-1-only run (``assess``), or an arbitrary callable
(``callable``, used by tests and extensions).  Jobs carry a priority, an
optional per-job timeout, and a cancellation event that detectors and
custom payloads can observe cooperatively.

State machine::

    QUEUED ──> RUNNING ──> DONE
       │          ├──────> FAILED     (exception or timeout)
       └──────────┴──────> CANCELLED

``DONE`` jobs submitted for content already in the report store never
enter the queue at all — they are born ``DONE`` with ``from_store=True``.
"""

from __future__ import annotations

import dataclasses
import enum
import threading
import time
import uuid
from collections.abc import Callable

#: The job kinds the scheduler knows how to execute.
JOB_KINDS = ("assess", "estimate", "callable")


class JobState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def is_terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class SchedulerClosedError(RuntimeError):
    """The scheduler is shut down and accepts no further submissions."""


class QueueFullError(RuntimeError):
    """Backpressure: the bounded job queue is at capacity.

    Carries an explicit ``retry_after`` hint (seconds) derived from the
    queue depth and observed job durations; the HTTP API surfaces it as a
    ``Retry-After`` header on a 503 response.
    """

    def __init__(self, depth: int, retry_after: float) -> None:
        super().__init__(
            f"job queue is full ({depth} queued); retry in ~{retry_after:g}s"
        )
        self.depth = depth
        self.retry_after = retry_after


class JobCancelled(Exception):
    """Raised inside a payload that observes its cancellation event."""


@dataclasses.dataclass
class Job:
    """One submitted assessment/estimation job and its lifecycle record.

    Mutable fields are only written while holding the owning scheduler's
    lock; payload code must treat jobs as read-only apart from checking
    ``cancel_event``.
    """

    kind: str
    scenario_name: str = ""
    quality: str | None = None
    priority: int = 0
    timeout: float | None = None
    #: Content-address in the report store (``None`` for callable jobs).
    store_key: str | None = None
    id: str = dataclasses.field(default_factory=lambda: uuid.uuid4().hex[:12])
    #: Correlation ID stamped on every event-log record and span the job
    #: produces; defaults to the job id, overridable at submission (the
    #: HTTP API maps the ``X-Correlation-ID`` request header here).
    correlation_id: str = ""
    #: Client-supplied dedup key (the HTTP ``Idempotency-Key`` header).
    #: While a key is inside the scheduler's dedup window, a repeated
    #: submit returns the original job instead of enqueueing a second
    #: execution — the contract that makes post-crash client retries
    #: safe.  The journal persists keys, so the window survives restarts.
    idempotency_key: str | None = None
    #: True when this job was rebuilt from the journal by crash recovery
    #: rather than submitted by a caller in this process lifetime.
    recovered: bool = dataclasses.field(default=False, repr=False)
    #: True when the journal shows the job was RUNNING at the crash; it
    #: is re-executed idempotently (results are content-addressed, so a
    #: partial first execution cannot double-count).
    interrupted: bool = dataclasses.field(default=False, repr=False)
    #: True once the job's ``submitted`` record is in the journal; only
    #: journalled jobs write ``dispatched``/``settled`` records (a
    #: callable job without a ``payload_ref`` is ephemeral by design).
    journalled: bool = dataclasses.field(default=False, repr=False)
    state: JobState = JobState.QUEUED
    result: dict | None = None
    error: str | None = None
    from_store: bool = False
    #: Serialised root span (``service.job:<id>``) of the executed job,
    #: set when the owning scheduler traces jobs; served by
    #: ``GET /trace/<job_id>``.
    trace: dict | None = dataclasses.field(
        default=None, repr=False, compare=False
    )
    created_at: float = dataclasses.field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    #: Monotonic deadline, set when the job starts running with a timeout.
    deadline: float | None = None
    #: True once the deadline reaper fired: the cancel event is set, the
    #: slot is reclaimed, and the payload has until ``grace_deadline`` to
    #: reach a checkpoint and settle with whatever partial it earned.
    deadline_fired: bool = dataclasses.field(default=False, repr=False)
    #: Monotonic hard stop for a deadline-fired job; past it the job is
    #: settled FAILED even if the payload never cooperates.
    grace_deadline: float | None = dataclasses.field(default=None, repr=False)
    cancel_event: threading.Event = dataclasses.field(
        default_factory=threading.Event, repr=False, compare=False
    )
    #: The work itself; set by the scheduler for assess/estimate jobs and
    #: by the submitter for callable jobs.  Receives the job, returns the
    #: result document.
    payload: Callable[["Job"], dict] | None = dataclasses.field(
        default=None, repr=False, compare=False
    )
    #: Released-slot guard: a timed-out/cancelled running job frees its
    #: worker slot exactly once even though the abandoned payload thread
    #: finishes later.
    slot_released: bool = dataclasses.field(default=False, repr=False)
    #: Set by the watchdog when the job overran the stuck threshold while
    #: still running; diagnostic only (the job may yet finish).
    stuck: bool = dataclasses.field(default=False, repr=False)
    #: Retry hint (seconds) attached when the job failed for a transient
    #: reason — e.g. it was queued when a graceful drain began.
    retry_after: float | None = dataclasses.field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not self.correlation_id:
            self.correlation_id = self.id

    def check_cancelled(self) -> None:
        """Cooperative cancellation point for payloads."""
        if self.cancel_event.is_set():
            raise JobCancelled(self.id)

    @property
    def duration_seconds(self) -> float | None:
        if self.started_at is None:
            return None
        end = self.finished_at if self.finished_at is not None else time.time()
        return end - self.started_at

    @property
    def queued_seconds(self) -> float | None:
        """Time spent waiting in the queue before a slot picked the job."""
        if self.started_at is None:
            return None
        return max(0.0, self.started_at - self.created_at)

    def snapshot(self) -> dict:
        """A JSON-compatible status view (the HTTP API's job resource)."""
        return {
            "id": self.id,
            "kind": self.kind,
            "scenario": self.scenario_name,
            "quality": self.quality,
            "priority": self.priority,
            "timeout": self.timeout,
            "state": self.state.value,
            "error": self.error,
            "from_store": self.from_store,
            "deadline_fired": self.deadline_fired,
            "stuck": self.stuck,
            "retry_after": self.retry_after,
            "correlation_id": self.correlation_id,
            "idempotency_key": self.idempotency_key,
            "recovered": self.recovered,
            "interrupted": self.interrupted,
            "has_trace": self.trace is not None,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "queued_seconds": self.queued_seconds,
            "duration_seconds": self.duration_seconds,
        }
