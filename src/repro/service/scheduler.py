"""The concurrent job scheduler of the assessment service.

Submissions enter a **bounded priority queue** (higher ``priority`` runs
first, FIFO within a priority); when the queue is at capacity the
scheduler rejects with :class:`~repro.service.jobs.QueueFullError`
carrying an explicit retry-after hint — callers experience backpressure,
never a hang.  A dispatcher thread pops jobs into at most ``workers``
concurrent slots; each job executes with the scheduler's
:class:`~repro.runtime.Runtime` activated, so detector fan-out, profile
caching, and instrumentation all go through the shared runtime layer.

Per-job **timeouts** are enforced by the dispatcher: an overdue job is
marked ``FAILED``, its cancellation event is set (cooperative payloads
stop at their next check), its slot is released immediately, and the
abandoned payload thread is left to drain in the background — a stuck
detector cannot wedge the service.  **Cancellation** works on queued jobs
(they simply never start) and on running jobs (event + immediate slot
release, result discarded).

Resilience layer (see :mod:`repro.resilience`):

* every terminal transition funnels through ``_settle_locked`` — a job
  settles exactly once; late settle attempts (an abandoned payload
  finishing after its timeout fired) are counted on
  ``jobs_double_settle_averted`` instead of clobbering the record,
* a per-scheduler :class:`~repro.resilience.CircuitBreaker` trips after
  consecutive job failures; while open, new submissions are rejected
  with :class:`~repro.resilience.CircuitOpenError` (503 + Retry-After
  over HTTP) — but results already in the report store are still served,
* an optional **watchdog** (``stuck_after``) marks jobs that overrun the
  threshold, records breaker failures for them, and flags the
  ``stuck_workers`` health reason,
* :meth:`close` is a **graceful drain**: the health state machine enters
  ``draining``, running jobs finish, queued jobs fail with an explicit
  ``retry_after`` hint instead of silently disappearing,
* ``scheduler.dispatch`` is a named fault-injection site: an injected
  dispatch fault fails the popped job but never kills the dispatcher.

Results of assess/estimate jobs are serialised documents
(:mod:`repro.core.serialize`) and are written to the content-addressed
:class:`~repro.service.store.ReportStore`; a later submission with
identical scenario content completes instantly from the store.  With the
default ``strict=False``, a failing detector or planner degrades its
module instead of failing the job — the result document then carries a
``degradations`` list alongside the surviving reports.
"""

from __future__ import annotations

import heapq
import itertools
import os
import threading
import time
from collections.abc import Callable
from contextlib import contextmanager

from ..core import default_efes
from ..core.framework import Efes
from ..core.quality import ResultQuality
from ..core.serialize import estimate_to_dict, reports_to_dict
from ..observability import (
    EVENT_LOG_ENV_VAR,
    EventLog,
    Tracer,
    correlation_scope,
    span_to_dict,
    tracing,
)
from ..resilience import (
    CircuitBreaker,
    CircuitState,
    DegradedResult,
    HealthMonitor,
    fault_point,
    format_exception,
    split_degraded,
)
from ..runtime import Runtime
from .jobs import (
    Job,
    JobCancelled,
    JobState,
    QueueFullError,
    SchedulerClosedError,
)
from .store import ReportStore, job_key

#: Fallback per-job duration estimate (seconds) for the retry-after hint
#: before any job has completed.
_DEFAULT_JOB_SECONDS = 1.0

#: Error message of jobs failed by a graceful drain.
DRAINING_ERROR = "scheduler is draining; job was not started"


def _parse_quality(quality: ResultQuality | str | None) -> ResultQuality:
    if isinstance(quality, ResultQuality):
        return quality
    if quality in ("low", "low_effort"):
        return ResultQuality.LOW_EFFORT
    return ResultQuality.HIGH_QUALITY


class JobScheduler:
    """Queue + worker slots + report store over one assessment runtime."""

    def __init__(
        self,
        efes: Efes | None = None,
        runtime: Runtime | None = None,
        store: ReportStore | None = None,
        *,
        workers: int = 2,
        max_queue: int = 64,
        default_timeout: float | None = None,
        trace: bool = True,
        event_log: EventLog | None = None,
        breaker: CircuitBreaker | None = None,
        stuck_after: float | None = None,
        strict: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        if stuck_after is not None and stuck_after <= 0:
            raise ValueError(
                f"stuck_after must be positive, got {stuck_after}"
            )
        self._owns_runtime = runtime is None and (
            efes is None or efes.runtime is None
        )
        if runtime is None:
            runtime = efes.runtime if efes and efes.runtime else Runtime()
        self.runtime = runtime
        self.efes = efes if efes is not None else default_efes(runtime=runtime)
        self.store = (
            store if store is not None else ReportStore(metrics=runtime.metrics)
        )
        self.workers = workers
        self.max_queue = max_queue
        self.default_timeout = default_timeout
        #: Pipeline failure policy for assess/estimate payloads:
        #: ``False`` (default) degrades failed modules into the result
        #: document's ``degradations`` list; ``True`` fails the job.
        self.strict = strict
        #: Per-job tracing: each executed job runs under its own tracer
        #: and keeps its serialised ``service.job:<id>`` span tree.
        self.trace = trace
        #: Structured lifecycle events, correlated per job.  Default
        #: logs honour ``$REPRO_EVENT_LOG`` as a JSONL sink, so chaos CI
        #: runs capture the lifecycle stream as an artifact.
        if event_log is not None:
            self.events = event_log
        else:
            self.events = EventLog(
                path=os.environ.get(EVENT_LOG_ENV_VAR) or None
            )
        #: Health state machine surfaced by ``/healthz``.
        self.health = HealthMonitor()
        #: Consecutive-failure breaker guarding job admission.
        self.breaker = (
            breaker
            if breaker is not None
            else CircuitBreaker(name="jobs")
        )
        self.breaker.add_listener(self._breaker_transition)
        self.stuck_after = stuck_after

        self._lock = threading.RLock()
        self._wake = threading.Condition(self._lock)  # dispatcher wake-ups
        self._finished = threading.Condition(self._lock)  # waiters on jobs
        self._queue: list[tuple[int, int, Job]] = []
        self._sequence = itertools.count()
        self._jobs: dict[str, Job] = {}
        self._running: dict[str, Job] = {}
        self._free_slots = workers
        self._open = True
        self._completed_jobs = 0
        self._completed_seconds = 0.0
        self._watchdog_stop = threading.Event()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-service-dispatch", daemon=True
        )
        self._dispatcher.start()
        self._watchdog: threading.Thread | None = None
        if stuck_after is not None:
            self._watchdog = threading.Thread(
                target=self._watchdog_loop,
                name="repro-service-watchdog",
                daemon=True,
            )
            self._watchdog.start()

    @property
    def metrics(self):
        return self.runtime.metrics

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self,
        scenario,
        kind: str = "estimate",
        quality: ResultQuality | str | None = None,
        *,
        priority: int = 0,
        timeout: float | None = None,
        correlation_id: str | None = None,
    ) -> Job:
        """Queue an assess/estimate job for ``scenario``; returns the job.

        Raises :class:`QueueFullError` (with ``retry_after``) when the
        bounded queue is at capacity, :class:`SchedulerClosedError` after
        shutdown, :class:`~repro.resilience.CircuitOpenError` while the
        breaker is open.  Identical scenario content with a stored result
        completes immediately (``from_store=True``) without queueing —
        even through an open breaker, because serving the store costs no
        execution.  ``correlation_id`` stamps every event-log record and
        span the job produces (default: the job id).
        """
        if kind not in ("assess", "estimate"):
            raise ValueError(
                f"unknown job kind {kind!r}; expected 'assess' or 'estimate'"
            )
        resolved_quality = _parse_quality(quality)
        key = job_key(
            scenario,
            kind,
            resolved_quality.value if kind == "estimate" else None,
        )
        job = Job(
            kind=kind,
            scenario_name=scenario.name,
            quality=resolved_quality.value if kind == "estimate" else None,
            priority=priority,
            timeout=timeout if timeout is not None else self.default_timeout,
            store_key=key,
            correlation_id=correlation_id or "",
        )
        self.metrics.increment("jobs_submitted")
        self.events.emit(
            "job.submitted",
            correlation_id=job.correlation_id,
            job_id=job.id,
            kind=job.kind,
            scenario=job.scenario_name,
            priority=job.priority,
        )
        stored = self.store.get(key)
        if stored is not None:
            job.state = JobState.DONE
            job.result = stored
            job.from_store = True
            job.finished_at = time.time()
            self.metrics.increment("jobs_from_store")
            with self._lock:
                self._jobs[job.id] = job
            self.events.emit(
                "job.finished",
                correlation_id=job.correlation_id,
                job_id=job.id,
                state=job.state.value,
                from_store=True,
            )
            return job
        # Admission control happens after the store check on purpose:
        # cached answers are free, so an open breaker only blocks work
        # that would actually execute.
        self.breaker.allow()
        job.payload = self._payload_for(job, scenario, resolved_quality)
        self._enqueue(job)
        return job

    def submit_callable(
        self,
        payload: Callable[[Job], dict],
        *,
        name: str = "callable",
        priority: int = 0,
        timeout: float | None = None,
    ) -> Job:
        """Queue an arbitrary payload (tests, extensions, maintenance).

        The payload receives the job (use ``job.check_cancelled()`` at
        convenient points) and returns the result document.
        """
        self.breaker.allow()
        job = Job(
            kind="callable",
            scenario_name=name,
            priority=priority,
            timeout=timeout if timeout is not None else self.default_timeout,
            payload=payload,
        )
        self.metrics.increment("jobs_submitted")
        self._enqueue(job)
        return job

    def _payload_for(
        self, job: Job, scenario, quality: ResultQuality
    ) -> Callable[[Job], dict]:
        if job.kind == "assess":

            def assess_payload(job: Job) -> dict:
                reports = self.efes.assess(scenario, strict=self.strict)
                job.check_cancelled()
                clean, degraded = split_degraded(reports)
                with self._serialize_phase():
                    doc = {
                        "kind": "assess",
                        "scenario": scenario.name,
                        "reports": reports_to_dict(clean),
                    }
                    if degraded:
                        doc["degradations"] = [d.to_dict() for d in degraded]
                    return doc

            return assess_payload

        def estimate_payload(job: Job) -> dict:
            degradations: list[DegradedResult] = []
            reports = self.efes.assess(scenario, strict=self.strict)
            job.check_cancelled()
            clean, assess_degraded = split_degraded(reports)
            degradations.extend(assess_degraded)
            estimate = self.efes.estimate(
                scenario,
                quality,
                reports=clean,
                strict=self.strict,
                degradations=degradations,
            )
            job.check_cancelled()
            with self._serialize_phase():
                doc = {
                    "kind": "estimate",
                    "scenario": scenario.name,
                    "quality": quality.value,
                    "reports": reports_to_dict(clean),
                    "estimate": estimate_to_dict(estimate),
                }
                if degradations:
                    doc["degradations"] = [
                        d.to_dict() for d in degradations
                    ]
                return doc

        return estimate_payload

    @contextmanager
    def _serialize_phase(self):
        """Span + histogram around result-document serialisation."""
        started = time.perf_counter()
        with tracing.span("serialize"), self.metrics.time_stage("serialize"):
            yield
        self.metrics.observe(
            "job_phase_seconds",
            time.perf_counter() - started,
            phase="serialize",
        )

    def _enqueue(self, job: Job) -> None:
        with self._lock:
            if not self._open:
                raise SchedulerClosedError("scheduler is shut down")
            depth = self._queue_depth_locked()
            if depth >= self.max_queue:
                self.metrics.increment("jobs_rejected")
                raise QueueFullError(depth, self._retry_after_locked(depth))
            heapq.heappush(
                self._queue, (-job.priority, next(self._sequence), job)
            )
            self._jobs[job.id] = job
            self._wake.notify_all()

    # ------------------------------------------------------------------
    # Settling: every terminal transition goes through here, exactly once
    # ------------------------------------------------------------------

    def _settle_locked(
        self,
        job: Job,
        state: JobState,
        *,
        error: str | None = None,
        result: dict | None = None,
        retry_after: float | None = None,
    ) -> bool:
        """Move ``job`` to a terminal ``state``; the ONLY place that may.

        Returns ``False`` — and counts ``jobs_double_settle_averted`` —
        when the job already settled (e.g. its timeout fired while the
        payload was still serialising its result, and the abandoned
        payload thread now reports in late).  The first settle wins; a
        late attempt never clobbers state, result, or metrics.
        """
        if job.state.is_terminal:
            self.metrics.increment("jobs_double_settle_averted")
            return False
        job.state = state
        job.finished_at = time.time()
        if error is not None:
            job.error = error
        if result is not None:
            job.result = result
        if retry_after is not None:
            job.retry_after = retry_after
        self._running.pop(job.id, None)
        if job.started_at is not None:
            self._release_slot_locked(job)
            self._record_duration_locked(job)
        self._finished.notify_all()
        return True

    # ------------------------------------------------------------------
    # Dispatch + execution
    # ------------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        with self._lock:
            while True:
                now = time.monotonic()
                self._reap_expired_locked(now)
                if not self._open and not self._queue and not self._running:
                    return
                job = self._pop_runnable_locked()
                if job is not None:
                    try:
                        fault_point(
                            "scheduler.dispatch",
                            job_id=job.id,
                            kind=job.kind,
                            scenario=job.scenario_name,
                        )
                    except OSError as exc:
                        # An injected (or real) dispatch failure costs
                        # this job, never the dispatcher.
                        if self._settle_locked(
                            job,
                            JobState.FAILED,
                            error=format_exception(exc),
                        ):
                            self.metrics.increment("jobs_failed")
                            self.breaker.record_failure()
                            self.events.emit(
                                "job.dispatch_failed",
                                correlation_id=job.correlation_id,
                                job_id=job.id,
                                error=job.error,
                            )
                        continue
                    self._free_slots -= 1
                    job.state = JobState.RUNNING
                    job.started_at = time.time()
                    if job.timeout is not None:
                        job.deadline = now + job.timeout
                    self._running[job.id] = job
                    threading.Thread(
                        target=self._run_job,
                        args=(job,),
                        name=f"repro-service-job-{job.id}",
                        daemon=True,
                    ).start()
                    continue
                self._wake.wait(timeout=self._next_deadline_delay_locked())

    def _pop_runnable_locked(self) -> Job | None:
        if self._free_slots <= 0:
            return None
        while self._queue:
            _, _, job = heapq.heappop(self._queue)
            if job.state is JobState.QUEUED:
                return job
            # Cancelled while queued: already terminal, skip the husk.
        return None

    def _next_deadline_delay_locked(self) -> float | None:
        deadlines = [
            job.deadline
            for job in self._running.values()
            if job.deadline is not None
        ]
        if not deadlines:
            return None
        return max(0.0, min(deadlines) - time.monotonic()) + 0.005

    def _reap_expired_locked(self, now: float) -> None:
        for job in list(self._running.values()):
            if job.deadline is not None and now >= job.deadline:
                job.cancel_event.set()
                if not self._settle_locked(
                    job,
                    JobState.FAILED,
                    error=f"timed out after {job.timeout:g}s",
                ):
                    continue
                self.metrics.increment("jobs_timeout")
                self.metrics.increment("jobs_failed")
                self.breaker.record_failure()
                self.events.emit(
                    "job.timeout",
                    correlation_id=job.correlation_id,
                    job_id=job.id,
                    timeout=job.timeout,
                )

    def _run_job(self, job: Job) -> None:
        result: dict | None = None
        error: str | None = None
        cancelled = False
        tracer = Tracer() if self.trace else None
        with correlation_scope(job.correlation_id):
            self.events.emit(
                "job.started",
                job_id=job.id,
                kind=job.kind,
                scenario=job.scenario_name,
                queued_seconds=job.queued_seconds,
            )
            if job.queued_seconds is not None:
                self.metrics.observe(
                    "job_phase_seconds", job.queued_seconds, phase="queued"
                )
            started = time.perf_counter()
            try:
                with self.runtime.activated():
                    if tracer is None:
                        job.check_cancelled()
                        result = job.payload(job)
                    else:
                        with tracer.activated(), tracing.span(
                            f"service.job:{job.id}",
                            kind=job.kind,
                            scenario=job.scenario_name,
                            correlation_id=job.correlation_id,
                        ):
                            job.check_cancelled()
                            result = job.payload(job)
            except JobCancelled:
                cancelled = True
            except Exception as exc:  # noqa: BLE001 - job isolation boundary
                error = f"{type(exc).__name__}: {exc}"
            self.metrics.observe(
                "job_phase_seconds",
                time.perf_counter() - started,
                phase="running",
            )
            if tracer is not None and tracer.root is not None:
                job.trace = span_to_dict(tracer.root)
            self._finish(job, result, error, cancelled)
            self.events.emit(
                "job.finished",
                job_id=job.id,
                state=job.state.value,
                error=job.error,
                duration_seconds=job.duration_seconds,
                from_store=False,
            )

    def _finish(
        self, job: Job, result: dict | None, error: str | None, cancelled: bool
    ) -> None:
        with self._lock:
            if cancelled or job.cancel_event.is_set():
                if self._settle_locked(job, JobState.CANCELLED):
                    self.metrics.increment("jobs_cancelled")
            elif error is not None:
                if self._settle_locked(job, JobState.FAILED, error=error):
                    self.metrics.increment("jobs_failed")
                    self.breaker.record_failure()
            else:
                if self._settle_locked(job, JobState.DONE, result=result):
                    self.metrics.increment("jobs_completed")
                    self.breaker.record_success()
                    if job.store_key is not None and result is not None:
                        self._store_result_locked(job, result)
            # A late arrival (the job settled by timeout or cancel while
            # the payload drained) still releases its slot idempotently.
            self._release_slot_locked(job)
            self._wake.notify_all()
            self._finished.notify_all()

    def _store_result_locked(self, job: Job, result: dict) -> None:
        """Spool the result; a failing spool never fails a DONE job."""
        store_started = time.perf_counter()
        try:
            self.store.put(job.store_key, result)
        except OSError as exc:
            # The in-memory result stands; persistence is best-effort.
            self.metrics.increment("store_put_failures")
            self.events.emit(
                "store.write_failed",
                correlation_id=job.correlation_id,
                job_id=job.id,
                error=format_exception(exc),
            )
        self.metrics.observe(
            "job_phase_seconds",
            time.perf_counter() - store_started,
            phase="store",
        )

    def _release_slot_locked(self, job: Job) -> None:
        if not job.slot_released:
            job.slot_released = True
            self._free_slots += 1
            self._wake.notify_all()

    def _record_duration_locked(self, job: Job) -> None:
        duration = job.duration_seconds
        if duration is not None:
            self._completed_jobs += 1
            self._completed_seconds += duration

    # ------------------------------------------------------------------
    # Watchdog + breaker + health
    # ------------------------------------------------------------------

    def _breaker_transition(
        self, previous: CircuitState, state: CircuitState
    ) -> None:
        self.metrics.increment("breaker_transitions")
        self.events.emit(
            "breaker.state",
            previous=previous.value,
            state=state.value,
        )
        # Half-open still means "recovering": the replica stays flagged
        # until a probe succeeds and the breaker closes.
        self.health.set_reason(
            "circuit_open", state is not CircuitState.CLOSED
        )

    def _watchdog_loop(self) -> None:
        interval = max(0.02, min(self.stuck_after / 2.0, 1.0))
        while not self._watchdog_stop.wait(interval):
            now = time.time()
            newly_stuck: list[Job] = []
            any_stuck = False
            with self._lock:
                for job in self._running.values():
                    if (
                        job.started_at is not None
                        and now - job.started_at >= self.stuck_after
                    ):
                        any_stuck = True
                        if not job.stuck:
                            job.stuck = True
                            newly_stuck.append(job)
            for job in newly_stuck:
                self.metrics.increment("jobs_stuck")
                self.events.emit(
                    "job.stuck",
                    correlation_id=job.correlation_id,
                    job_id=job.id,
                    running_seconds=now - (job.started_at or now),
                    stuck_after=self.stuck_after,
                )
                # A wedged worker is a failure the breaker must see even
                # though no exception ever surfaces.
                self.breaker.record_failure()
            self.health.set_reason("stuck_workers", any_stuck)

    def health_snapshot(self) -> dict:
        """Health + breaker + store damage, as ``/healthz`` reports it."""
        self.health.set_reason(
            "store_quarantine", self.store.quarantined_count() > 0
        )
        doc = self.health.snapshot()
        doc["breaker"] = self.breaker.snapshot()
        return doc

    # ------------------------------------------------------------------
    # Inspection + control
    # ------------------------------------------------------------------

    def job(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.created_at)

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued or running job; terminal jobs are left as-is."""
        with self._lock:
            job = self._jobs[job_id]
            if job.state in (JobState.QUEUED, JobState.RUNNING):
                job.cancel_event.set()
                if self._settle_locked(job, JobState.CANCELLED):
                    self.metrics.increment("jobs_cancelled")
                    self.events.emit(
                        "job.cancelled",
                        correlation_id=job.correlation_id,
                        job_id=job.id,
                    )
            return job

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job reaches a terminal state (or timeout)."""
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._lock:
            job = self._jobs[job_id]
            while not job.state.is_terminal:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                self._finished.wait(timeout=remaining)
            return job

    def _queue_depth_locked(self) -> int:
        return sum(
            1 for _, _, job in self._queue if job.state is JobState.QUEUED
        )

    def _retry_after_locked(self, depth: int) -> float:
        average = (
            self._completed_seconds / self._completed_jobs
            if self._completed_jobs
            else _DEFAULT_JOB_SECONDS
        )
        waves = (depth + self.workers) / self.workers
        return round(max(1.0, waves * average), 1)

    def stats(self) -> dict:
        with self._lock:
            busy = self.workers - self._free_slots
            stuck = sum(1 for job in self._running.values() if job.stuck)
            return {
                "open": self._open,
                "workers": self.workers,
                "busy_workers": busy,
                "free_workers": self._free_slots,
                "worker_utilisation": busy / self.workers,
                "max_queue": self.max_queue,
                "queue_depth": self._queue_depth_locked(),
                "running": len(self._running),
                "stuck": stuck,
                "jobs_total": len(self._jobs),
                "completed_jobs": self._completed_jobs,
                "average_job_seconds": (
                    self._completed_seconds / self._completed_jobs
                    if self._completed_jobs
                    else None
                ),
                "breaker": self.breaker.snapshot(),
            }

    def close(self, *, wait: bool = True, timeout: float | None = 10.0) -> None:
        """Graceful drain: finish running jobs, fail queued ones.

        The health state machine enters ``draining`` (terminal); queued
        jobs settle ``FAILED`` with :data:`DRAINING_ERROR` and an
        explicit ``retry_after`` hint so clients know to resubmit, while
        running jobs get up to ``timeout`` seconds to complete.
        """
        with self._lock:
            if not self._open:
                return
            self._open = False
            self.health.start_draining()
            depth = self._queue_depth_locked()
            hint = self._retry_after_locked(depth) if depth else None
            for _, _, job in self._queue:
                if job.state is JobState.QUEUED:
                    job.cancel_event.set()
                    if self._settle_locked(
                        job,
                        JobState.FAILED,
                        error=DRAINING_ERROR,
                        retry_after=hint,
                    ):
                        self.metrics.increment("jobs_drained")
                        self.events.emit(
                            "job.drained",
                            correlation_id=job.correlation_id,
                            job_id=job.id,
                            retry_after=hint,
                        )
            self._queue.clear()
            self._wake.notify_all()
            self._finished.notify_all()
        if wait:
            deadline = (
                time.monotonic() + timeout if timeout is not None else None
            )
            with self._lock:
                while self._running:
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                    self._finished.wait(timeout=remaining)
        self._watchdog_stop.set()
        if self._watchdog is not None:
            self._watchdog.join(timeout=1.0)
        self._dispatcher.join(timeout=1.0)
        if self._owns_runtime:
            self.runtime.close()

    def __enter__(self) -> "JobScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"JobScheduler(workers={self.workers}, "
            f"queued={stats['queue_depth']}/{self.max_queue}, "
            f"running={stats['running']})"
        )
