"""The concurrent job scheduler of the assessment service.

Submissions enter a **bounded priority queue** (higher ``priority`` runs
first, FIFO within a priority); when the queue is at capacity the
scheduler rejects with :class:`~repro.service.jobs.QueueFullError`
carrying an explicit retry-after hint — callers experience backpressure,
never a hang.  A dispatcher thread pops jobs into at most ``workers``
concurrent slots; each job executes with the scheduler's
:class:`~repro.runtime.Runtime` activated, so detector fan-out, profile
caching, and instrumentation all go through the shared runtime layer.

Per-job **deadlines** are enforced by the dispatcher in two phases.
When a job overruns its ``timeout`` the reaper *fires* the deadline: the
cancellation event is set, the worker slot is reclaimed immediately, and
the payload — running under a :class:`~repro.runtime.CancelScope`, so
every ``checkpoint()`` in the detector/profiling/planning hot loops
observes it — gets ``deadline_grace`` seconds to unwind.  A payload that
reaches a checkpoint in time settles ``DONE`` with whatever *partial*
estimate it earned (unrun modules become degradation tombstones and the
result document carries ``deadline_exceeded: true``); one that never
cooperates is settled ``FAILED`` at the grace deadline, its abandoned
thread left to drain in the background — a stuck detector cannot wedge
the service.  Deadline partials are never written to the report store:
they are budget-dependent, and a later full-budget submission of the
same scenario must not be served a truncated answer.  **Cancellation**
works on queued jobs (they simply never start) and on running jobs
(event + immediate slot release, result discarded).

Resilience layer (see :mod:`repro.resilience`):

* every terminal transition funnels through ``_settle_locked`` — a job
  settles exactly once; late settle attempts (an abandoned payload
  finishing after its timeout fired) are counted on
  ``jobs_double_settle_averted`` instead of clobbering the record,
* a per-scheduler :class:`~repro.resilience.CircuitBreaker` trips after
  consecutive job failures; while open, new submissions are rejected
  with :class:`~repro.resilience.CircuitOpenError` (503 + Retry-After
  over HTTP) — but results already in the report store are still served,
* an optional **watchdog** (``stuck_after``) marks jobs that overrun the
  threshold, records breaker failures for them, and flags the
  ``stuck_workers`` health reason,
* :meth:`close` is a **graceful drain**: the health state machine enters
  ``draining``, running jobs finish, queued jobs fail with an explicit
  ``retry_after`` hint instead of silently disappearing,
* ``scheduler.dispatch`` is a named fault-injection site: an injected
  dispatch fault fails the popped job but never kills the dispatcher.

Results of assess/estimate jobs are serialised documents
(:mod:`repro.core.serialize`) and are written to the content-addressed
:class:`~repro.service.store.ReportStore`; a later submission with
identical scenario content completes instantly from the store.  With the
default ``strict=False``, a failing detector or planner degrades its
module instead of failing the job — the result document then carries a
``degradations`` list alongside the surviving reports.

Durability layer (see :mod:`repro.durability`): with a ``journal``
configured, every acknowledged submission is written ahead to the
:class:`~repro.durability.JobJournal` (fsynced before the ack under the
default flush policy), ``dispatched``/``settled`` transitions follow as
advisory records, and construction replays whatever journal a crashed
predecessor left behind through a
:class:`~repro.durability.RecoveryManager` — re-enqueueing unsettled
jobs, settling crashed-but-stored ones from the spool, and rebuilding
the **idempotency-key** dedup window so a client retrying a submit
after a crash neither loses nor double-runs work.
"""

from __future__ import annotations

import heapq
import itertools
import os
import threading
import time
from collections import OrderedDict
from collections.abc import Callable
from contextlib import contextmanager

from ..core import default_efes
from ..core.framework import Efes
from ..core.quality import ResultQuality
from ..core.serialize import estimate_to_dict, reports_to_dict
from ..observability import (
    EVENT_LOG_ENV_VAR,
    EventLog,
    ResourceSampler,
    SLOMonitor,
    Tracer,
    correlation_scope,
    span_to_dict,
    tracing,
)
from ..resilience import (
    CircuitBreaker,
    CircuitState,
    DegradedResult,
    HealthMonitor,
    fault_point,
    format_exception,
    split_degraded,
)
from ..durability import (
    JobJournal,
    JournalError,
    RecoveryManager,
    dispatched_record,
    settled_record,
    submitted_record,
)
from ..runtime import (
    BACKEND_ENV_VAR,
    CancelScope,
    Deadline,
    OperationCancelled,
    Runtime,
)
from ..runtime.deadline import DEFAULT_GRACE
from .jobs import (
    Job,
    JobCancelled,
    JobState,
    QueueFullError,
    SchedulerClosedError,
)
from .store import ReportStore, job_key

#: Fallback per-job duration estimate (seconds) for the retry-after hint
#: before any job has completed.
_DEFAULT_JOB_SECONDS = 1.0

#: Error message of jobs failed by a graceful drain.
DRAINING_ERROR = "scheduler is draining; job was not started"


def _parse_quality(quality: ResultQuality | str | None) -> ResultQuality:
    if isinstance(quality, ResultQuality):
        return quality
    if quality in ("low", "low_effort"):
        return ResultQuality.LOW_EFFORT
    return ResultQuality.HIGH_QUALITY


class JobScheduler:
    """Queue + worker slots + report store over one assessment runtime."""

    def __init__(
        self,
        efes: Efes | None = None,
        runtime: Runtime | None = None,
        store: ReportStore | None = None,
        *,
        workers: int = 2,
        max_queue: int = 64,
        default_timeout: float | None = None,
        trace: bool = True,
        event_log: EventLog | None = None,
        breaker: CircuitBreaker | None = None,
        stuck_after: float | None = None,
        strict: bool = False,
        journal: JobJournal | None = None,
        payload_resolver: Callable[[str, "Job"], Callable | None] | None = None,
        scenario_resolver: Callable[[str, int | None], object] | None = None,
        idempotency_window: int = 256,
        slo: SLOMonitor | None = None,
        deadline_grace: float = DEFAULT_GRACE,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        if deadline_grace < 0:
            raise ValueError(
                f"deadline_grace must be >= 0, got {deadline_grace}"
            )
        if stuck_after is not None and stuck_after <= 0:
            raise ValueError(
                f"stuck_after must be positive, got {stuck_after}"
            )
        if idempotency_window < 0:
            raise ValueError(
                f"idempotency_window must be >= 0, got {idempotency_window}"
            )
        self._owns_runtime = runtime is None and (
            efes is None or efes.runtime is None
        )
        if runtime is None:
            # Honour $REPRO_RUNTIME_BACKEND (serial/threads/process/auto)
            # so a service deployment selects its assessment backend the
            # same way the CLI does.
            runtime = (
                efes.runtime
                if efes and efes.runtime
                else Runtime(backend=os.environ.get(BACKEND_ENV_VAR, "serial"))
            )
        self.runtime = runtime
        self.efes = efes if efes is not None else default_efes(runtime=runtime)
        self.store = (
            store if store is not None else ReportStore(metrics=runtime.metrics)
        )
        self.workers = workers
        self.max_queue = max_queue
        self.default_timeout = default_timeout
        #: Pipeline failure policy for assess/estimate payloads:
        #: ``False`` (default) degrades failed modules into the result
        #: document's ``degradations`` list; ``True`` fails the job.
        self.strict = strict
        #: Seconds a deadline-fired payload gets to reach a checkpoint
        #: and settle with its partial result before the reaper settles
        #: it ``FAILED`` (the slot is reclaimed at fire time either way).
        self.deadline_grace = deadline_grace
        #: Per-job tracing: each executed job runs under its own tracer
        #: and keeps its serialised ``service.job:<id>`` span tree.
        self.trace = trace
        #: Structured lifecycle events, correlated per job.  Default
        #: logs honour ``$REPRO_EVENT_LOG`` as a JSONL sink, so chaos CI
        #: runs capture the lifecycle stream as an artifact.
        if event_log is not None:
            self.events = event_log
        else:
            self.events = EventLog(
                path=os.environ.get(EVENT_LOG_ENV_VAR) or None
            )
        # The runtime's worker telemetry (fallback records, absorbed
        # worker events) lands in the service's lifecycle stream unless
        # the runtime already has a sink of its own.
        if getattr(self.runtime, "events", None) is None:
            self.runtime.events = self.events
        #: Health state machine surfaced by ``/healthz``.
        self.health = HealthMonitor()
        #: Multi-window burn-rate SLOs over settled-job outcomes,
        #: surfaced by ``GET /slo`` and folded into the health state.
        self.slo = slo if slo is not None else SLOMonitor()
        #: Per-process resource telemetry (RSS, CPU, GC, spool IO),
        #: published as ``process_*`` gauges on ``/metrics``.
        self.sampler = ResourceSampler(self.runtime.metrics)
        #: Consecutive-failure breaker guarding job admission.
        self.breaker = (
            breaker
            if breaker is not None
            else CircuitBreaker(name="jobs")
        )
        self.breaker.add_listener(self._breaker_transition)
        self.stuck_after = stuck_after
        #: Write-ahead job journal (``None`` = durability off).  When
        #: set, every acknowledged submission is journalled + fsynced
        #: before ``submit`` returns, and construction runs crash
        #: recovery over whatever the previous process left behind.
        self.journal = journal
        #: Rebuilds callable-job payloads at recovery: called with
        #: ``(payload_ref, job)``, returns the payload or ``None``.
        self.payload_resolver = payload_resolver
        #: Rebuilds scenarios at recovery: called with ``(scenario_ref,
        #: seed)``; defaults to :func:`repro.scenarios.resolve_scenario`.
        self.scenario_resolver = scenario_resolver
        self.idempotency_window = idempotency_window
        #: Recovery summary of the journal replay run at construction
        #: (``None`` without a journal); surfaced by ``/healthz``.
        self.recovery_summary: dict | None = None

        self._lock = threading.RLock()
        self._wake = threading.Condition(self._lock)  # dispatcher wake-ups
        self._finished = threading.Condition(self._lock)  # waiters on jobs
        self._queue: list[tuple[int, int, Job]] = []
        self._sequence = itertools.count()
        self._jobs: dict[str, Job] = {}
        self._running: dict[str, Job] = {}
        #: Idempotency-key dedup window: key -> job id, LRU-bounded.
        self._idempotency: OrderedDict[str, str] = OrderedDict()
        self._free_slots = workers
        self._open = True
        self._completed_jobs = 0
        self._completed_seconds = 0.0
        self._watchdog_stop = threading.Event()
        # Evicting a result a journalled-but-unsettled job still needs
        # would break recovery's complete-from-store path; register the
        # live keys as protected before any sweep can run.
        if getattr(self.store, "protected_keys", None) is None and hasattr(
            self.store, "protected_keys"
        ):
            self.store.protected_keys = self._unsettled_store_keys
        # Recovery runs before the dispatcher exists: replayed jobs are
        # re-stated and re-enqueued into a quiescent scheduler, then the
        # dispatcher starts and drains them like any other submission.
        if journal is not None:
            self.recovery_summary = RecoveryManager(
                journal, self.store
            ).recover(self)
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-service-dispatch", daemon=True
        )
        self._dispatcher.start()
        self._watchdog: threading.Thread | None = None
        if stuck_after is not None:
            self._watchdog = threading.Thread(
                target=self._watchdog_loop,
                name="repro-service-watchdog",
                daemon=True,
            )
            self._watchdog.start()

    @property
    def metrics(self):
        return self.runtime.metrics

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self,
        scenario,
        kind: str = "estimate",
        quality: ResultQuality | str | None = None,
        *,
        priority: int = 0,
        timeout: float | None = None,
        correlation_id: str | None = None,
        idempotency_key: str | None = None,
        scenario_seed: int | None = None,
    ) -> Job:
        """Queue an assess/estimate job for ``scenario``; returns the job.

        Raises :class:`QueueFullError` (with ``retry_after``) when the
        bounded queue is at capacity, :class:`SchedulerClosedError` after
        shutdown, :class:`~repro.resilience.CircuitOpenError` while the
        breaker is open.  Identical scenario content with a stored result
        completes immediately (``from_store=True``) without queueing —
        even through an open breaker, because serving the store costs no
        execution.  ``correlation_id`` stamps every event-log record and
        span the job produces (default: the job id).

        ``idempotency_key`` dedups retried submissions: while the key is
        inside the scheduler's dedup window — which the journal carries
        across crashes — a repeat submit returns the original job instead
        of running the work twice.  With a journal configured, the
        submission is fsynced to the write-ahead log before this method
        returns (under the default flush policy), and a journal append
        failure raises :class:`~repro.durability.JournalError` instead of
        acknowledging a job that could be lost.  ``scenario_seed`` is
        recorded alongside the scenario name so recovery can re-resolve
        the same scenario after a crash.
        """
        if kind not in ("assess", "estimate"):
            raise ValueError(
                f"unknown job kind {kind!r}; expected 'assess' or 'estimate'"
            )
        existing = self._deduplicate(idempotency_key)
        if existing is not None:
            return existing
        resolved_quality = _parse_quality(quality)
        key = job_key(
            scenario,
            kind,
            resolved_quality.value if kind == "estimate" else None,
        )
        job = Job(
            kind=kind,
            scenario_name=scenario.name,
            quality=resolved_quality.value if kind == "estimate" else None,
            priority=priority,
            timeout=timeout if timeout is not None else self.default_timeout,
            store_key=key,
            correlation_id=correlation_id or "",
            idempotency_key=idempotency_key,
        )
        self.metrics.increment("jobs_submitted")
        self.events.emit(
            "job.submitted",
            correlation_id=job.correlation_id,
            job_id=job.id,
            kind=job.kind,
            scenario=job.scenario_name,
            priority=job.priority,
        )
        stored = self.store.get(key)
        if stored is not None:
            job.state = JobState.DONE
            job.result = stored
            job.from_store = True
            job.finished_at = time.time()
            self.metrics.increment("jobs_from_store")
            with self._lock:
                self._jobs[job.id] = job
                self._remember_idempotency_locked(job)
            self.events.emit(
                "job.finished",
                correlation_id=job.correlation_id,
                job_id=job.id,
                state=job.state.value,
                from_store=True,
            )
            return job
        # Admission control happens after the store check on purpose:
        # cached answers are free, so an open breaker only blocks work
        # that would actually execute.
        self.breaker.allow()
        job.payload = self._payload_for(job, scenario, resolved_quality)
        record = None
        if self.journal is not None:
            record = submitted_record(
                job, scenario_ref=scenario.name, seed=scenario_seed
            )
        self._enqueue(job, journal_record=record)
        return job

    def submit_callable(
        self,
        payload: Callable[[Job], dict],
        *,
        name: str = "callable",
        priority: int = 0,
        timeout: float | None = None,
        payload_ref: str | None = None,
        idempotency_key: str | None = None,
    ) -> Job:
        """Queue an arbitrary payload (tests, extensions, maintenance).

        The payload receives the job (use ``job.check_cancelled()`` at
        convenient points) and returns the result document.

        Callable jobs are journalled only when ``payload_ref`` names the
        payload for the scheduler's ``payload_resolver`` — without a ref
        there is nothing recovery could re-execute, so the job is
        ephemeral by design.
        """
        existing = self._deduplicate(idempotency_key)
        if existing is not None:
            return existing
        self.breaker.allow()
        job = Job(
            kind="callable",
            scenario_name=name,
            priority=priority,
            timeout=timeout if timeout is not None else self.default_timeout,
            payload=payload,
            idempotency_key=idempotency_key,
        )
        self.metrics.increment("jobs_submitted")
        record = None
        if self.journal is not None and payload_ref is not None:
            record = submitted_record(job, payload_ref=payload_ref)
        self._enqueue(job, journal_record=record)
        return job

    def _deduplicate(self, idempotency_key: str | None) -> Job | None:
        """The already-accepted job for this key, if inside the window."""
        if not idempotency_key:
            return None
        with self._lock:
            job_id = self._idempotency.get(idempotency_key)
            job = self._jobs.get(job_id) if job_id is not None else None
        if job is None:
            return None
        self.metrics.increment("jobs_deduplicated")
        self.events.emit(
            "job.deduplicated",
            correlation_id=job.correlation_id,
            job_id=job.id,
            idempotency_key=idempotency_key,
        )
        return job

    def _remember_idempotency_locked(self, job: Job) -> None:
        if not job.idempotency_key or self.idempotency_window == 0:
            return
        self._idempotency[job.idempotency_key] = job.id
        self._idempotency.move_to_end(job.idempotency_key)
        while len(self._idempotency) > self.idempotency_window:
            self._idempotency.popitem(last=False)

    def _cancel_guard(self, job: Job) -> None:
        """Between-stage cancellation check for assess/estimate payloads.

        A plain cancel stops the pipeline here; a *fired deadline* does
        not — the cancel scope has already tombstoned the unrun work, and
        the partial document this payload is carrying is exactly what the
        job must settle with inside its grace window.
        """
        if not job.deadline_fired:
            job.check_cancelled()

    def _payload_for(
        self, job: Job, scenario, quality: ResultQuality
    ) -> Callable[[Job], dict]:
        if job.kind == "assess":

            def assess_payload(job: Job) -> dict:
                reports = self.efes.assess(scenario, strict=self.strict)
                self._cancel_guard(job)
                clean, degraded = split_degraded(reports)
                with self._serialize_phase():
                    doc = {
                        "kind": "assess",
                        "scenario": scenario.name,
                        "reports": reports_to_dict(clean),
                    }
                    if degraded:
                        doc["degradations"] = [d.to_dict() for d in degraded]
                    return doc

            return assess_payload

        def estimate_payload(job: Job) -> dict:
            degradations: list[DegradedResult] = []
            reports = self.efes.assess(scenario, strict=self.strict)
            self._cancel_guard(job)
            clean, assess_degraded = split_degraded(reports)
            degradations.extend(assess_degraded)
            estimate = self.efes.estimate(
                scenario,
                quality,
                reports=clean,
                strict=self.strict,
                degradations=degradations,
            )
            self._cancel_guard(job)
            with self._serialize_phase():
                doc = {
                    "kind": "estimate",
                    "scenario": scenario.name,
                    "quality": quality.value,
                    "reports": reports_to_dict(clean),
                    "estimate": estimate_to_dict(estimate),
                }
                if degradations:
                    doc["degradations"] = [
                        d.to_dict() for d in degradations
                    ]
                return doc

        return estimate_payload

    @contextmanager
    def _serialize_phase(self):
        """Span + histogram around result-document serialisation."""
        started = time.perf_counter()
        with tracing.span("serialize"), self.metrics.time_stage("serialize"):
            yield
        self.metrics.observe(
            "job_phase_seconds",
            time.perf_counter() - started,
            phase="serialize",
        )

    def _enqueue(self, job: Job, *, journal_record: dict | None = None) -> None:
        with self._lock:
            if not self._open:
                raise SchedulerClosedError("scheduler is shut down")
            depth = self._queue_depth_locked()
            if depth >= self.max_queue:
                self.metrics.increment("jobs_rejected")
                raise QueueFullError(depth, self._retry_after_locked(depth))
            if journal_record is not None and self.journal is not None:
                # The write-ahead contract: the submitted record reaches
                # the journal (fsynced, under fsync_on_ack) before the
                # job is queued.  A failing append raises — rejecting
                # the submission — rather than acknowledging a job a
                # crash could silently lose.
                self.journal.append(journal_record)
                job.journalled = True
            heapq.heappush(
                self._queue, (-job.priority, next(self._sequence), job)
            )
            self._jobs[job.id] = job
            self._remember_idempotency_locked(job)
            self._wake.notify_all()

    # ------------------------------------------------------------------
    # Settling: every terminal transition goes through here, exactly once
    # ------------------------------------------------------------------

    def _settle_locked(
        self,
        job: Job,
        state: JobState,
        *,
        error: str | None = None,
        result: dict | None = None,
        retry_after: float | None = None,
    ) -> bool:
        """Move ``job`` to a terminal ``state``; the ONLY place that may.

        Returns ``False`` — and counts ``jobs_double_settle_averted`` —
        when the job already settled (e.g. its timeout fired while the
        payload was still serialising its result, and the abandoned
        payload thread now reports in late).  The first settle wins; a
        late attempt never clobbers state, result, or metrics.
        """
        if job.state.is_terminal:
            self.metrics.increment("jobs_double_settle_averted")
            return False
        job.state = state
        job.finished_at = time.time()
        if error is not None:
            job.error = error
        if result is not None:
            job.result = result
        if retry_after is not None:
            job.retry_after = retry_after
        self._running.pop(job.id, None)
        if job.started_at is not None:
            self._release_slot_locked(job)
            self._record_duration_locked(job)
        self._journal_settled_locked(job)
        self._finished.notify_all()
        return True

    def _journal_settled_locked(self, job: Job) -> None:
        """Advisory settled record; every terminal path funnels through.

        Best-effort by design: losing a settled record merely means
        recovery re-executes the job idempotently, so an append failure
        here is counted and evented, never raised into the settle path.
        """
        if self.journal is None or not job.journalled:
            return
        record = settled_record(
            job.id,
            job.state.value,
            error=job.error,
            store_key=job.store_key,
            from_store=job.from_store,
            idempotency_key=job.idempotency_key,
            kind=job.kind,
            scenario=job.scenario_name,
        )
        self._journal_append_advisory(record)

    def _journal_append_advisory(self, record: dict) -> None:
        try:
            self.journal.append(record, durable=False)
        except JournalError as exc:
            self.metrics.increment("journal_append_failures")
            self.events.emit(
                "journal.append_failed",
                record_type=record.get("type"),
                job_id=record.get("job_id"),
                error=str(exc),
            )

    # ------------------------------------------------------------------
    # Crash recovery enactment (called by RecoveryManager at startup)
    # ------------------------------------------------------------------

    def _unsettled_store_keys(self) -> set[str]:
        """Store keys eviction must keep: journalled, not yet settled."""
        with self._lock:
            return {
                job.store_key
                for job in self._jobs.values()
                if job.journalled
                and job.store_key is not None
                and not job.state.is_terminal
            }

    def _register_replayed_terminal(self, state) -> None:
        """Re-admit a settled job from the journal's checkpoint window.

        The job is terminal on arrival: ``GET /jobs/<id>`` keeps
        answering after a restart, and its idempotency key re-enters the
        dedup window so a late client retry still dedups instead of
        re-running.  Results are served lazily from the store via
        ``store_key`` — the journal never carries result documents.
        """
        settled = state.settled or {}
        job = self._replayed_job_shell(state)
        try:
            job.state = JobState(settled.get("state", "failed"))
        except ValueError:  # pragma: no cover - foreign record
            job.state = JobState.FAILED
        job.error = settled.get("error")
        job.from_store = bool(settled.get("from_store"))
        job.finished_at = time.time()
        with self._lock:
            self._jobs.setdefault(job.id, job)
            self._remember_idempotency_locked(job)

    def _complete_replayed_from_store(self, state) -> bool:
        """Settle a crashed-but-stored job straight from the spool.

        Covers the crash window between the store write and the settled
        journal record: the result survived, so the job settles ``DONE``
        (``from_store=True``) without re-executing.  Returns ``False``
        when the spooled entry turns out to be unreadable after all
        (quarantined between planning and now) — the caller falls back
        to re-execution.
        """
        result = (
            self.store.get(state.store_key) if state.store_key else None
        )
        if result is None:
            return False
        job = self._replayed_job_shell(state)
        job.state = JobState.DONE
        job.result = result
        job.from_store = True
        job.finished_at = time.time()
        with self._lock:
            self._jobs.setdefault(job.id, job)
            self._remember_idempotency_locked(job)
        self.metrics.increment("jobs_recovered_from_store")
        self.events.emit(
            "job.recovered",
            correlation_id=job.correlation_id,
            job_id=job.id,
            outcome="completed_from_store",
        )
        self.journal.append(
            settled_record(
                job.id,
                JobState.DONE.value,
                store_key=job.store_key,
                from_store=True,
                idempotency_key=job.idempotency_key,
                kind=job.kind,
                scenario=job.scenario_name,
            ),
            durable=False,
        )
        return True

    def _resubmit_replayed(self, state) -> bool:
        """Rebuild and re-enqueue a job the crash left unsettled.

        Returns ``False`` — after registering a FAILED tombstone so the
        job id keeps answering — when the payload cannot be rebuilt
        (unresolvable scenario, callable without a resolvable
        ``payload_ref``).  Journal appends here go direct (not
        best-effort): recovery's re-statements must land before
        compaction deletes the originals, and a failure aborts startup
        with the old segments intact.
        """
        job = self._rebuild_recovered_job(state)
        if job is None:
            self._register_unrecoverable(state)
            return False
        record = dict(state.submitted)
        record["recovered"] = True
        with self._lock:
            self.journal.append(record, durable=False)
            job.journalled = True
            heapq.heappush(
                self._queue, (-job.priority, next(self._sequence), job)
            )
            self._jobs[job.id] = job
            self._remember_idempotency_locked(job)
            self._wake.notify_all()
        self.metrics.increment("jobs_recovered")
        if job.interrupted:
            self.metrics.increment("jobs_interrupted_recovered")
        self.events.emit(
            "job.recovered",
            correlation_id=job.correlation_id,
            job_id=job.id,
            outcome="requeued",
            interrupted=job.interrupted,
        )
        return True

    def _replayed_job_shell(self, state) -> Job:
        submitted = state.submitted or {}
        job = Job(
            kind=state.field("kind") or "estimate",
            scenario_name=state.field("scenario") or "",
            quality=submitted.get("quality"),
            priority=int(submitted.get("priority") or 0),
            timeout=submitted.get("timeout"),
            store_key=state.store_key,
            id=state.job_id,
            correlation_id=submitted.get("correlation_id") or state.job_id,
            idempotency_key=state.idempotency_key,
        )
        job.recovered = True
        job.journalled = True
        return job

    def _rebuild_recovered_job(self, state) -> Job | None:
        submitted = state.submitted or {}
        job = self._replayed_job_shell(state)
        job.interrupted = state.dispatched
        if job.kind == "callable":
            ref = submitted.get("payload_ref")
            if ref is None or self.payload_resolver is None:
                return None
            try:
                payload = self.payload_resolver(ref, job)
            except Exception:  # noqa: BLE001 - resolver is foreign code
                return None
            if payload is None:
                return None
            job.payload = payload
            return job
        if job.kind not in ("assess", "estimate"):
            return None
        scenario_ref = submitted.get("scenario_ref") or job.scenario_name
        if not scenario_ref:
            return None
        try:
            scenario = self._resolve_scenario(
                scenario_ref, submitted.get("seed")
            )
        except Exception:  # noqa: BLE001 - unresolvable scenario
            return None
        job.payload = self._payload_for(
            job, scenario, _parse_quality(job.quality)
        )
        return job

    def _resolve_scenario(self, scenario_ref: str, seed: int | None):
        if self.scenario_resolver is not None:
            return self.scenario_resolver(scenario_ref, seed)
        from ..scenarios import resolve_scenario

        return resolve_scenario(
            scenario_ref, seed=seed if seed is not None else 1
        )

    def _register_unrecoverable(self, state) -> None:
        job = self._replayed_job_shell(state)
        job.state = JobState.FAILED
        job.error = (
            "unrecoverable after crash: payload could not be rebuilt "
            "from the journal"
        )
        job.finished_at = time.time()
        with self._lock:
            self._jobs.setdefault(job.id, job)
            self._remember_idempotency_locked(job)
        self.metrics.increment("jobs_unrecoverable")
        self.events.emit(
            "job.recovered",
            correlation_id=job.correlation_id,
            job_id=job.id,
            outcome="unrecoverable",
        )
        self.journal.append(
            settled_record(
                job.id,
                JobState.FAILED.value,
                error=job.error,
                store_key=job.store_key,
                idempotency_key=job.idempotency_key,
                kind=job.kind,
                scenario=job.scenario_name,
            ),
            durable=False,
        )

    # ------------------------------------------------------------------
    # Dispatch + execution
    # ------------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        with self._lock:
            while True:
                now = time.monotonic()
                self._reap_expired_locked(now)
                if not self._open and not self._queue and not self._running:
                    return
                job = self._pop_runnable_locked()
                if job is not None:
                    try:
                        fault_point(
                            "scheduler.dispatch",
                            job_id=job.id,
                            kind=job.kind,
                            scenario=job.scenario_name,
                        )
                    except OSError as exc:
                        # An injected (or real) dispatch failure costs
                        # this job, never the dispatcher.
                        if self._settle_locked(
                            job,
                            JobState.FAILED,
                            error=format_exception(exc),
                        ):
                            self.metrics.increment("jobs_failed")
                            self.breaker.record_failure()
                            self.slo.record_job(ok=False)
                            self.events.emit(
                                "job.dispatch_failed",
                                correlation_id=job.correlation_id,
                                job_id=job.id,
                                error=job.error,
                            )
                        continue
                    self._free_slots -= 1
                    job.state = JobState.RUNNING
                    job.started_at = time.time()
                    if job.timeout is not None:
                        job.deadline = now + job.timeout
                    self._running[job.id] = job
                    if self.journal is not None and job.journalled:
                        # Advisory: a crash after this point makes the
                        # job "interrupted" (re-executed idempotently)
                        # instead of merely queued.
                        self._journal_append_advisory(
                            dispatched_record(job.id)
                        )
                    threading.Thread(
                        target=self._run_job,
                        args=(job,),
                        name=f"repro-service-job-{job.id}",
                        daemon=True,
                    ).start()
                    continue
                self._wake.wait(timeout=self._next_deadline_delay_locked())

    def _pop_runnable_locked(self) -> Job | None:
        if self._free_slots <= 0:
            return None
        while self._queue:
            _, _, job = heapq.heappop(self._queue)
            if job.state is JobState.QUEUED:
                return job
            # Cancelled while queued: already terminal, skip the husk.
        return None

    def _next_deadline_delay_locked(self) -> float | None:
        deadlines = [
            job.grace_deadline if job.deadline_fired else job.deadline
            for job in self._running.values()
            if job.deadline is not None
        ]
        if not deadlines:
            return None
        return max(0.0, min(deadlines) - time.monotonic()) + 0.005

    def _reap_expired_locked(self, now: float) -> None:
        """Two-phase deadline enforcement over the running set.

        Phase 1 (*fire*, at ``job.deadline``): set the cancel event —
        observed by the payload's cancel scope at its next checkpoint —
        reclaim the worker slot so admission capacity never waits on a
        cooperating payload, and start the grace clock.  The job is NOT
        settled: it keeps running toward a partial-result settlement.

        Phase 2 (*reap*, at ``job.grace_deadline``): a payload that never
        reached a checkpoint is settled ``FAILED`` and its thread is
        abandoned; the first-settle-wins rule in ``_settle_locked``
        resolves the race against a partial arriving at the same moment.
        """
        for job in list(self._running.values()):
            if job.deadline is None:
                continue
            if not job.deadline_fired and now >= job.deadline:
                job.deadline_fired = True
                job.grace_deadline = now + self.deadline_grace
                job.cancel_event.set()
                self._release_slot_locked(job)
                self.metrics.increment("jobs_deadline_exceeded")
                self.events.emit(
                    "job.deadline",
                    correlation_id=job.correlation_id,
                    job_id=job.id,
                    timeout=job.timeout,
                    grace=self.deadline_grace,
                )
            if (
                job.deadline_fired
                and job.grace_deadline is not None
                and now >= job.grace_deadline
            ):
                if not self._settle_locked(
                    job,
                    JobState.FAILED,
                    error=f"timed out after {job.timeout:g}s",
                ):
                    continue
                self._note_timeout_locked(job)

    def _note_timeout_locked(self, job: Job) -> None:
        """Metrics/breaker/SLO/event bookkeeping of one timed-out job."""
        self.metrics.increment("jobs_timeout")
        self.metrics.increment("jobs_failed")
        self.breaker.record_failure()
        self.slo.record_job(ok=False)
        self.events.emit(
            "job.timeout",
            correlation_id=job.correlation_id,
            job_id=job.id,
            timeout=job.timeout,
        )

    def _run_job(self, job: Job) -> None:
        result: dict | None = None
        error: str | None = None
        cancelled = False
        tracer = Tracer() if self.trace else None
        with correlation_scope(job.correlation_id):
            self.events.emit(
                "job.started",
                job_id=job.id,
                kind=job.kind,
                scenario=job.scenario_name,
                queued_seconds=job.queued_seconds,
            )
            if job.queued_seconds is not None:
                self.metrics.observe(
                    "job_phase_seconds", job.queued_seconds, phase="queued"
                )
            started = time.perf_counter()
            # The scope every checkpoint below observes: the job's
            # deadline (already on the monotonic clock) plus its cancel
            # event, so both the reaper and a user cancel stop the
            # payload at the next checkpoint without any plumbing.
            scope = CancelScope(
                deadline=(
                    Deadline(job.deadline)
                    if job.deadline is not None
                    else None
                ),
                cancel_event=job.cancel_event,
                grace=self.deadline_grace,
                label=f"job:{job.id}",
            )
            try:
                with self.runtime.activated(), scope.activated():
                    if tracer is None:
                        job.check_cancelled()
                        result = job.payload(job)
                    else:
                        with tracer.activated(), tracing.span(
                            f"service.job:{job.id}",
                            kind=job.kind,
                            scenario=job.scenario_name,
                            correlation_id=job.correlation_id,
                        ):
                            job.check_cancelled()
                            result = job.payload(job)
            except JobCancelled:
                cancelled = True
            except OperationCancelled as exc:
                # A checkpoint stopped the payload.  Plain cancellation
                # maps to the CANCELLED settle; a deadline abort leaves
                # ``result`` unset and lets the deadline branch of
                # ``_finish`` settle the timeout.
                if exc.reason == "cancelled":
                    cancelled = True
                else:
                    error = f"{type(exc).__name__}: {exc}"
            except Exception as exc:  # noqa: BLE001 - job isolation boundary
                error = f"{type(exc).__name__}: {exc}"
            self.metrics.observe(
                "job_phase_seconds",
                time.perf_counter() - started,
                phase="running",
            )
            if tracer is not None and tracer.root is not None:
                job.trace = span_to_dict(tracer.root)
            self._finish(job, result, error, cancelled)
            self.events.emit(
                "job.finished",
                job_id=job.id,
                state=job.state.value,
                error=job.error,
                duration_seconds=job.duration_seconds,
                from_store=False,
            )

    def _finish(
        self, job: Job, result: dict | None, error: str | None, cancelled: bool
    ) -> None:
        with self._lock:
            if job.deadline_fired:
                # The deadline reaper fired while this payload ran; its
                # cancel event being set means "timed out", never "user
                # cancelled".  A payload that still produced a document
                # settles DONE with the partial it earned — marked, and
                # deliberately NOT written to the report store: partials
                # are budget-dependent, and the content address must keep
                # answering with full-budget results only.
                if result is not None:
                    partial = dict(result)
                    partial["deadline_exceeded"] = True
                    if self._settle_locked(
                        job, JobState.DONE, result=partial
                    ):
                        self.metrics.increment("jobs_completed")
                        self.metrics.increment("jobs_deadline_partial")
                        self.breaker.record_success()
                        self.slo.record_job(
                            ok=True,
                            duration_seconds=job.duration_seconds,
                            degraded=True,
                        )
                elif self._settle_locked(
                    job,
                    JobState.FAILED,
                    error=f"timed out after {job.timeout:g}s",
                ):
                    self._note_timeout_locked(job)
            elif cancelled or job.cancel_event.is_set():
                if self._settle_locked(job, JobState.CANCELLED):
                    self.metrics.increment("jobs_cancelled")
            elif error is not None:
                if self._settle_locked(job, JobState.FAILED, error=error):
                    self.metrics.increment("jobs_failed")
                    self.breaker.record_failure()
                    self.slo.record_job(ok=False)
            else:
                # Store BEFORE settling: the settled-done journal record
                # must never precede its result document, so a crash
                # between the two re-executes (idempotent) rather than
                # trusting a result that was never persisted.
                if (
                    not job.state.is_terminal
                    and job.store_key is not None
                    and result is not None
                ):
                    self._store_result_locked(job, result)
                if self._settle_locked(job, JobState.DONE, result=result):
                    self.metrics.increment("jobs_completed")
                    self.breaker.record_success()
                    self.slo.record_job(
                        ok=True,
                        duration_seconds=job.duration_seconds,
                        degraded=bool(
                            isinstance(result, dict)
                            and result.get("degradations")
                        ),
                    )
            # A late arrival (the job settled by timeout or cancel while
            # the payload drained) still releases its slot idempotently.
            self._release_slot_locked(job)
            self._wake.notify_all()
            self._finished.notify_all()

    def _store_result_locked(self, job: Job, result: dict) -> None:
        """Spool the result; a failing spool never fails a DONE job."""
        store_started = time.perf_counter()
        try:
            self.store.put(job.store_key, result)
        except OSError as exc:
            # The in-memory result stands; persistence is best-effort.
            self.metrics.increment("store_put_failures")
            self.events.emit(
                "store.write_failed",
                correlation_id=job.correlation_id,
                job_id=job.id,
                error=format_exception(exc),
            )
        self.metrics.observe(
            "job_phase_seconds",
            time.perf_counter() - store_started,
            phase="store",
        )

    def _release_slot_locked(self, job: Job) -> None:
        if not job.slot_released:
            job.slot_released = True
            self._free_slots += 1
            self._wake.notify_all()

    def _record_duration_locked(self, job: Job) -> None:
        duration = job.duration_seconds
        if duration is not None:
            self._completed_jobs += 1
            self._completed_seconds += duration

    # ------------------------------------------------------------------
    # Watchdog + breaker + health
    # ------------------------------------------------------------------

    def _breaker_transition(
        self, previous: CircuitState, state: CircuitState
    ) -> None:
        self.metrics.increment("breaker_transitions")
        self.events.emit(
            "breaker.state",
            previous=previous.value,
            state=state.value,
        )
        # Half-open still means "recovering": the replica stays flagged
        # until a probe succeeds and the breaker closes.
        self.health.set_reason(
            "circuit_open", state is not CircuitState.CLOSED
        )

    def _watchdog_loop(self) -> None:
        interval = max(0.02, min(self.stuck_after / 2.0, 1.0))
        while not self._watchdog_stop.wait(interval):
            now = time.time()
            newly_stuck: list[Job] = []
            any_stuck = False
            with self._lock:
                for job in self._running.values():
                    if (
                        job.started_at is not None
                        and now - job.started_at >= self.stuck_after
                    ):
                        any_stuck = True
                        if not job.stuck:
                            job.stuck = True
                            newly_stuck.append(job)
            for job in newly_stuck:
                self.metrics.increment("jobs_stuck")
                self.events.emit(
                    "job.stuck",
                    correlation_id=job.correlation_id,
                    job_id=job.id,
                    running_seconds=now - (job.started_at or now),
                    stuck_after=self.stuck_after,
                )
                # A wedged worker is a failure the breaker must see even
                # though no exception ever surfaces.
                self.breaker.record_failure()
            self.health.set_reason("stuck_workers", any_stuck)

    def _apply_slo_health(self, statuses) -> None:
        """Fold SLO burn-rate states into the health state machine.

        A critical burn flags a hard ``slo:<name>`` degradation reason;
        a warning burn flags the advisory warning of the same name, so
        the replica reports ``slo-warning`` without being pulled from
        rotation.
        """
        for status in statuses:
            self.health.set_reason(
                f"slo:{status.name}", status.state == "critical"
            )
            self.health.set_warning(
                f"slo:{status.name}", status.state == "warning"
            )

    def _deadline_stats_locked(self) -> dict:
        """Point-in-time deadline posture of the running set."""
        now = time.monotonic()
        remaining = [
            job.deadline - now
            for job in self._running.values()
            if job.deadline is not None and not job.deadline_fired
        ]
        in_grace = sum(
            1 for job in self._running.values() if job.deadline_fired
        )
        return {
            "grace_seconds": self.deadline_grace,
            "running_with_deadline": len(remaining),
            "in_grace": in_grace,
            "min_remaining_seconds": (
                round(min(remaining), 4) if remaining else None
            ),
            "exceeded_total": int(
                self.metrics.counter("jobs_deadline_exceeded")
            ),
            "partial_results_total": int(
                self.metrics.counter("jobs_deadline_partial")
            ),
        }

    def deadline_stats(self) -> dict:
        """The ``/healthz`` deadlines document (see
        :meth:`health_snapshot`)."""
        with self._lock:
            return self._deadline_stats_locked()

    def slo_snapshot(self) -> dict:
        """The ``GET /slo`` document: burn rates + derived health."""
        statuses = self.slo.evaluate()
        self._apply_slo_health(statuses)
        for status in statuses:
            for window in ("fast", "slow"):
                self.metrics.set_gauge(
                    "slo_burn_rate",
                    getattr(status, window)["burn_rate"],
                    slo=status.name,
                    window=window,
                )
        doc = self.slo.to_dict()
        doc["state"] = self.slo.worst_state()
        doc["health"] = self.health.snapshot()
        return doc

    def refresh_observability(self) -> None:
        """Re-sample point-in-time gauges before a ``/metrics`` scrape.

        Publishes the dispatcher process's resource sample
        (``process_*`` gauges), scheduler pool utilization, executor
        dispatch stats, the profile-cache hit rate, and the current SLO
        burn-rate gauges.
        """
        self.sampler.sample()
        with self._lock:
            busy = self.workers - self._free_slots
            queue_depth = self._queue_depth_locked()
            deadline_stats = self._deadline_stats_locked()
        self.metrics.set_gauge(
            "scheduler_jobs_in_grace", float(deadline_stats["in_grace"])
        )
        self.metrics.set_gauge(
            "scheduler_deadline_min_remaining_seconds",
            float(deadline_stats["min_remaining_seconds"] or 0.0),
        )
        self.metrics.set_gauge("scheduler_busy_workers", float(busy))
        self.metrics.set_gauge(
            "scheduler_worker_utilisation", busy / self.workers
        )
        self.metrics.set_gauge("scheduler_queue_depth", float(queue_depth))
        executor_stats = getattr(self.runtime.executor, "stats", None)
        if callable(executor_stats):
            for key, value in executor_stats().items():
                self.metrics.set_gauge(
                    f"executor_{key}", float(value)
                )
        hits = self.metrics.counter("cache_hits")
        misses = self.metrics.counter("cache_misses")
        lookups = hits + misses
        self.metrics.set_gauge(
            "cache_hit_rate", hits / lookups if lookups else 0.0
        )
        statuses = self.slo.evaluate()
        self._apply_slo_health(statuses)
        for status in statuses:
            for window in ("fast", "slow"):
                self.metrics.set_gauge(
                    "slo_burn_rate",
                    getattr(status, window)["burn_rate"],
                    slo=status.name,
                    window=window,
                )

    def health_snapshot(self) -> dict:
        """Health + breaker + SLO + resources, as ``/healthz`` reports it."""
        self.health.set_reason(
            "store_quarantine", self.store.quarantined_count() > 0
        )
        statuses = self.slo.evaluate()
        self._apply_slo_health(statuses)
        doc = self.health.snapshot()
        doc["breaker"] = self.breaker.snapshot()
        doc["slo"] = {
            "state": self.slo.worst_state(),
            "states": {status.name: status.state for status in statuses},
        }
        doc["resources"] = self.sampler.summary()
        doc["deadlines"] = self.deadline_stats()
        if self.journal is not None:
            doc["journal"] = self.journal.stats()
            doc["recovery"] = self.recovery_summary
        return doc

    # ------------------------------------------------------------------
    # Inspection + control
    # ------------------------------------------------------------------

    def job(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.created_at)

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued or running job; terminal jobs are left as-is."""
        with self._lock:
            job = self._jobs[job_id]
            if job.state in (JobState.QUEUED, JobState.RUNNING):
                job.cancel_event.set()
                if self._settle_locked(job, JobState.CANCELLED):
                    self.metrics.increment("jobs_cancelled")
                    self.events.emit(
                        "job.cancelled",
                        correlation_id=job.correlation_id,
                        job_id=job.id,
                    )
            return job

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job reaches a terminal state (or timeout)."""
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._lock:
            job = self._jobs[job_id]
            while not job.state.is_terminal:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                self._finished.wait(timeout=remaining)
            return job

    def _queue_depth_locked(self) -> int:
        return sum(
            1 for _, _, job in self._queue if job.state is JobState.QUEUED
        )

    def _retry_after_locked(self, depth: int) -> float:
        average = (
            self._completed_seconds / self._completed_jobs
            if self._completed_jobs
            else _DEFAULT_JOB_SECONDS
        )
        waves = (depth + self.workers) / self.workers
        return round(max(1.0, waves * average), 1)

    def stats(self) -> dict:
        with self._lock:
            busy = self.workers - self._free_slots
            stuck = sum(1 for job in self._running.values() if job.stuck)
            return {
                "open": self._open,
                "workers": self.workers,
                "busy_workers": busy,
                "free_workers": self._free_slots,
                "worker_utilisation": busy / self.workers,
                "max_queue": self.max_queue,
                "queue_depth": self._queue_depth_locked(),
                "running": len(self._running),
                "stuck": stuck,
                "jobs_total": len(self._jobs),
                "completed_jobs": self._completed_jobs,
                "average_job_seconds": (
                    self._completed_seconds / self._completed_jobs
                    if self._completed_jobs
                    else None
                ),
                "breaker": self.breaker.snapshot(),
                "deadlines": self._deadline_stats_locked(),
                "idempotency_window": len(self._idempotency),
                "journal": (
                    self.journal.stats() if self.journal is not None else None
                ),
                "recovery": self.recovery_summary,
            }

    def close(self, *, wait: bool = True, timeout: float | None = 10.0) -> None:
        """Graceful drain: finish running jobs, fail queued ones.

        The health state machine enters ``draining`` (terminal); queued
        jobs settle ``FAILED`` with :data:`DRAINING_ERROR` and an
        explicit ``retry_after`` hint so clients know to resubmit, while
        running jobs get up to ``timeout`` seconds to complete.
        """
        with self._lock:
            if not self._open:
                return
            self._open = False
            self.health.start_draining()
            depth = self._queue_depth_locked()
            hint = self._retry_after_locked(depth) if depth else None
            for _, _, job in self._queue:
                if job.state is JobState.QUEUED:
                    job.cancel_event.set()
                    if self._settle_locked(
                        job,
                        JobState.FAILED,
                        error=DRAINING_ERROR,
                        retry_after=hint,
                    ):
                        self.metrics.increment("jobs_drained")
                        self.events.emit(
                            "job.drained",
                            correlation_id=job.correlation_id,
                            job_id=job.id,
                            retry_after=hint,
                        )
            self._queue.clear()
            self._wake.notify_all()
            self._finished.notify_all()
        if wait:
            deadline = (
                time.monotonic() + timeout if timeout is not None else None
            )
            with self._lock:
                while self._running:
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            break
                    self._finished.wait(timeout=remaining)
        self._watchdog_stop.set()
        if self._watchdog is not None:
            self._watchdog.join(timeout=1.0)
        self._dispatcher.join(timeout=1.0)
        if self.journal is not None:
            # The drain above settled every queued job; flush those
            # records so a restart sees a clean ledger, then release
            # the segment handle.
            try:
                self.journal.flush()
            except OSError:  # pragma: no cover - dying disk at shutdown
                pass
            self.journal.close()
        if self._owns_runtime:
            self.runtime.close()

    def __enter__(self) -> "JobScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"JobScheduler(workers={self.workers}, "
            f"queued={stats['queue_depth']}/{self.max_queue}, "
            f"running={stats['running']})"
        )
