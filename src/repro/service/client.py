"""A small stdlib HTTP client for the assessment service.

Wraps :mod:`urllib.request` — no dependencies — and mirrors the service
resources one method each.  Backpressure (503 + Retry-After) surfaces as
:class:`BackpressureError` so callers can implement retry loops::

    client = ServiceClient("http://127.0.0.1:8765")
    job = client.submit("s1-s2", kind="estimate", quality="high")
    doc = client.result(job["id"])          # polls until terminal
    print(doc["estimate"]["total_minutes"])
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request


class ServiceError(RuntimeError):
    """An HTTP-level error from the assessment service."""

    def __init__(self, status: int, payload: dict | None = None) -> None:
        message = (payload or {}).get("error") or f"HTTP {status}"
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class BackpressureError(ServiceError):
    """The service rejected a submission because its queue is full."""

    def __init__(self, status: int, payload: dict, retry_after: float) -> None:
        super().__init__(status, payload)
        self.retry_after = retry_after


class JobFailedError(ServiceError):
    """The polled job reached FAILED or CANCELLED instead of DONE."""


class ServiceClient:
    """Typed access to a running assessment service."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing ---------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        headers: dict | None = None,
    ) -> tuple[int, dict]:
        data = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            method=method,
            headers={
                **({"Content-Type": "application/json"} if data else {}),
                **(headers or {}),
            },
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.status, json.loads(response.read() or b"{}")
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read() or b"{}")
            except ValueError:
                payload = {}
            if exc.code == 503 and "retry_after" in payload:
                raise BackpressureError(
                    exc.code, payload, float(payload["retry_after"])
                ) from None
            raise ServiceError(exc.code, payload) from None

    # -- resources --------------------------------------------------------

    def submit(
        self,
        scenario: str,
        kind: str = "estimate",
        quality: str | None = None,
        *,
        priority: int = 0,
        timeout: float | None = None,
        seed: int = 1,
        correlation_id: str | None = None,
    ) -> dict:
        """Submit a job; returns its status snapshot (``job["id"]``...)."""
        body: dict = {"scenario": scenario, "kind": kind, "seed": seed}
        if quality is not None:
            body["quality"] = quality
        if priority:
            body["priority"] = priority
        if timeout is not None:
            body["timeout"] = timeout
        headers = (
            {"X-Correlation-ID": correlation_id} if correlation_id else None
        )
        _, doc = self._request("POST", "/jobs", body, headers=headers)
        return doc["job"]

    def status(self, job_id: str) -> dict:
        _, doc = self._request("GET", f"/jobs/{job_id}")
        return doc["job"]

    def jobs(self, state: str | None = None) -> list[dict]:
        path = f"/jobs?state={state}" if state else "/jobs"
        _, doc = self._request("GET", path)
        return doc["jobs"]

    def trace(self, job_id: str) -> dict:
        """The job's serialised span tree (``GET /trace/<id>``)."""
        _, doc = self._request("GET", f"/trace/{job_id}")
        return doc["trace"]

    def cancel(self, job_id: str) -> dict:
        _, doc = self._request("DELETE", f"/jobs/{job_id}")
        return doc["job"]

    def result(
        self,
        job_id: str,
        *,
        wait: bool = True,
        deadline: float = 60.0,
        poll_interval: float = 0.05,
    ) -> dict:
        """The job's result document; polls until terminal by default.

        Raises :class:`JobFailedError` when the job failed or was
        cancelled, ``TimeoutError`` when ``deadline`` elapses first.
        """
        limit = time.monotonic() + deadline
        while True:
            try:
                status, doc = self._request("GET", f"/jobs/{job_id}/result")
            except ServiceError as exc:
                if exc.status in (410, 500):  # cancelled / failed
                    raise JobFailedError(exc.status, exc.payload) from None
                raise
            if status == 200:
                return doc["result"]
            if not wait:
                raise TimeoutError(f"job {job_id} not finished yet")
            if time.monotonic() >= limit:
                raise TimeoutError(
                    f"job {job_id} not finished within {deadline:g}s"
                )
            time.sleep(poll_interval)

    def healthz(self) -> dict:
        _, doc = self._request("GET", "/healthz")
        return doc

    def metrics(self) -> dict:
        _, doc = self._request("GET", "/metrics")
        return doc

    def metrics_text(self) -> str:
        """Prometheus text exposition of ``GET /metrics``."""
        request = urllib.request.Request(
            f"{self.base_url}/metrics", headers={"Accept": "text/plain"}
        )
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            return response.read().decode("utf-8")
