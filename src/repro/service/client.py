"""A small stdlib HTTP client for the assessment service.

Wraps :mod:`urllib.request` — no dependencies — and mirrors the service
resources one method each.  Error taxonomy:

* :class:`BackpressureError` — the queue is full (503 + ``retry_after``);
  **not retried by default** (the caller decides whether to shed or wait;
  pass ``retry_backpressure=True`` to opt in),
* :class:`ServiceUnavailableError` — the service is unreachable
  (connection refused/reset, timeout) or answered 503 for a non-queue
  reason (draining, open circuit breaker).  Carries the last
  ``retry_after`` hint the service sent, and **is retried** under the
  client's :class:`~repro.resilience.RetryPolicy` (exponential backoff,
  full jitter, ``Retry-After`` honoured) before surfacing,
* :class:`ServiceError` — any other HTTP-level error, raised as-is,
* :class:`DeadlineExceededError` — the caller's end-to-end ``deadline=``
  passed before the request (or polled result) arrived.  Subclasses
  :class:`TimeoutError`, so existing ``except TimeoutError`` callers
  keep working; like :class:`BackpressureError` it is **never** retried
  automatically — a retry past the deadline can only waste budget the
  caller no longer has.

No bare :class:`urllib.error.URLError` ever escapes.  ``sleep`` is
injectable so retry behaviour is testable in virtual time::

    client = ServiceClient("http://127.0.0.1:8765")
    job = client.submit("s1-s2", kind="estimate", quality="high")
    doc = client.result(job["id"])          # polls until terminal
    print(doc["estimate"]["total_minutes"])
"""

from __future__ import annotations

import dataclasses
import json
import time
import urllib.error
import urllib.request
import uuid
from collections.abc import Callable

from ..resilience import RetryPolicy, call_with_retry


class ServiceError(RuntimeError):
    """An HTTP-level error from the assessment service."""

    def __init__(self, status: int, payload: dict | None = None) -> None:
        message = (payload or {}).get("error") or f"HTTP {status}"
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class BackpressureError(ServiceError):
    """The service rejected a submission because its queue is full."""

    def __init__(self, status: int, payload: dict, retry_after: float) -> None:
        super().__init__(status, payload)
        self.retry_after = retry_after


class ServiceUnavailableError(ServiceError):
    """The service could not serve the request at all right now.

    Raised for transport failures (connection refused/reset, timeouts)
    and for 503 responses that are not queue backpressure — a draining
    scheduler or an open circuit breaker.  ``retry_after`` carries the
    service's hint when one was sent (``None`` for transport failures),
    and the retry combinator honours it as a minimum backoff.
    """

    def __init__(
        self,
        message: str,
        *,
        status: int = 503,
        payload: dict | None = None,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(status, {"error": message, **(payload or {})})
        self.retry_after = retry_after


class JobFailedError(ServiceError):
    """The polled job reached FAILED or CANCELLED instead of DONE."""


class DeadlineExceededError(ServiceError, TimeoutError):
    """The client-side deadline passed before the service answered.

    Dual-inherits :class:`TimeoutError` so callers that predate the
    deadline API (``except TimeoutError`` around ``result()``) keep
    working unchanged.
    """

    def __init__(
        self, message: str, *, deadline: float | None = None
    ) -> None:
        ServiceError.__init__(self, 504, {"error": message})
        self.deadline = deadline


#: Default client-side retry: a few quick attempts on unavailability
#: only; deterministic jitter so tests are reproducible.
DEFAULT_RETRY_POLICY = RetryPolicy(
    max_attempts=3,
    base_delay=0.05,
    max_delay=1.0,
    retry_on=(ServiceUnavailableError,),
    seed=0,
)

#: How many submit envelopes the client remembers for resubmission.
ENVELOPE_WINDOW = 256


@dataclasses.dataclass(frozen=True)
class SubmitEnvelope:
    """The complete, immutable description of one job submission.

    An idempotency key only guarantees exactly-once *admission*; for the
    retried submission to mean the same thing it must also carry the
    same scenario, kind, quality, **priority**, timeout, and seed.  The
    client therefore freezes every submission into an envelope, keeps a
    window of them keyed by idempotency key, and
    :meth:`ServiceClient.resubmit` replays the envelope verbatim —
    nothing is rebuilt from (possibly different) defaults.  The fleet
    supervisor rides the same type when it re-dispatches a dead worker's
    unsettled jobs to a survivor.
    """

    scenario: str
    kind: str = "estimate"
    quality: str | None = None
    priority: int = 0
    timeout: float | None = None
    seed: int = 1
    correlation_id: str | None = None
    idempotency_key: str = ""
    #: End-to-end budget in seconds.  Rides as the ``X-Deadline-Ms``
    #: header (the service maps it to the job timeout unless the body
    #: already carries one) and bounds the client's own submit/poll
    #: cycle — see :meth:`ServiceClient.submit`.
    deadline: float | None = None

    def body(self) -> dict:
        """The full ``POST /jobs`` body — priority always included, so a
        resubmission can never silently fall back to the default."""
        doc: dict = {
            "scenario": self.scenario,
            "kind": self.kind,
            "seed": self.seed,
            "priority": self.priority,
        }
        if self.quality is not None:
            doc["quality"] = self.quality
        if self.timeout is not None:
            doc["timeout"] = self.timeout
        return doc

    def headers(self) -> dict:
        doc = {"Idempotency-Key": self.idempotency_key}
        if self.correlation_id:
            doc["X-Correlation-ID"] = self.correlation_id
        if self.deadline is not None:
            doc["X-Deadline-Ms"] = str(int(self.deadline * 1000))
        return doc

    def to_dict(self) -> dict:
        """A JSON form (ridden by the fleet control plane)."""
        doc = self.body()
        doc["idempotency_key"] = self.idempotency_key
        if self.correlation_id:
            doc["correlation_id"] = self.correlation_id
        if self.deadline is not None:
            doc["deadline"] = self.deadline
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> SubmitEnvelope:
        return cls(
            scenario=doc["scenario"],
            kind=doc.get("kind", "estimate"),
            quality=doc.get("quality"),
            priority=int(doc.get("priority", 0)),
            timeout=doc.get("timeout"),
            seed=int(doc.get("seed", 1)),
            correlation_id=doc.get("correlation_id"),
            idempotency_key=doc.get("idempotency_key", ""),
            deadline=doc.get("deadline"),
        )


def _retry_after_hint(payload: dict, headers) -> float | None:
    value = payload.get("retry_after")
    if value is None and headers is not None:
        value = headers.get("Retry-After")
    try:
        return float(value) if value is not None else None
    except (TypeError, ValueError):
        return None


class ServiceClient:
    """Typed access to a running assessment service."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        *,
        retry_policy: RetryPolicy | None = None,
        retry_backpressure: bool = False,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        policy = (
            retry_policy if retry_policy is not None else DEFAULT_RETRY_POLICY
        )
        if retry_backpressure and BackpressureError not in policy.retry_on:
            policy = dataclasses.replace(
                policy, retry_on=(*policy.retry_on, BackpressureError)
            )
        self.retry_policy = policy
        self._sleep = sleep
        self.retries_total = 0
        #: Recent submissions by idempotency key, for full-envelope
        #: resubmission after a 503 (insertion-ordered, bounded window).
        self._envelopes: dict[str, SubmitEnvelope] = {}

    # -- plumbing ---------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        headers: dict | None = None,
        *,
        until: float | None = None,
    ) -> tuple[int, dict]:
        """One HTTP exchange, retried on :class:`ServiceUnavailableError`.

        ``until`` is an absolute monotonic limit: past it the exchange
        raises :class:`DeadlineExceededError` without touching the wire,
        and before it the retry policy's time budget is clamped to the
        remaining seconds — a retry never sleeps past the deadline.
        """

        def on_retry(attempt: int, delay: float, exc: BaseException) -> None:
            self.retries_total += 1

        policy = self.retry_policy
        if until is not None:
            remaining = until - time.monotonic()
            if remaining <= 0:
                raise DeadlineExceededError(
                    f"deadline exceeded before {method} {path}"
                )
            if policy.deadline is None or policy.deadline > remaining:
                policy = dataclasses.replace(policy, deadline=remaining)
        return call_with_retry(
            self._request_once,
            method,
            path,
            body,
            headers,
            policy=policy,
            sleep=self._sleep,
            on_retry=on_retry,
        )

    def _request_once(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        headers: dict | None = None,
    ) -> tuple[int, dict]:
        data = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            method=method,
            headers={
                **({"Content-Type": "application/json"} if data else {}),
                **(headers or {}),
            },
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.status, json.loads(response.read() or b"{}")
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read() or b"{}")
            except ValueError:
                payload = {}
            hint = _retry_after_hint(payload, exc.headers)
            if exc.code == 503:
                if "retry_after" in payload:
                    raise BackpressureError(
                        exc.code, payload, float(payload["retry_after"])
                    ) from None
                raise ServiceUnavailableError(
                    payload.get("error") or "service unavailable",
                    status=exc.code,
                    payload=payload,
                    retry_after=hint,
                ) from None
            raise ServiceError(exc.code, payload) from None
        except urllib.error.URLError as exc:
            raise ServiceUnavailableError(
                f"service at {self.base_url} is unreachable: {exc.reason}"
            ) from None
        except (ConnectionError, TimeoutError, OSError) as exc:
            raise ServiceUnavailableError(
                f"service at {self.base_url} is unreachable: {exc}"
            ) from None

    # -- resources --------------------------------------------------------

    def submit(
        self,
        scenario: str,
        kind: str = "estimate",
        quality: str | None = None,
        *,
        priority: int = 0,
        timeout: float | None = None,
        seed: int = 1,
        correlation_id: str | None = None,
        idempotency_key: str | None = None,
        deadline: float | None = None,
    ) -> dict:
        """Submit a job; returns its status snapshot (``job["id"]``...).

        ``deadline`` is the end-to-end budget in seconds: it rides to
        the service as ``X-Deadline-Ms`` (becoming the job's execution
        timeout unless ``timeout`` is given explicitly) and bounds this
        submission's own HTTP exchange — past it the client raises
        :class:`DeadlineExceededError` instead of retrying.

        Every submission carries an ``Idempotency-Key`` — the caller's,
        or an auto-generated one.  The same key rides every retry of
        this POST, so an ambiguous failure (the service accepted the job
        but the response was lost, or the process crashed right after
        the ack) resolves to the *original* job on resubmission instead
        of a duplicate execution — including across a service restart,
        because the journal carries the dedup window.

        The full submission is frozen into a :class:`SubmitEnvelope`
        remembered under its key (:meth:`envelope`), so a later
        :meth:`resubmit` after backpressure re-sends *exactly* what was
        sent the first time — same priority included, not whatever the
        call-site defaults happen to be.
        """
        envelope = SubmitEnvelope(
            scenario=scenario,
            kind=kind,
            quality=quality,
            priority=priority,
            timeout=timeout,
            seed=seed,
            correlation_id=correlation_id,
            idempotency_key=idempotency_key or uuid.uuid4().hex,
            deadline=deadline,
        )
        return self.submit_envelope(envelope)

    def submit_envelope(self, envelope: SubmitEnvelope) -> dict:
        """Submit one frozen envelope (the resubmission-safe path)."""
        if not envelope.idempotency_key:
            envelope = dataclasses.replace(
                envelope, idempotency_key=uuid.uuid4().hex
            )
        self._remember(envelope)
        until = (
            time.monotonic() + envelope.deadline
            if envelope.deadline is not None
            else None
        )
        _, doc = self._request(
            "POST",
            "/jobs",
            envelope.body(),
            headers=envelope.headers(),
            until=until,
        )
        return doc["job"]

    def resubmit(self, idempotency_key: str) -> dict:
        """Re-send the original envelope for ``idempotency_key``.

        The correct follow-up to a :class:`BackpressureError`: the same
        key *and* the same body ride again, so the service either dedups
        onto the original job or admits an identical one — never a
        default-priority clone of a high-priority submission.
        """
        envelope = self._envelopes.get(idempotency_key)
        if envelope is None:
            raise KeyError(
                f"no remembered envelope for idempotency key "
                f"{idempotency_key!r}"
            )
        return self.submit_envelope(envelope)

    def envelope(self, idempotency_key: str) -> SubmitEnvelope | None:
        """The remembered envelope for a key, if still in the window."""
        return self._envelopes.get(idempotency_key)

    def _remember(self, envelope: SubmitEnvelope) -> None:
        self._envelopes.pop(envelope.idempotency_key, None)
        self._envelopes[envelope.idempotency_key] = envelope
        while len(self._envelopes) > ENVELOPE_WINDOW:
            self._envelopes.pop(next(iter(self._envelopes)))

    def status(self, job_id: str) -> dict:
        _, doc = self._request("GET", f"/jobs/{job_id}")
        return doc["job"]

    def jobs(self, state: str | None = None) -> list[dict]:
        path = f"/jobs?state={state}" if state else "/jobs"
        _, doc = self._request("GET", path)
        return doc["jobs"]

    def trace(self, job_id: str) -> dict:
        """The job's serialised span tree (``GET /trace/<id>``)."""
        _, doc = self._request("GET", f"/trace/{job_id}")
        return doc["trace"]

    def cancel(self, job_id: str) -> dict:
        _, doc = self._request("DELETE", f"/jobs/{job_id}")
        return doc["job"]

    def result(
        self,
        job_id: str,
        *,
        wait: bool = True,
        deadline: float = 60.0,
        poll_interval: float = 0.05,
    ) -> dict:
        """The job's result document; polls until terminal by default.

        Raises :class:`JobFailedError` when the job failed or was
        cancelled, :class:`DeadlineExceededError` (a
        :class:`TimeoutError` subclass) when ``deadline`` elapses first.
        Polling stops the moment the deadline passes — no request and no
        retry ever runs on a spent budget.
        """
        limit = time.monotonic() + deadline
        while True:
            if time.monotonic() >= limit:
                raise DeadlineExceededError(
                    f"job {job_id} not finished within {deadline:g}s",
                    deadline=deadline,
                )
            try:
                status, doc = self._request(
                    "GET", f"/jobs/{job_id}/result", until=limit
                )
            except ServiceError as exc:
                if exc.status in (410, 500):  # cancelled / failed
                    raise JobFailedError(exc.status, exc.payload) from None
                raise
            if status == 200:
                return doc["result"]
            if not wait:
                raise TimeoutError(f"job {job_id} not finished yet")
            self._sleep(poll_interval)

    def healthz(self) -> dict:
        _, doc = self._request("GET", "/healthz")
        return doc

    def metrics(self) -> dict:
        _, doc = self._request("GET", "/metrics")
        return doc

    def slo(self) -> dict:
        """Burn-rate SLO document (``GET /slo``)."""
        _, doc = self._request("GET", "/slo")
        return doc

    def metrics_text(self) -> str:
        """Prometheus text exposition of ``GET /metrics``."""
        request = urllib.request.Request(
            f"{self.base_url}/metrics", headers={"Accept": "text/plain"}
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.read().decode("utf-8")
        except urllib.error.URLError as exc:
            raise ServiceUnavailableError(
                f"service at {self.base_url} is unreachable: "
                f"{getattr(exc, 'reason', exc)}"
            ) from None
