"""Extension bench — advanced constraints in CSGs (§4.1 / §7).

The paper: "prescribing cardinalities not only to atomic but also to
complex relationships further allows to express n-ary versions of the
above constraints and functional dependencies", while deferring richer
constraints to future work.  This bench exercises both implemented
extensions — FD conflicts through composed relationships and composite
uniqueness through the join operator — on synthetic scenarios and times
the detection.
"""

from repro.core import ResultQuality, default_efes
from repro.core.tasks import StructuralConflict
from repro.matching import (
    CorrespondenceSet,
    attribute_correspondence,
    relation_correspondence,
)
from repro.relational import (
    Database,
    DataType,
    FunctionalDependencyConstraint,
    Schema,
    primary_key,
    relation,
)
from repro.reporting import render_table
from repro.scenarios.scenario import IntegrationScenario


def _fd_scenario(rows: int = 600) -> IntegrationScenario:
    source = Database(
        Schema("src", relations=[relation("s", ["grp", "label"])])
    )
    dirty_groups = {f"g{index % 60}" for index in range(0, rows, 97)}
    seen_dirty: set[str] = set()
    for index in range(rows):
        group = f"g{index % 60}"
        label = f"Label {index % 60}"
        if group in dirty_groups and group not in seen_dirty:
            seen_dirty.add(group)
            label += "!"  # one inconsistent spelling per dirty group
        source.insert("s", (group, label))
    target = Database(
        Schema(
            "tgt",
            relations=[relation("t", ["grp", "label"])],
            constraints=[FunctionalDependencyConstraint("t", "grp", "label")],
        )
    )
    correspondences = CorrespondenceSet(
        [
            relation_correspondence("s", "t"),
            attribute_correspondence("s.grp", "t.grp"),
            attribute_correspondence("s.label", "t.label"),
        ]
    )
    return IntegrationScenario("fd-bench", source, target, correspondences)


def _nary_scenario(rows: int = 600) -> IntegrationScenario:
    source = Database(
        Schema(
            "src",
            relations=[
                relation(
                    "s",
                    [("k", DataType.INTEGER), ("pos", DataType.INTEGER), "v"],
                )
            ],
        )
    )
    for index in range(rows):
        # every 10th row duplicates the previous composite key
        k = index // 3 - (1 if index % 10 == 0 and index else 0)
        source.insert("s", (max(k, 0), index % 3, f"v{index}"))
    target = Database(
        Schema(
            "tgt",
            relations=[
                relation(
                    "t",
                    [("k", DataType.INTEGER), ("pos", DataType.INTEGER), "v"],
                )
            ],
            constraints=[primary_key("t", ("k", "pos"))],
        )
    )
    correspondences = CorrespondenceSet(
        [
            relation_correspondence("s", "t"),
            attribute_correspondence("s.k", "t.k"),
            attribute_correspondence("s.pos", "t.pos"),
            attribute_correspondence("s.v", "t.v"),
        ]
    )
    return IntegrationScenario("nary-bench", source, target, correspondences)


def test_extension_fd_nary(benchmark):
    efes = default_efes()
    fd_scenario = _fd_scenario()
    nary_scenario = _nary_scenario()

    def assess_both():
        return (
            efes.assess(fd_scenario)["structure"],
            efes.assess(nary_scenario)["structure"],
        )

    fd_report, nary_report = benchmark(assess_both)

    fd_rows = [
        v
        for v in fd_report.violations
        if v.conflict is StructuralConflict.FD_VIOLATED
    ]
    nary_rows = [
        v
        for v in nary_report.violations
        if v.conflict is StructuralConflict.UNIQUE_VIOLATED
        and "(" in v.target_attribute
    ]
    print()
    print(
        render_table(
            ["Extension", "Constraint", "Violations", "Inferred κ"],
            [
                (
                    "functional dependency",
                    fd_rows[0].target_relationship,
                    fd_rows[0].violation_count,
                    fd_rows[0].inferred,
                ),
                (
                    "n-ary uniqueness (Lemma 3 join)",
                    nary_rows[0].target_relationship,
                    nary_rows[0].violation_count,
                    nary_rows[0].inferred,
                ),
            ],
            title="Extension — advanced constraints through complex relationships",
        )
    )

    assert fd_rows and fd_rows[0].violation_count == 7  # the dirty groups
    assert nary_rows and nary_rows[0].violation_count > 0
    # Both plans terminate and price the repairs.
    for scenario in (fd_scenario, nary_scenario):
        estimate = efes.estimate(scenario, ResultQuality.HIGH_QUALITY)
        assert estimate.total_minutes > 0
