"""Ablation — leave-one-module-out accuracy (the modularity claim, §3.2).

EFES is "a two-dimensional modularization of the estimation problem";
this bench quantifies what each shipped module contributes by re-running
the full Section 6 evaluation with one module removed at a time.
"""

from repro.core import Efes, MappingModule, StructureModule, ValueModule
from repro.experiments import run_experiments
from repro.practitioner import PractitionerSimulator
from repro.reporting import render_table
from conftest import run_once

CONFIGURATIONS = {
    "full": (MappingModule, StructureModule, ValueModule),
    "no mapping": (StructureModule, ValueModule),
    "no structure": (MappingModule, ValueModule),
    "no values": (MappingModule, StructureModule),
}


def _evaluate_configurations():
    simulator = PractitionerSimulator()
    results = {}
    for name, module_types in CONFIGURATIONS.items():
        report = run_experiments(
            seed=1,
            efes_factory=lambda mt=module_types: Efes([m() for m in mt]),
            simulator=simulator,
        )
        results[name] = report.overall_efes_rmse
    return results


def test_ablation_modules(benchmark):
    results = run_once(benchmark, _evaluate_configurations)

    rows = [
        (name, f"{rmse:.3f}", f"{rmse / results['full']:.2f}x")
        for name, rmse in results.items()
    ]
    print()
    print(
        render_table(
            ["Configuration", "Overall rmse", "vs full"],
            rows,
            title="Ablation — leave-one-module-out (lower rmse is better)",
        )
    )

    # The full configuration is the most accurate one.
    for name, rmse in results.items():
        if name != "full":
            assert results["full"] <= rmse + 1e-9, name
    # Each module contributes: every ablated configuration is measurably
    # worse somewhere (at least one must degrade clearly).
    assert max(results.values()) > results["full"] * 1.2
