"""Resilience overhead benchmark — disarmed vs empty-fault-plan runs.

The resilience layer threads named injection sites (``fault_point``),
retry wrappers, and checksummed spool writes through the hot path; this
bench guards their price when nothing is injected.  Two configurations
of a full ``Efes.run`` over a mid-size generated scenario:

* **disarmed** — no fault plan installed: every ``fault_point`` is one
  module-global read and a ``None`` check (the production default),
* **armed-empty** — an installed plan with zero points: every site takes
  the full match-scan path (lock + rule loop) and still injects nothing.
  This is the worst happy-path case a chaos-enabled CI run pays.

The armed-empty-over-disarmed overhead is gated at ``OVERHEAD_GATE``
(5%), per the resilience ISSUE's acceptance criterion.  A second,
informational section times the checksummed + retried report-store spool
(put + cold get per document) so regressions in the crash-safety
machinery show up in the JSON even though they are off the estimator's
critical path.

On noisy CI hosts timing jitter can exceed the relative gate for this
sub-second workload, so the JSON records a rationale instead of failing
when the absolute delta is below ``NOISE_FLOOR_SECONDS``.

Emits ``BENCH_resilience_overhead.json`` next to the repo root.
``REPRO_BENCH_SMOKE=1`` shrinks the scenario and repetition count so CI
can exercise the gate in seconds.
"""

import json
import os
import time
from pathlib import Path

from repro.core import default_efes
from repro.core.quality import ResultQuality
from repro.reporting import render_table
from repro.resilience import FaultPlan, injected_faults
from repro.runtime import Runtime
from repro.scenarios.example import ExampleParameters, example_scenario
from repro.service import ReportStore
from conftest import run_once

OUTPUT = (
    Path(__file__).resolve().parent.parent
    / "BENCH_resilience_overhead.json"
)

#: Armed-empty-plan overhead must stay below this fraction of the
#: disarmed time (the ISSUE's <5% acceptance gate).
OVERHEAD_GATE = 0.05

#: Absolute deltas below this are indistinguishable from scheduler noise
#: on shared CI runners; the gate then records a rationale instead of
#: failing.
NOISE_FLOOR_SECONDS = 0.050

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


def _scenario():
    if SMOKE:
        return example_scenario(
            ExampleParameters(
                albums=200, multi_artist_albums=50, detached_artists=10
            )
        )
    return example_scenario(
        ExampleParameters(
            albums=1000, multi_artist_albums=250, detached_artists=50
        )
    )


def _min_run_seconds(scenario, repetitions, plan):
    """Best-of-N full pipeline runs, each on a fresh (cold) runtime."""
    best = float("inf")
    outcome = None
    for _ in range(repetitions):
        runtime = Runtime(backend="serial")
        efes = default_efes(runtime=runtime)
        if plan is None:
            started = time.perf_counter()
            outcome = efes.run(scenario, ResultQuality.HIGH_QUALITY)
            best = min(best, time.perf_counter() - started)
        else:
            with injected_faults(plan):
                started = time.perf_counter()
                outcome = efes.run(scenario, ResultQuality.HIGH_QUALITY)
                best = min(best, time.perf_counter() - started)
        runtime.close()
    return best, outcome


def _store_roundtrip_seconds(tmp_dir, documents):
    """Seconds per (checksummed put + cold-cache get) spool round trip."""
    store = ReportStore(tmp_dir)
    payload = {
        "kind": "assess",
        "reports": {"mapping": {"rows": list(range(200))}},
    }
    started = time.perf_counter()
    for index in range(documents):
        store.put(f"key-{index}", payload)
    put_seconds = time.perf_counter() - started
    cold = ReportStore(tmp_dir)  # restart: reads verify checksums
    started = time.perf_counter()
    for index in range(documents):
        assert cold.get(f"key-{index}") is not None
    get_seconds = time.perf_counter() - started
    return put_seconds / documents, get_seconds / documents


def test_resilience_overhead(benchmark, tmp_path):
    scenario = _scenario()
    repetitions = 3 if SMOKE else 5

    disarmed_seconds, disarmed = _min_run_seconds(
        scenario, repetitions, plan=None
    )
    empty_plan = FaultPlan(points=[], name="empty")
    armed_seconds, armed = _min_run_seconds(
        scenario, repetitions, plan=empty_plan
    )

    # An empty plan must never change the answer, only cost scan time.
    assert empty_plan.trip_count() == 0
    assert not armed.is_degraded and not disarmed.is_degraded
    assert (
        armed.estimate.total_minutes == disarmed.estimate.total_minutes
    )

    overhead = armed_seconds / disarmed_seconds - 1.0
    delta_seconds = armed_seconds - disarmed_seconds

    rationale = None
    within_gate = overhead < OVERHEAD_GATE
    if not within_gate and delta_seconds < NOISE_FLOOR_SECONDS:
        rationale = (
            f"absolute delta {delta_seconds * 1e3:.1f}ms is below the "
            f"{NOISE_FLOOR_SECONDS * 1e3:.0f}ms noise floor for this "
            "sub-second workload; relative gate waived"
        )
    assert within_gate or rationale is not None, (
        f"resilience overhead {overhead:.1%} exceeds the "
        f"{OVERHEAD_GATE:.0%} gate "
        f"({disarmed_seconds:.4f}s -> {armed_seconds:.4f}s)"
    )

    documents = 50 if SMOKE else 200
    put_seconds, get_seconds = _store_roundtrip_seconds(
        tmp_path / "spool", documents
    )

    payload = {
        "bench": "resilience_overhead",
        "scenario": scenario.name,
        "smoke": SMOKE,
        "repetitions": repetitions,
        "disarmed_seconds": round(disarmed_seconds, 4),
        "armed_empty_plan_seconds": round(armed_seconds, 4),
        "overhead_fraction": round(overhead, 4),
        "overhead_gate": OVERHEAD_GATE,
        "within_gate": within_gate,
        "rationale": rationale,
        "store_documents": documents,
        "store_put_seconds_each": round(put_seconds, 6),
        "store_cold_get_seconds_each": round(get_seconds, 6),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    bench_runtime = Runtime(backend="serial")
    bench_efes = default_efes(runtime=bench_runtime)
    run_once(
        benchmark,
        bench_efes.run,
        scenario,
        ResultQuality.HIGH_QUALITY,
    )
    bench_runtime.close()

    print()
    print(
        render_table(
            ["Configuration", "Seconds", "Overhead"],
            [
                ("no fault plan", f"{disarmed_seconds:.4f}", "—"),
                (
                    "empty fault plan",
                    f"{armed_seconds:.4f}",
                    f"{overhead:+.1%}",
                ),
            ],
            title=f"Resilience overhead on {scenario.name} "
            f"({'smoke' if SMOKE else 'full'} mode)",
        )
    )
    print(
        f"spool round trip: put {put_seconds * 1e3:.2f}ms, "
        f"cold get {get_seconds * 1e3:.2f}ms per document; "
        f"wrote {OUTPUT.name}"
    )
    if rationale:
        print(f"gate waived: {rationale}")
