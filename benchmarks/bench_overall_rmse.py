"""Section 6.2 (text) — the pooled accuracy over all eight scenarios.

Paper: "When putting the results over the eight scenarios together, EFES
achieves a root-mean-square error of 0.84, while the baseline obtains
1.70" — a ≈2× overall improvement.  We assert the same winner and at
least the same improvement magnitude.
"""

from repro.experiments import run_experiments
from repro.reporting import render_table
from conftest import run_once


def test_overall_rmse(benchmark):
    report = run_once(benchmark, run_experiments, 1)

    rows = [
        (
            "bibliographic",
            f"{report.bibliographic.efes_rmse:.2f}",
            f"{report.bibliographic.counting_rmse:.2f}",
            f"×{report.bibliographic.improvement_factor:.1f}",
        ),
        (
            "music",
            f"{report.music.efes_rmse:.2f}",
            f"{report.music.counting_rmse:.2f}",
            f"×{report.music.improvement_factor:.1f}",
        ),
        (
            "overall",
            f"{report.overall_efes_rmse:.2f}",
            f"{report.overall_counting_rmse:.2f}",
            f"×{report.overall_improvement:.1f}",
        ),
    ]
    print()
    print(
        render_table(
            ["Domain", "Efes rmse", "Counting rmse", "Improvement"],
            rows,
            title="Section 6.2 — relative rmse (paper: 0.47/1.90, 1.05/1.64, 0.84/1.70)",
        )
    )

    assert report.overall_efes_rmse < report.overall_counting_rmse
    assert report.overall_improvement >= 2.0
