"""Observability overhead benchmark — untraced vs traced assessment.

Tracing is off by default; this bench guards the price of that default.
It times a full ``Efes.run`` of a mid-size generated scenario with
tracing disabled (the no-op span fast path) and with tracing enabled
(spans recorded for every stage, detector, and profile call), takes the
minimum of several fresh-runtime repetitions of each, and gates the
enabled-over-disabled overhead at ``OVERHEAD_GATE`` (5%).

Per the ISSUE the hard requirement is the *disabled* path: when tracing
is off the pipeline must run within 5% of a build that never heard of
spans.  Since the no-op path is a single ContextVar read returning a
shared singleton, the honest proxy measured here is enabled-vs-disabled;
if even full recording fits in the gate, the disabled path trivially
does.  On noisy CI hosts timing jitter can exceed the gate for this
sub-second workload, so the JSON records a rationale instead of failing
when the absolute delta is below ``NOISE_FLOOR_SECONDS``.

The gate runs on the backend ``$REPRO_RUNTIME_BACKEND`` selects (serial
by default): under the process backend the traced run additionally pays
for span-context shipping, worker-side telemetry sessions, and parent-
side merging, so the same 5% gate also guards the cross-process
propagation layer.  Emits ``BENCH_observability_overhead.json`` (serial)
or ``BENCH_observability_<backend>.json`` next to the repo root.
``REPRO_BENCH_SMOKE=1`` shrinks the scenario and repetition count so CI
can exercise the gate in seconds.
"""

import json
import os
import time
from pathlib import Path

from repro.core import default_efes
from repro.core.quality import ResultQuality
from repro.reporting import render_table
from repro.runtime import BACKEND_ENV_VAR, Runtime
from repro.scenarios.example import ExampleParameters, example_scenario
from conftest import run_once

BACKEND = os.environ.get(BACKEND_ENV_VAR, "serial")

OUTPUT = Path(__file__).resolve().parent.parent / (
    "BENCH_observability_overhead.json"
    if BACKEND == "serial"
    else f"BENCH_observability_{BACKEND}.json"
)

#: Enabled-tracing overhead must stay below this fraction of the
#: untraced time (the ISSUE's <5% acceptance gate).
OVERHEAD_GATE = 0.05

#: Absolute deltas below this are indistinguishable from scheduler noise
#: on shared CI runners; the gate then records a rationale instead of
#: failing.
NOISE_FLOOR_SECONDS = 0.050

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


def _scenario():
    if SMOKE:
        return example_scenario(
            ExampleParameters(
                albums=200, multi_artist_albums=50, detached_artists=10
            )
        )
    return example_scenario(
        ExampleParameters(
            albums=1000, multi_artist_albums=250, detached_artists=50
        )
    )


def _min_run_seconds(scenario, repetitions, trace):
    """Best-of-N full pipeline runs, each on a fresh (cold) runtime."""
    best = float("inf")
    outcome = None
    for _ in range(repetitions):
        runtime = Runtime(backend=BACKEND)
        efes = default_efes(runtime=runtime)
        started = time.perf_counter()
        outcome = efes.run(
            scenario, ResultQuality.HIGH_QUALITY, trace=trace
        )
        best = min(best, time.perf_counter() - started)
        runtime.close()
    return best, outcome


def test_observability_overhead(benchmark):
    scenario = _scenario()
    repetitions = 3 if SMOKE else 5

    untraced_seconds, untraced = _min_run_seconds(
        scenario, repetitions, trace=False
    )
    traced_seconds, traced = _min_run_seconds(
        scenario, repetitions, trace=True
    )

    # Tracing must never change the answer, only observe it.
    assert untraced.trace is None
    assert traced.trace is not None
    assert (
        traced.estimate.total_minutes == untraced.estimate.total_minutes
    )

    # The recorded tree covers the whole run: every detector and planner
    # appears exactly once and the root total approximates the wall time.
    names = [span.name for span in traced.trace.walk()]
    for stage in (
        "assess",
        "estimate",
        "plan",
        "price",
        "detector:mapping",
        "detector:structure",
        "detector:values",
        "planner:mapping",
        "planner:structure",
        "planner:values",
    ):
        assert names.count(stage) == 1, (stage, names)

    overhead = traced_seconds / untraced_seconds - 1.0
    delta_seconds = traced_seconds - untraced_seconds

    rationale = None
    within_gate = overhead < OVERHEAD_GATE
    if not within_gate and delta_seconds < NOISE_FLOOR_SECONDS:
        rationale = (
            f"absolute delta {delta_seconds * 1e3:.1f}ms is below the "
            f"{NOISE_FLOOR_SECONDS * 1e3:.0f}ms noise floor for this "
            "sub-second workload; relative gate waived"
        )
    assert within_gate or rationale is not None, (
        f"tracing overhead {overhead:.1%} exceeds the "
        f"{OVERHEAD_GATE:.0%} gate "
        f"({untraced_seconds:.4f}s -> {traced_seconds:.4f}s)"
    )

    payload = {
        "bench": "observability_overhead",
        "backend": BACKEND,
        "scenario": scenario.name,
        "smoke": SMOKE,
        "repetitions": repetitions,
        "untraced_seconds": round(untraced_seconds, 4),
        "traced_seconds": round(traced_seconds, 4),
        "overhead_fraction": round(overhead, 4),
        "overhead_gate": OVERHEAD_GATE,
        "within_gate": within_gate,
        "spans_recorded": len(names),
        "rationale": rationale,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    bench_runtime = Runtime(backend=BACKEND)
    bench_efes = default_efes(runtime=bench_runtime)
    run_once(
        benchmark,
        bench_efes.run,
        scenario,
        ResultQuality.HIGH_QUALITY,
        trace=True,
    )
    bench_runtime.close()

    print()
    print(
        render_table(
            ["Configuration", "Seconds", "Overhead"],
            [
                ("tracing disabled", f"{untraced_seconds:.4f}", "—"),
                (
                    "tracing enabled",
                    f"{traced_seconds:.4f}",
                    f"{overhead:+.1%}",
                ),
            ],
            title=f"Tracing overhead on {scenario.name} "
            f"({BACKEND} backend, {'smoke' if SMOKE else 'full'} mode)",
        )
    )
    print(f"{len(names)} spans recorded; wrote {OUTPUT.name}")
    if rationale:
        print(f"gate waived: {rationale}")
