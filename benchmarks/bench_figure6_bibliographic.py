"""Figure 6 — effort estimates (EFES), actual effort (Measured), and
baseline estimates (Counting) of the bibliographic scenario.

Paper claims for this figure (shapes; see DESIGN.md §3):

* EFES consistently outperforms the counting approach,
* rmse 0.47 (EFES) vs 1.90 (Counting) — "an improvement in the effort
  estimation by a factor of four",
* in s4-s4 (identical schemas) EFES detects that there is nothing to
  clean, while "the counting approach estimates considerable cleaning
  effort".
"""

from repro.experiments import cross_validated_results, evaluate_domain
from repro.reporting import render_domain_figure
from conftest import run_once


def test_figure6_bibliographic(benchmark, bibliographic, music, efes, simulator):
    def run_domain():
        cells = {
            "bibliographic": evaluate_domain(bibliographic, efes, simulator),
            "music": evaluate_domain(music, efes, simulator),
        }
        results = cross_validated_results(cells)
        return next(r for r in results if r.domain == "bibliographic")

    result = run_once(benchmark, run_domain)

    print()
    print(render_domain_figure(result))

    assert len(result.rows) == 8
    assert result.efes_rmse < result.counting_rmse
    assert result.improvement_factor >= 2.5  # paper: ≈4×

    # s4-s4: EFES sees no heterogeneities, counting cannot.
    for row in result.rows:
        if row.scenario_name == "s4-s4":
            efes_cleaning = (
                row.efes.breakdown.get("Cleaning (Structure)", 0.0)
                + row.efes.breakdown.get("Cleaning (Values)", 0.0)
            )
            counting_cleaning = row.counting.breakdown.get("Cleaning", 0.0)
            assert efes_cleaning == 0.0
            assert counting_cleaning > 0.0
