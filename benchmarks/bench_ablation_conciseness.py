"""Ablation — the conciseness rule of the path matcher (Section 4.1).

"To resolve this ambiguity, it is assumed that the most concise detected
source relationship is the best match for the atomic target relationship."

The bench builds a source schema with two same-length routes between the
matched endpoints — one through a mandatory FK (κ = 1), one through a
nullable FK (κ = 0..1, lexicographically first) — so that only the
conciseness rule picks the right one; plain shortest-path matching
reports a phantom NOT NULL conflict.
"""

from repro.core.modules.structure import StructureConflictDetector
from repro.matching import (
    CorrespondenceSet,
    attribute_correspondence,
    relation_correspondence,
)
from repro.relational import (
    Database,
    DataType,
    NotNull,
    Schema,
    foreign_key,
    primary_key,
    relation,
)
from repro.reporting import render_table
from repro.scenarios.scenario import IntegrationScenario


def _ambiguous_scenario() -> IntegrationScenario:
    source_schema = Schema(
        "src",
        relations=[
            relation(
                "a",
                [
                    ("id", DataType.INTEGER),
                    # sorts before "strict": the naive matcher picks it
                    ("loose", DataType.INTEGER),
                    ("strict", DataType.INTEGER),
                ],
            ),
            relation("b", [("id", DataType.INTEGER), ("v", DataType.STRING)]),
        ],
        constraints=[
            primary_key("a", "id"),
            primary_key("b", "id"),
            NotNull("a", "strict"),
            NotNull("b", "v"),
            foreign_key("a", "loose", "b", "id"),
            foreign_key("a", "strict", "b", "id"),
        ],
    )
    target_schema = Schema(
        "tgt",
        relations=[relation("t", [("v", DataType.STRING)])],
        constraints=[NotNull("t", "v")],
    )
    source = Database(source_schema)
    source.insert_all("b", [(1, "x"), (2, "y")])
    # The nullable route misses values; the mandatory route never does.
    source.insert_all("a", [(1, None, 1), (2, 1, 2), (3, None, 1)])
    target = Database(target_schema)
    correspondences = CorrespondenceSet(
        [
            relation_correspondence("a", "t"),
            attribute_correspondence("b.v", "t.v"),
        ]
    )
    return IntegrationScenario("ambiguous", source, target, correspondences)


def test_ablation_conciseness(benchmark):
    scenario = _ambiguous_scenario()
    source = scenario.sources[0]
    correspondences = scenario.correspondences[source.name]

    def detect_both():
        with_rule = StructureConflictDetector(use_conciseness=True).detect(
            source, scenario.target, correspondences
        )
        without_rule = StructureConflictDetector(use_conciseness=False).detect(
            source, scenario.target, correspondences
        )
        return with_rule, without_rule

    with_rule, without_rule = benchmark(detect_both)

    print()
    print(
        render_table(
            ["Matching strategy", "Reported conflicts", "Violations"],
            [
                (
                    "most concise path (paper)",
                    len(with_rule),
                    sum(v.violation_count for v in with_rule),
                ),
                (
                    "shortest path only",
                    len(without_rule),
                    sum(v.violation_count for v in without_rule),
                ),
            ],
            title="Ablation — conciseness rule in relationship matching",
        )
    )

    from repro.core.tasks import StructuralConflict

    def not_null_conflicts(violations):
        return [
            v
            for v in violations
            if v.conflict is StructuralConflict.NOT_NULL_VIOLATED
        ]

    # The mandatory route satisfies κ(ρ_t→v) = 1: no NOT NULL conflict.
    assert not_null_conflicts(with_rule) == []
    # Without the rule, the nullable route wins and reports phantom
    # NOT NULL violations for the two tuples with a NULL `loose` FK.
    phantom = not_null_conflicts(without_rule)
    assert phantom
    assert sum(v.violation_count for v in phantom) == 2
