"""Durability overhead benchmark — journal-off vs journal-on scheduling.

The write-ahead job journal puts one fsynced ``submitted`` record in
front of every acknowledged submission and batches the advisory
``dispatched``/``settled`` records behind it; this bench guards what
that costs on a representative service workload: a fleet of estimate
jobs (real ``Efes.run`` payloads over a generated scenario) driven
through a live :class:`JobScheduler`, with and without a journal under
the default batch flush policy.

The journal-on-over-off overhead is gated at ``OVERHEAD_GATE`` (5%),
per the durability ISSUE's acceptance criterion.  As with the
resilience bench, timing jitter on shared CI hosts can exceed the
relative gate for this sub-second workload, so the JSON records a
rationale instead of failing when the absolute delta is below
``NOISE_FLOOR_SECONDS``.

Two informational sections ride along: raw journal append throughput
under each flush policy (the strict-vs-batch dial), and the replay +
recovery-plan speed over a populated journal — the startup price of a
crash.

Emits ``BENCH_durability_overhead.json`` next to the repo root.
``REPRO_BENCH_SMOKE=1`` shrinks the workload so CI can exercise the
gate in seconds.
"""

import json
import os
import time
from pathlib import Path

from repro.core import default_efes
from repro.core.quality import ResultQuality
from repro.durability import (
    FlushPolicy,
    JobJournal,
    RecoveryManager,
    dispatched_record,
    settled_record,
    submitted_record,
)
from repro.reporting import render_table
from repro.runtime import Runtime
from repro.scenarios.example import ExampleParameters, example_scenario
from repro.service.jobs import Job
from repro.service.scheduler import JobScheduler
from conftest import run_once

OUTPUT = (
    Path(__file__).resolve().parent.parent
    / "BENCH_durability_overhead.json"
)

#: Journal-on overhead must stay below this fraction of the journal-off
#: time (the ISSUE's <5% acceptance gate).
OVERHEAD_GATE = 0.05

#: Absolute deltas below this are indistinguishable from scheduler noise
#: on shared CI runners; the gate then records a rationale instead of
#: failing.
NOISE_FLOOR_SECONDS = 0.050

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


def _scenario():
    if SMOKE:
        return example_scenario(
            ExampleParameters(
                albums=150, multi_artist_albums=40, detached_artists=8
            )
        )
    return example_scenario(
        ExampleParameters(
            albums=400, multi_artist_albums=100, detached_artists=20
        )
    )


def _fleet_seconds(runtime, payload, jobs, journal_dir):
    """Wall seconds to submit + settle a fleet of journalled jobs."""
    journal = (
        JobJournal(journal_dir, flush=FlushPolicy.batched())
        if journal_dir is not None
        else None
    )
    scheduler = JobScheduler(
        runtime=runtime, workers=2, journal=journal, trace=False
    )
    started = time.perf_counter()
    submitted = [
        scheduler.submit_callable(
            payload, payload_ref=f"bench-{index}",
            idempotency_key=f"bench-{index}",
        )
        for index in range(jobs)
    ]
    for job in submitted:
        finished = scheduler.wait(job.id, timeout=120)
        assert finished.error is None, finished.error
    elapsed = time.perf_counter() - started
    scheduler.close()
    return elapsed


def _append_throughput(directory, policy, records):
    """Records per second of raw journal appends under one policy."""
    journal = JobJournal(directory, flush=policy)
    job = Job(kind="callable", scenario_name="bench")
    started = time.perf_counter()
    for index in range(records):
        journal.append(submitted_record(job, payload_ref=f"r{index}"))
        journal.append(dispatched_record(job.id))
        journal.append(settled_record(job.id, "done"))
    elapsed = time.perf_counter() - started
    journal.close()
    return (records * 3) / elapsed


def _replay_seconds(directory):
    """Startup price: replay + plan over the journal just written."""
    journal = JobJournal(directory)
    started = time.perf_counter()
    summary = RecoveryManager(journal).inspect()
    elapsed = time.perf_counter() - started
    journal.close()
    return elapsed, summary["records"]


def test_durability_overhead(benchmark, tmp_path):
    scenario = _scenario()
    jobs = 8 if SMOKE else 16
    repetitions = 3 if SMOKE else 5

    runtime = Runtime(backend="serial")
    efes = default_efes(runtime=runtime)
    efes.run(scenario, ResultQuality.HIGH_QUALITY)  # warm caches/imports

    def payload(job):
        outcome = efes.run(scenario, ResultQuality.HIGH_QUALITY)
        return {"total_minutes": outcome.estimate.total_minutes}

    off_seconds = min(
        _fleet_seconds(runtime, payload, jobs, None)
        for _ in range(repetitions)
    )
    on_seconds = min(
        _fleet_seconds(
            runtime, payload, jobs, tmp_path / f"journal-{index}"
        )
        for index in range(repetitions)
    )

    overhead = on_seconds / off_seconds - 1.0
    delta_seconds = on_seconds - off_seconds

    rationale = None
    within_gate = overhead < OVERHEAD_GATE
    if not within_gate and delta_seconds < NOISE_FLOOR_SECONDS:
        rationale = (
            f"absolute delta {delta_seconds * 1e3:.1f}ms is below the "
            f"{NOISE_FLOOR_SECONDS * 1e3:.0f}ms noise floor for this "
            "sub-second workload; relative gate waived"
        )
    assert within_gate or rationale is not None, (
        f"journal overhead {overhead:.1%} exceeds the "
        f"{OVERHEAD_GATE:.0%} gate "
        f"({off_seconds:.4f}s -> {on_seconds:.4f}s)"
    )

    append_records = 100 if SMOKE else 500
    strict_rps = _append_throughput(
        tmp_path / "strict", FlushPolicy.strict(), append_records
    )
    batch_rps = _append_throughput(
        tmp_path / "batch", FlushPolicy.batched(), append_records
    )
    replay_seconds, replayed_records = _replay_seconds(tmp_path / "batch")

    payload_doc = {
        "bench": "durability_overhead",
        "scenario": scenario.name,
        "smoke": SMOKE,
        "jobs": jobs,
        "repetitions": repetitions,
        "journal_off_seconds": round(off_seconds, 4),
        "journal_on_seconds": round(on_seconds, 4),
        "overhead_fraction": round(overhead, 4),
        "overhead_gate": OVERHEAD_GATE,
        "within_gate": within_gate,
        "rationale": rationale,
        "append_records": append_records * 3,
        "strict_appends_per_second": round(strict_rps),
        "batch_appends_per_second": round(batch_rps),
        "replay_records": replayed_records,
        "replay_seconds": round(replay_seconds, 4),
    }
    OUTPUT.write_text(
        json.dumps(payload_doc, indent=2) + "\n", encoding="utf-8"
    )

    run_once(
        benchmark,
        _fleet_seconds,
        runtime,
        payload,
        jobs,
        tmp_path / "journal-bench",
    )
    runtime.close()

    print()
    print(
        render_table(
            ["Configuration", "Seconds", "Overhead"],
            [
                ("journal off", f"{off_seconds:.4f}", "—"),
                (
                    "journal on (batch)",
                    f"{on_seconds:.4f}",
                    f"{overhead:+.1%}",
                ),
            ],
            title=f"Durability overhead, {jobs} estimate jobs on "
            f"{scenario.name} ({'smoke' if SMOKE else 'full'} mode)",
        )
    )
    print(
        f"appends/s: strict {strict_rps:,.0f}, batch {batch_rps:,.0f}; "
        f"replay of {replayed_records} records took "
        f"{replay_seconds * 1e3:.1f}ms; wrote {OUTPUT.name}"
    )
    if rationale:
        print(f"gate waived: {rationale}")
