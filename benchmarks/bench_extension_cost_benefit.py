"""Extension bench — cost-benefit curves (Section 7 future work).

"This integration would allow to plot cost-benefit graphs for the
integration: the more effort, the better the quality of the result."
The bench times curve computation for all eight evaluation scenarios and
asserts the curves are monotone (more effort never retains less data).
"""

from repro.core import ResultQuality
from repro.extensions import cost_benefit_curve
from repro.reporting import render_table
from conftest import run_once


def test_extension_cost_benefit(benchmark, bibliographic, music, efes):
    scenarios = bibliographic + music

    def all_curves():
        return {
            scenario.name: cost_benefit_curve(efes, scenario)
            for scenario in scenarios
        }

    curves = run_once(benchmark, all_curves)

    rows = []
    for name, curve in curves.items():
        low = next(p for p in curve if p.quality is ResultQuality.LOW_EFFORT)
        high = next(
            p for p in curve if p.quality is ResultQuality.HIGH_QUALITY
        )
        rows.append(
            (
                name,
                f"{low.effort_minutes:.0f} min / {low.benefit:.1%}",
                f"{high.effort_minutes:.0f} min / {high.benefit:.1%}",
            )
        )
    print()
    print(
        render_table(
            ["Scenario", "Low effort", "High quality"],
            rows,
            title="Extension — cost-benefit curves per scenario",
        )
    )

    for name, curve in curves.items():
        efforts = [point.effort_minutes for point in curve]
        benefits = [point.benefit for point in curve]
        assert efforts == sorted(efforts), name
        assert benefits == sorted(benefits), name
        assert benefits[-1] == 1.0, name  # high quality keeps everything
    # At least one scenario trades real data away at low effort.
    assert any(curve[0].benefit < 1.0 for curve in curves.values())
