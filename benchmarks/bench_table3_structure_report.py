"""Table 3 — "Complexity report of the structure conflict detector".

Paper rows::

    Constraint in target schema        | Violation count in source data
    κ(ρ_records→artist)  = 1           | 503
    κ(ρ_artist→records)  = 1..*        | 102
"""

from repro.core.modules.structure import StructureModule
from repro.reporting import render_table

PAPER_COUNTS = {
    ("records->records.artist", "1"): 503,
    ("records.artist->records", "1..*"): 102,
}


def test_table3_structure_report(benchmark, example):
    module = StructureModule()
    report = benchmark(module.assess, example)

    rows = [
        (
            f"κ({violation.target_relationship}) = {violation.prescribed}",
            violation.violation_count,
        )
        for violation in report.violations
    ]
    print()
    print(
        render_table(
            ["Constraint in target schema", "Violation count in source data"],
            rows,
            title="Table 3 — structure conflict report",
        )
    )
    measured = {
        (violation.target_relationship, violation.prescribed): (
            violation.violation_count
        )
        for violation in report.violations
    }
    assert measured == PAPER_COUNTS
