"""Ablation — cross-domain calibration (Section 6.2).

"To obtain fair calibrations of EFES and this baseline model, we employed
cross validation."  The bench compares three calibration regimes for both
estimators: none (raw), cross-domain (the paper's), and oracle in-domain
(an upper bound that leaks test data).
"""

from repro.core.calibration import relative_rmse
from repro.experiments import (
    calibrate_counting_rate,
    calibrate_efes_scale,
    evaluate_domain,
)
from repro.reporting import render_table
from conftest import run_once


def _regimes(bibliographic, music, efes, simulator):
    cells = {
        "bibliographic": evaluate_domain(bibliographic, efes, simulator),
        "music": evaluate_domain(music, efes, simulator),
    }
    all_rows = []
    for domain, domain_cells in cells.items():
        other = [
            cell
            for name, cs in cells.items()
            if name != domain
            for cell in cs
        ]
        for cell in domain_cells:
            all_rows.append(
                {
                    "measured": cell.measured_total,
                    "raw": cell.efes_total,
                    "cross": cell.efes_total * calibrate_efes_scale(other),
                    "oracle": cell.efes_total
                    * calibrate_efes_scale(domain_cells),
                    "count_raw": cell.counting_attributes * 8.05 * 60,
                    "count_cross": cell.counting_attributes
                    * calibrate_counting_rate(other),
                }
            )
    measured = [row["measured"] for row in all_rows]
    return {
        "Efes raw": relative_rmse(measured, [r["raw"] for r in all_rows]),
        "Efes cross-calibrated": relative_rmse(
            measured, [r["cross"] for r in all_rows]
        ),
        "Efes oracle-calibrated": relative_rmse(
            measured, [r["oracle"] for r in all_rows]
        ),
        "Counting raw (8.05 h/attr)": relative_rmse(
            measured, [r["count_raw"] for r in all_rows]
        ),
        "Counting cross-calibrated": relative_rmse(
            measured, [r["count_cross"] for r in all_rows]
        ),
    }


def test_ablation_calibration(benchmark, bibliographic, music, efes, simulator):
    results = run_once(
        benchmark, _regimes, bibliographic, music, efes, simulator
    )

    print()
    print(
        render_table(
            ["Estimator / regime", "Overall rmse"],
            [(name, f"{value:.3f}") for name, value in results.items()],
            title="Ablation — calibration regimes",
        )
    )

    # Cross-domain calibration helps both estimators...
    assert results["Efes cross-calibrated"] <= results["Efes raw"] + 1e-9
    assert (
        results["Counting cross-calibrated"]
        < results["Counting raw (8.05 h/attr)"]
    )
    # ... and the oracle bound confirms cross-validation leaves little on
    # the table for EFES.
    assert (
        results["Efes oracle-calibrated"]
        <= results["Efes cross-calibrated"] + 1e-9
    )
    # Even a perfectly calibrated counting model loses to EFES.
    assert results["Efes cross-calibrated"] < results["Counting cross-calibrated"]
