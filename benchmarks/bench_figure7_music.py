"""Figure 7 — effort estimates of the music scenario.

Paper claims for this figure (shapes):

* "the results show a smaller difference between the two estimation
  approaches" than in the bibliographic domain — the counting baseline's
  rmse in this domain is lower than in the bibliographic one,
* "even in cases where EFES cannot exploit all of its modules, and when
  counting should perform at its best, our systematic estimation is
  better": rmse 1.05 (EFES) vs 1.64 (Counting).
"""

from repro.experiments import cross_validated_results, evaluate_domain
from repro.reporting import render_domain_figure
from conftest import run_once


def test_figure7_music(benchmark, bibliographic, music, efes, simulator):
    def run_domain():
        cells = {
            "bibliographic": evaluate_domain(bibliographic, efes, simulator),
            "music": evaluate_domain(music, efes, simulator),
        }
        results = cross_validated_results(cells)
        return {r.domain: r for r in results}

    results = run_once(benchmark, run_domain)
    result = results["music"]

    print()
    print(render_domain_figure(result))

    assert len(result.rows) == 8
    assert result.efes_rmse < result.counting_rmse

    # Counting is *relatively* stronger here than in the bibliographic
    # domain (mapping-dominated scenarios suit a schema-size model).
    assert (
        results["music"].counting_rmse
        < results["bibliographic"].counting_rmse
    )

    # d1-d2 (identical schemas): EFES predicts pure mapping effort.
    for row in result.rows:
        if row.scenario_name == "d1-d2":
            assert row.efes.breakdown.get(
                "Cleaning (Structure)", 0.0
            ) + row.efes.breakdown.get("Cleaning (Values)", 0.0) == 0.0
