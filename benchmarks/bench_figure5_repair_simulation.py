"""Figure 5 — "Extract of a virtual CSG instance as cleaning tasks are
performed on it".

Times the full repair-planning simulation of the running example and
verifies the simulated state transitions the figure depicts: *Add new
tuples for records* fixes artist→records but breaks records→title, which
the follow-up *Add missing values for title* then repairs.
"""

from repro.core import ResultQuality
from repro.core.modules.structure import StructureModule
from repro.core.tasks import TaskType
from repro.reporting import render_table


def test_figure5_repair_simulation(benchmark, example):
    module = StructureModule()
    report = module.assess(example)

    tasks = benchmark(
        module.plan, example, report, ResultQuality.HIGH_QUALITY
    )

    rows = [
        (index + 1, task.describe(), int(task.repetitions))
        for index, task in enumerate(tasks)
    ]
    print()
    print(
        render_table(
            ["Step", "Task", "Repetitions"],
            rows,
            title="Figure 5 — simulated repair sequence",
        )
    )

    types = [task.type for task in tasks]
    # (a)→(b): Add tuples is applied for the detached artists ...
    assert TaskType.ADD_TUPLES in types
    # (b)→(c): ... and its side effect (titleless records) is repaired
    # *after* the causing task.
    assert TaskType.ADD_MISSING_VALUES in types
    assert types.index(TaskType.ADD_TUPLES) < types.index(
        TaskType.ADD_MISSING_VALUES
    )
    add_missing = next(
        task for task in tasks if task.type is TaskType.ADD_MISSING_VALUES
    )
    add_tuples = next(
        task for task in tasks if task.type is TaskType.ADD_TUPLES
    )
    # The new violation affects exactly the tuples the first task created.
    assert add_missing.parameter("values") == add_tuples.repetitions
