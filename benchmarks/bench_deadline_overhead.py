"""Deadline checkpoint overhead benchmark — bare vs scoped runs.

The deadline layer threads cooperative checkpoints through the
super-linear hot paths (per-detector loops, per-column profiling, the
dependency lattice search); this bench guards their price when no
budget is in play.  Two configurations of a full ``Efes.run`` over a
mid-size generated scenario:

* **bare** — no cancel scope active: every ``checkpoint()`` is one
  contextvar read and a ``None`` check (the production default for
  deadline-free submissions),
* **scoped** — an active :class:`CancelScope` with a far-future
  deadline: every checkpoint consults the scope, reads the monotonic
  clock, and passes through the (disarmed) ``deadline.checkpoint``
  fault site.  This is the worst happy-path case a deadline-bounded
  run pays while its budget is healthy.

The scoped-over-bare overhead is gated at ``OVERHEAD_GATE`` (5%), per
the deadline ISSUE's acceptance criterion.  On noisy CI hosts timing
jitter can exceed the relative gate for this sub-second workload, so
the JSON records a rationale instead of failing when the absolute
delta is below ``NOISE_FLOOR_SECONDS``.

Emits ``BENCH_deadline_overhead.json`` next to the repo root.
``REPRO_BENCH_SMOKE=1`` shrinks the scenario and repetition count so CI
can exercise the gate in seconds.
"""

import json
import os
import time
from pathlib import Path

from repro.core import default_efes
from repro.core.quality import ResultQuality
from repro.reporting import render_table
from repro.runtime import CancelScope, Deadline, Runtime
from repro.scenarios.example import ExampleParameters, example_scenario
from conftest import run_once

OUTPUT = (
    Path(__file__).resolve().parent.parent / "BENCH_deadline_overhead.json"
)

#: Scoped-checkpoint overhead must stay below this fraction of the bare
#: time (the ISSUE's <5% acceptance gate on deadline-free runs).
OVERHEAD_GATE = 0.05

#: Absolute deltas below this are indistinguishable from scheduler noise
#: on shared CI runners; the gate then records a rationale instead of
#: failing.
NOISE_FLOOR_SECONDS = 0.050

#: Far enough out that no checkpoint ever observes an expired budget.
FAR_DEADLINE_SECONDS = 3600.0

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


def _scenario():
    if SMOKE:
        return example_scenario(
            ExampleParameters(
                albums=200, multi_artist_albums=50, detached_artists=10
            )
        )
    return example_scenario(
        ExampleParameters(
            albums=1000, multi_artist_albums=250, detached_artists=50
        )
    )


def _min_run_seconds(scenario, repetitions, scoped):
    """Best-of-N full pipeline runs, each on a fresh (cold) runtime."""
    best = float("inf")
    outcome = None
    for _ in range(repetitions):
        runtime = Runtime(backend="serial")
        efes = default_efes(runtime=runtime)
        if scoped:
            scope = CancelScope(
                deadline=Deadline.after(FAR_DEADLINE_SECONDS),
                label="bench",
            )
            with scope.activated():
                started = time.perf_counter()
                outcome = efes.run(scenario, ResultQuality.HIGH_QUALITY)
                best = min(best, time.perf_counter() - started)
        else:
            started = time.perf_counter()
            outcome = efes.run(scenario, ResultQuality.HIGH_QUALITY)
            best = min(best, time.perf_counter() - started)
        runtime.close()
    return best, outcome


def test_deadline_overhead(benchmark):
    scenario = _scenario()
    repetitions = 3 if SMOKE else 5

    bare_seconds, bare = _min_run_seconds(
        scenario, repetitions, scoped=False
    )
    scoped_seconds, scoped = _min_run_seconds(
        scenario, repetitions, scoped=True
    )

    # A healthy-budget scope must never change the answer, only cost
    # clock reads.
    assert not bare.is_degraded and not scoped.is_degraded
    assert scoped.estimate.total_minutes == bare.estimate.total_minutes

    overhead = scoped_seconds / bare_seconds - 1.0
    delta_seconds = scoped_seconds - bare_seconds

    rationale = None
    within_gate = overhead < OVERHEAD_GATE
    if not within_gate and delta_seconds < NOISE_FLOOR_SECONDS:
        rationale = (
            f"absolute delta {delta_seconds * 1e3:.1f}ms is below the "
            f"{NOISE_FLOOR_SECONDS * 1e3:.0f}ms noise floor for this "
            "sub-second workload; relative gate waived"
        )
    assert within_gate or rationale is not None, (
        f"deadline checkpoint overhead {overhead:.1%} exceeds the "
        f"{OVERHEAD_GATE:.0%} gate "
        f"({bare_seconds:.4f}s -> {scoped_seconds:.4f}s)"
    )

    payload = {
        "bench": "deadline_overhead",
        "scenario": scenario.name,
        "smoke": SMOKE,
        "repetitions": repetitions,
        "bare_seconds": round(bare_seconds, 4),
        "scoped_seconds": round(scoped_seconds, 4),
        "overhead_fraction": round(overhead, 4),
        "overhead_gate": OVERHEAD_GATE,
        "within_gate": within_gate,
        "rationale": rationale,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    bench_runtime = Runtime(backend="serial")
    bench_efes = default_efes(runtime=bench_runtime)
    run_once(
        benchmark,
        bench_efes.run,
        scenario,
        ResultQuality.HIGH_QUALITY,
    )
    bench_runtime.close()

    print()
    print(
        render_table(
            ["Configuration", "Seconds", "Overhead"],
            [
                ("no cancel scope", f"{bare_seconds:.4f}", "—"),
                (
                    "active scope, far deadline",
                    f"{scoped_seconds:.4f}",
                    f"{overhead:+.1%}",
                ),
            ],
            title=f"Deadline checkpoint overhead on {scenario.name} "
            f"({'smoke' if SMOKE else 'full'} mode)",
        )
    )
    print(f"wrote {OUTPUT.name}")
    if rationale:
        print(f"gate waived: {rationale}")
