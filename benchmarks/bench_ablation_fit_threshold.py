"""Ablation — the 0.9 value-fit threshold (Section 5.1).

Paper: "In experiments with importance scores and fit values between 0
and 1, we found 0.9 to be a good threshold to separate seamlessly
integrating attribute pairs from those that had notably different
characteristics."

The sweep shows why: low thresholds keep the true conversions but a very
high threshold starts flagging attribute pairs that integrate seamlessly
(the identity scenarios), i.e. 0.9 sits below the false-positive knee
while retaining every true positive.
"""

from repro.core import Efes
from repro.core.modules.values import ValueModule
from repro.reporting import render_table
from repro.scenarios import bibliographic_scenarios, music_scenarios
from conftest import run_once

THRESHOLDS = (0.5, 0.7, 0.9, 0.999)
IDENTITY = {"s4-s4", "d1-d2"}


def _findings_by_threshold(scenarios):
    table = {}
    for threshold in THRESHOLDS:
        efes = Efes([ValueModule(fit_threshold=threshold)])
        per_scenario = {}
        for scenario in scenarios:
            report = efes.assess(scenario)["values"]
            per_scenario[scenario.name] = len(report.findings)
        table[threshold] = per_scenario
    return table


def test_ablation_fit_threshold(benchmark, bibliographic, music):
    scenarios = bibliographic + music
    table = run_once(benchmark, _findings_by_threshold, scenarios)

    names = [scenario.name for scenario in scenarios]
    rows = [
        (threshold, *[table[threshold][name] for name in names])
        for threshold in THRESHOLDS
    ]
    print()
    print(
        render_table(
            ["threshold", *names],
            rows,
            title="Ablation — value-fit threshold sweep (findings per scenario)",
        )
    )

    paper = table[0.9]
    # At the paper's threshold the identity scenarios are perfectly clean
    # and every heterogeneous scenario has findings.
    for name in names:
        if name in IDENTITY:
            assert paper[name] == 0, name
        else:
            assert paper[name] > 0, name
    # An extreme threshold flags seamless pairs too (false positives).
    extreme = table[0.999]
    assert any(extreme[name] > 0 for name in IDENTITY)
    # Finding counts grow monotonically with the threshold.
    for name in names:
        counts = [table[threshold][name] for threshold in THRESHOLDS]
        assert counts == sorted(counts), name
