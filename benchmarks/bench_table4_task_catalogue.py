"""Table 4 — "Structural conflicts and their corresponding cleaning tasks".

A static catalogue; the bench renders it and times a full high- and
low-quality planning pass over the running example, which exercises every
catalogue lookup path.
"""

from repro.core import ResultQuality
from repro.core.modules.structure import StructureModule
from repro.core.tasks import STRUCTURE_TASK_CATALOGUE, StructuralConflict
from repro.reporting import render_table

PAPER_TABLE4 = {
    StructuralConflict.NOT_NULL_VIOLATED: ("Reject tuples", "Add missing values"),
    StructuralConflict.UNIQUE_VIOLATED: ("Set values to null", "Aggregate tuples"),
    StructuralConflict.MULTIPLE_ATTRIBUTE_VALUES: ("Keep any value", "Merge values"),
    StructuralConflict.VALUE_WITHOUT_ENCLOSING_TUPLE: (
        "Delete detached values",
        "Add tuples",
    ),
    StructuralConflict.FK_VIOLATED: (
        "Delete dangling values",
        "Add referenced values",
    ),
}


def test_table4_task_catalogue(benchmark, example):
    module = StructureModule()
    report = module.assess(example)

    def plan_both_qualities():
        return (
            module.plan(example, report, ResultQuality.LOW_EFFORT),
            module.plan(example, report, ResultQuality.HIGH_QUALITY),
        )

    benchmark(plan_both_qualities)

    rows = []
    for conflict, expected in PAPER_TABLE4.items():  # the paper's 5 classes
        by_quality = STRUCTURE_TASK_CATALOGUE[conflict]
        low = by_quality[ResultQuality.LOW_EFFORT].value
        high = by_quality[ResultQuality.HIGH_QUALITY].value
        rows.append((conflict.value, low, high))
        assert (low, high) == expected
    # The FD row is this repo's extension beyond Table 4 (see DESIGN.md).
    fd = STRUCTURE_TASK_CATALOGUE[StructuralConflict.FD_VIOLATED]
    rows.append(
        (
            StructuralConflict.FD_VIOLATED.value + " (extension)",
            fd[ResultQuality.LOW_EFFORT].value,
            fd[ResultQuality.HIGH_QUALITY].value,
        )
    )
    print()
    print(
        render_table(
            ["Constraint", "Low effort", "High quality"],
            rows,
            title="Table 4 — structural conflicts and cleaning tasks",
        )
    )
