"""Runtime micro-benchmark — serial vs threaded vs cached assessment.

Times a full phase-1 assessment of the largest generated scenario (the
running example at the 2000-album size class, as in
``bench_runtime_scaling``) on the serial backend, the threaded backend
(cold cache), and the threaded backend again (warm cache), asserting
that all three produce byte-identical complexity reports.

Emits ``BENCH_runtime_parallelism.json`` next to the repo root so the
perf trajectory can be tracked across commits.  On single-core hosts (or
any CPython, where the GIL serialises this pure-Python workload) the
thread-level speedup is bounded near 1×; the cache is the reliable win,
and when neither reaches the 1.5× bar the JSON records the rationale
instead of failing the bench.
"""

import json
import os
import time
from pathlib import Path

from repro.core import default_efes
from repro.reporting import render_table
from repro.runtime import Runtime, auto_worker_count
from repro.scenarios.example import ExampleParameters, example_scenario
from conftest import run_once

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_runtime_parallelism.json"

#: The bar the ISSUE sets; missing it is allowed only with a rationale.
TARGET_SPEEDUP = 1.5


def _timed(function):
    started = time.perf_counter()
    result = function()
    return result, time.perf_counter() - started


def test_runtime_parallelism(benchmark):
    scenario = example_scenario(
        ExampleParameters(
            albums=2000, multi_artist_albums=500, detached_artists=100
        )
    )

    serial_runtime = Runtime(backend="serial")
    serial_reports, serial_seconds = _timed(
        lambda: default_efes(runtime=serial_runtime).assess(scenario)
    )

    threaded_runtime = Runtime(backend="threads")
    threaded_efes = default_efes(runtime=threaded_runtime)
    threaded_reports, threaded_seconds = _timed(
        lambda: threaded_efes.assess(scenario)
    )
    warm_reports, warm_seconds = _timed(lambda: threaded_efes.assess(scenario))

    # Determinism: backend and cache state must not change a single byte.
    assert repr(threaded_reports) == repr(serial_reports)
    assert repr(warm_reports) == repr(serial_reports)

    # The repeated assessment must be served (partly) from cache.
    hit_rate = threaded_runtime.metrics.cache_hit_rate
    assert hit_rate > 0.0

    threaded_speedup = serial_seconds / threaded_seconds
    warm_speedup = serial_seconds / warm_seconds
    best_speedup = max(threaded_speedup, warm_speedup)

    rationale = None
    if best_speedup < TARGET_SPEEDUP:
        rationale = (
            f"pure-Python CPU-bound workload on {os.cpu_count()} core(s): "
            "the GIL bounds thread-level speedup near 1x and this run's "
            "instance sizes leave little cacheable work; see "
            "README.md#performance"
        )

    payload = {
        "bench": "runtime_parallelism",
        "scenario": scenario.name,
        "source_rows": scenario.sources[0].total_rows(),
        "cpu_count": os.cpu_count(),
        "workers": auto_worker_count(),
        "serial_seconds": round(serial_seconds, 4),
        "threaded_cold_seconds": round(threaded_seconds, 4),
        "threaded_warm_seconds": round(warm_seconds, 4),
        "threaded_speedup": round(threaded_speedup, 2),
        "warm_cache_speedup": round(warm_speedup, 2),
        "best_speedup": round(best_speedup, 2),
        "target_speedup": TARGET_SPEEDUP,
        "cache_hits": threaded_runtime.metrics.cache_hits,
        "cache_misses": threaded_runtime.metrics.cache_misses,
        "cache_hit_rate": round(hit_rate, 3),
        "identical_reports": True,
        "rationale": rationale,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    run_once(benchmark, threaded_efes.assess, scenario)

    print()
    print(
        render_table(
            ["Configuration", "Seconds", "Speedup"],
            [
                ("serial, cold cache", f"{serial_seconds:.3f}", "1.00x"),
                (
                    "threads, cold cache",
                    f"{threaded_seconds:.3f}",
                    f"{threaded_speedup:.2f}x",
                ),
                (
                    "threads, warm cache",
                    f"{warm_seconds:.3f}",
                    f"{warm_speedup:.2f}x",
                ),
            ],
            title="Runtime parallelism/caching on the 2000-album scenario",
        )
    )
    print(f"cache hit rate: {hit_rate:.1%}; wrote {OUTPUT.name}")
    if rationale:
        print(f"speedup below {TARGET_SPEEDUP}x target: {rationale}")

    serial_runtime.close()
    threaded_runtime.close()
