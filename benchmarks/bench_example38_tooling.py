"""Example 3.8 — manual vs tool-assisted mapping effort.

Paper: writing the two mapping queries of the running example manually
with ``effort = 3·tables + 1·attributes + 3·PKs`` costs 25 (18 + 4 + 3)
minutes; with a schema-mapping tool [18] that generates the mapping from
the correspondences, a constant 2 minutes per connection → 4 minutes.
"""

import pytest

from repro.core import ResultQuality
from repro.core.effort import ExecutionSettings, constant, linear, price_tasks
from repro.core.modules.mapping import MappingModule
from repro.core.tasks import TaskType
from repro.reporting import render_table


def test_example38_tooling(benchmark, example):
    module = MappingModule()
    report = module.assess(example)
    tasks = module.plan(example, report, ResultQuality.HIGH_QUALITY)

    manual = ExecutionSettings(
        {
            TaskType.WRITE_MAPPING: linear(
                tables=3.0, attributes=1.0, primary_keys=3.0
            )
        },
        name="manual-sql",
    )
    tooled = ExecutionSettings(
        {TaskType.WRITE_MAPPING: constant(2.0)}, name="++spicy-style-tool"
    )

    def price_both():
        return (
            price_tasks("example", ResultQuality.HIGH_QUALITY, tasks, manual),
            price_tasks("example", ResultQuality.HIGH_QUALITY, tasks, tooled),
        )

    manual_estimate, tooled_estimate = benchmark(price_both)

    print()
    print(
        render_table(
            ["Execution settings", "Mapping effort [min]"],
            [
                ("manual SQL (Example 3.8)", manual_estimate.total_minutes),
                ("mapping tool [18]", tooled_estimate.total_minutes),
            ],
            title="Example 3.8 — configurability of the effort functions",
        )
    )
    assert manual_estimate.total_minutes == pytest.approx(25.0)
    assert tooled_estimate.total_minutes == pytest.approx(4.0)
