"""Table 6 — "Complexity report of the value fit detector".

Paper row::

    Value heterogeneity                          Additional parameters
    Different value representation               274,523 source values,
      (length → duration)                        260,923 distinct source values

Our synthetic instance is smaller (≈6k songs — the absolute counts are a
property of the authors' dump, not of the method), but the report shape
is identical: exactly one heterogeneity, of class *Different value
representations*, between ``songs.length`` and ``tracks.duration``, with
``values``/``distinct_values`` parameters attached.
"""

from repro.core.modules.values import ValueModule
from repro.core.tasks import ValueHeterogeneity
from repro.reporting import render_table


def test_table6_value_report(benchmark, example):
    module = ValueModule()
    report = benchmark(module.assess, example)

    rows = [
        (
            finding.heterogeneity.value,
            f"{finding.source_attribute} -> {finding.target_attribute}",
            f"{finding.parameters['values']:g} source values, "
            f"{finding.parameters['distinct_values']:g} distinct",
        )
        for finding in report.findings
    ]
    print()
    print(
        render_table(
            ["Value heterogeneity", "Attributes", "Additional parameters"],
            rows,
            title="Table 6 — value fit complexity report",
        )
    )

    assert len(report.findings) == 1
    finding = report.findings[0]
    assert finding.heterogeneity is ValueHeterogeneity.DIFFERENT_REPRESENTATIONS
    assert (finding.source_attribute, finding.target_attribute) == (
        "songs.length",
        "tracks.duration",
    )
    assert finding.parameters["values"] >= finding.parameters["distinct_values"]
    assert finding.parameters["distinct_values"] > 0
