"""Figure 4 — the running example translated into CSGs.

Times the relational → CSG conversion of both example databases and
verifies the prescribed cardinalities the figure annotates.
"""

from repro.csg import (
    AT_LEAST_ONE,
    AT_MOST_ONE,
    EXACTLY_ONE,
    database_to_csg,
    schema_to_csg,
)
from repro.reporting import render_table


def test_figure4_csg_conversion(benchmark, example):
    def convert_both():
        source_graph, source_instance = database_to_csg(example.sources[0])
        target_graph = schema_to_csg(example.target.schema)
        return source_graph, source_instance, target_graph

    source_graph, source_instance, target_graph = benchmark(convert_both)

    # Figure 4's annotated cardinalities (target side).
    expectations = [
        ("tracks", "tracks.record", EXACTLY_ONE),       # record NOT NULL
        ("tracks.record", "tracks", AT_LEAST_ONE),      # not unique
        ("records", "records.id", EXACTLY_ONE),         # PK
        ("records.id", "records", EXACTLY_ONE),         # PK
        ("tracks", "tracks.duration", AT_MOST_ONE),     # nullable
    ]
    rows = []
    for start, end, expected in expectations:
        actual = target_graph.relationship(start, end).cardinality
        rows.append((f"ρ_{start}→{end}", str(expected), str(actual)))
        assert actual == expected
    print()
    print(
        render_table(
            ["Relationship", "Figure 4", "Converted"],
            rows,
            title="Figure 4 — prescribed cardinalities after conversion",
        )
    )

    # Conversion is lossless: every source tuple appears as an element.
    assert len(source_instance.elements("albums")) == len(
        example.sources[0].table("albums")
    )
    assert len(source_graph.table_nodes()) == 4
