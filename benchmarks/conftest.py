"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see the
experiment index in DESIGN.md).  Scenario construction and the full
Section 6 evaluation are cached per session; the ``benchmark`` fixture
then times the interesting computation and the bench prints the rows the
paper reports (run with ``pytest benchmarks/ --benchmark-only -s`` to see
them).
"""

from __future__ import annotations

import os
import threading

import pytest

from repro.core import default_efes
from repro.practitioner import PractitionerSimulator
from repro.scenarios import (
    bibliographic_scenarios,
    example_scenario,
    music_scenarios,
)


@pytest.fixture(scope="session")
def example():
    return example_scenario()


@pytest.fixture(scope="session")
def efes():
    return default_efes()


@pytest.fixture(scope="session")
def simulator():
    return PractitionerSimulator()


@pytest.fixture(scope="session")
def bibliographic():
    return bibliographic_scenarios(seed=1)


@pytest.fixture(scope="session")
def music():
    return music_scenarios(seed=1)


@pytest.fixture(scope="session")
def service_url():
    """Base URL of an assessment service to benchmark against.

    ``$REPRO_SERVICE_URL`` points the benches at a live ``efes serve``
    deployment; without it an in-process server is spun up on an
    ephemeral port (same code path, no network setup required).
    """
    url = os.environ.get("REPRO_SERVICE_URL")
    if url:
        yield url.rstrip("/")
        return

    from repro.service import JobScheduler, make_server

    scheduler = JobScheduler(workers=2, max_queue=64)
    server = make_server(scheduler, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server.url
    finally:
        server.shutdown()
        server.server_close()
        scheduler.close(wait=True, timeout=10.0)
        thread.join(timeout=5.0)


@pytest.fixture(scope="session")
def experiment_report():
    from repro.experiments import run_experiments

    return run_experiments(seed=1)


def run_once(benchmark, function, *args, **kwargs):
    """Benchmark an expensive pipeline with a single timed round."""
    return benchmark.pedantic(
        function, args=args, kwargs=kwargs, rounds=1, iterations=1
    )


def pytest_terminal_summary(terminalreporter):
    """Print the shared runtime's instrumentation after a bench session.

    Every bench that goes through ``default_efes()`` (or the profiling
    entry points) executes on the process-wide runtime, so its cache
    hit/miss counters and stage timings summarise the whole session.
    """
    from repro.runtime import default_runtime

    metrics = default_runtime().metrics
    if metrics.is_empty():
        return
    terminalreporter.write_line("")
    for line in metrics.render().splitlines():
        terminalreporter.write_line(line)
