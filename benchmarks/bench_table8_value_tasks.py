"""Table 8 — "Value transformation tasks and their estimated effort".

Paper rows::

    Task                          Parameters                      Effort
    Convert values                274,523 values,                 15 mins
      (length → duration)         260,923 distinct values
    Total                                                         15 mins
"""

import pytest

from repro.core import ResultQuality, default_execution_settings
from repro.core.effort import price_tasks
from repro.core.modules.values import ValueModule
from repro.core.tasks import TaskType
from repro.reporting import render_table

PAPER_TOTAL_MINUTES = 15.0


def test_table8_value_tasks(benchmark, example):
    module = ValueModule()
    settings = default_execution_settings()
    report = module.assess(example)

    def plan_and_price():
        tasks = module.plan(example, report, ResultQuality.HIGH_QUALITY)
        return price_tasks(
            example.name, ResultQuality.HIGH_QUALITY, tasks, settings
        )

    estimate = benchmark(plan_and_price)

    rows = [
        (
            entry.task.describe(),
            f"{entry.task.parameter('values'):g} values, "
            f"{entry.task.parameter('distinct_values'):g} distinct values",
            f"{entry.minutes:g} mins",
        )
        for entry in estimate.entries
    ]
    rows.append(("Total", "", f"{estimate.total_minutes:g} mins"))
    print()
    print(
        render_table(
            ["Task", "Parameters", "Effort"],
            rows,
            title="Table 8 — value transformation tasks",
        )
    )

    assert estimate.total_minutes == pytest.approx(PAPER_TOTAL_MINUTES)
    assert [entry.task.type for entry in estimate.entries] == [
        TaskType.CONVERT_VALUES
    ]
    assert "songs.length" in estimate.entries[0].task.subject
