"""Fleet failover latency and throughput-vs-workers.

Two questions the supervised fleet (``efes fleet serve``) must answer
with numbers, not prose:

* **How long is a worker death visible?**  Each round submits a small
  job mix, SIGKILLs one worker mid-workload (in-process sim workers —
  the same journal/store poisoning fidelity the chaos matrix uses, so
  hundreds of failovers fit in seconds), and measures the time from the
  kill to a fully healed fleet (death detected, journal fenced and
  replayed, unsettled work re-dispatched, replacement live at the next
  epoch).  Reported as p50/p99 over the rounds.
* **What does fleet size cost?**  A fixed cold job mix is pushed
  through fleets of 1, 2, and 3 workers (fresh directory each, so the
  shared store cannot warm-serve across curve points) and jobs/second
  is recorded per fleet size.  The payload records ``cpu_count`` so the
  curve can be read correctly: on a single-core host the points expose
  pure routing/coordination overhead, while on multi-core hosts they
  show compute scaling.

Results go to ``BENCH_fleet_failover.json``.  ``REPRO_BENCH_SMOKE=1``
shrinks rounds and the curve so CI can exercise the harness quickly.
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import threading
import time
from pathlib import Path

from repro.fleet import FleetSupervisor, make_fleet_server
from repro.reporting import render_table
from repro.service import ServiceClient
from conftest import run_once

# The sim-worker backend lives with the chaos tests; the bench reuses it
# for cheap, high-fidelity kills instead of paying process spawn tax per
# failover sample.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from tests.sim.fleet_harness import SimWorkerBackend  # noqa: E402

OUTPUT = (
    Path(__file__).resolve().parent.parent / "BENCH_fleet_failover.json"
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: Kill-and-heal samples for the latency distribution.
FAILOVER_ROUNDS = 3 if SMOKE else 12

#: Fleet sizes on the throughput curve.
CURVE = (1, 2) if SMOKE else (1, 2, 3)

#: Cold job mix per curve point: distinct (scenario, quality) pairs so
#: content addressing cannot collapse them onto one execution.
JOB_MIX = [
    (name, quality)
    for name in (("s1-s2", "s4-s4") if SMOKE else ("s1-s2", "s1-s3", "s3-s4", "s4-s4"))
    for quality in ("low", "high")
]

HEARTBEAT = 0.04
LIVENESS = 0.5


def _percentile(values, fraction):
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
    return ordered[index]


def _start_fleet(directory, workers):
    backend = SimWorkerBackend(directory)
    supervisor = FleetSupervisor(
        directory,
        workers=workers,
        backend=backend,
        heartbeat_interval=HEARTBEAT,
        liveness_deadline=LIVENESS,
        startup_grace=10.0,
        restart_dead=True,
    )
    supervisor.start()
    deadline = time.monotonic() + 30.0
    while supervisor.status()["live"] < workers:
        if time.monotonic() > deadline:
            raise AssertionError(f"fleet never came up: {supervisor.status()}")
        time.sleep(0.01)
    server = make_fleet_server(supervisor)
    thread = threading.Thread(
        target=lambda: server.serve_forever(poll_interval=0.02), daemon=True
    )
    thread.start()
    return supervisor, backend, server, thread


def _stop_fleet(supervisor, backend, server, thread):
    server.shutdown()
    server.server_close()
    supervisor.close()
    backend.close_all()
    thread.join(timeout=5.0)


def _measure_failovers(directory):
    """Kill one worker per round; seconds from kill to healed fleet."""
    supervisor, backend, server, thread = _start_fleet(directory, workers=2)
    client = ServiceClient(server.url, timeout=60.0)
    healed_seconds = []
    settled_seconds = []
    try:
        for round_index in range(FAILOVER_ROUNDS):
            jobs = {}
            for job_index, (name, quality) in enumerate(JOB_MIX[:4]):
                job = client.submit(
                    name,
                    quality=quality,
                    priority=3,  # never shed while degraded
                    seed=100 + round_index,  # cold content every round
                    idempotency_key=f"fo-{round_index}-{job_index}",
                )
                jobs[job["id"]] = name
            victim = f"w{round_index % 2}"
            epoch_before = next(
                worker["epoch"]
                for worker in supervisor.status()["workers"]
                if worker["worker_id"] == victim
            )
            killed_at = time.perf_counter()
            backend.current[victim].kill9()
            for job_id in jobs:
                client.result(job_id, deadline=60.0)
            settled_seconds.append(time.perf_counter() - killed_at)
            deadline = time.monotonic() + 30.0
            while True:
                status = supervisor.status()
                record = next(
                    worker
                    for worker in status["workers"]
                    if worker["worker_id"] == victim
                )
                if (
                    record["state"] == "live"
                    and record["epoch"] == epoch_before + 1
                ):
                    break
                if time.monotonic() > deadline:
                    raise AssertionError(f"fleet never healed: {status}")
                time.sleep(0.005)
            healed_seconds.append(time.perf_counter() - killed_at)
        assert supervisor.failovers_total >= FAILOVER_ROUNDS
    finally:
        _stop_fleet(supervisor, backend, server, thread)
    return healed_seconds, settled_seconds


def _measure_curve(base_directory):
    """Cold jobs/second for each fleet size, fresh directory each."""
    points = []
    for workers in CURVE:
        supervisor, backend, server, thread = _start_fleet(
            base_directory / f"curve-{workers}", workers
        )
        client = ServiceClient(server.url, timeout=60.0)
        try:
            started = time.perf_counter()
            jobs = [
                client.submit(
                    name,
                    quality=quality,
                    idempotency_key=f"curve-{workers}-{index}",
                )["id"]
                for index, (name, quality) in enumerate(JOB_MIX)
            ]
            for job_id in jobs:
                client.result(job_id, deadline=120.0)
            wall = time.perf_counter() - started
        finally:
            _stop_fleet(supervisor, backend, server, thread)
        points.append(
            {
                "workers": workers,
                "jobs": len(JOB_MIX),
                "wall_seconds": round(wall, 4),
                "jobs_per_second": round(len(JOB_MIX) / wall, 2),
            }
        )
    return points


def test_fleet_failover(benchmark, tmp_path):
    (healed, settled), curve = run_once(
        benchmark,
        lambda: (
            _measure_failovers(tmp_path / "failover"),
            _measure_curve(tmp_path),
        ),
    )

    payload = {
        "bench": "fleet_failover",
        "smoke": SMOKE,
        "cpu_count": os.cpu_count(),
        "heartbeat_interval_seconds": HEARTBEAT,
        "liveness_deadline_seconds": LIVENESS,
        "failover": {
            "rounds": FAILOVER_ROUNDS,
            "healed_p50_seconds": round(statistics.median(healed), 4),
            "healed_p99_seconds": round(_percentile(healed, 0.99), 4),
            "healed_max_seconds": round(max(healed), 4),
            "all_results_p50_seconds": round(
                statistics.median(settled), 4
            ),
            "all_results_p99_seconds": round(
                _percentile(settled, 0.99), 4
            ),
        },
        "throughput": curve,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    print()
    print(
        render_table(
            ["Metric", "p50 (s)", "p99 (s)"],
            [
                (
                    "kill -> healed (respawned live)",
                    f"{payload['failover']['healed_p50_seconds']:.3f}",
                    f"{payload['failover']['healed_p99_seconds']:.3f}",
                ),
                (
                    "kill -> all results served",
                    f"{payload['failover']['all_results_p50_seconds']:.3f}",
                    f"{payload['failover']['all_results_p99_seconds']:.3f}",
                ),
            ],
            title=f"Fleet failover over {FAILOVER_ROUNDS} kill(s)",
        )
    )
    print(
        render_table(
            ["Workers", "Jobs", "Wall (s)", "Jobs/s"],
            [
                (
                    str(point["workers"]),
                    str(point["jobs"]),
                    f"{point['wall_seconds']:.2f}",
                    f"{point['jobs_per_second']:.2f}",
                )
                for point in curve
            ],
            title=f"Cold throughput vs fleet size ({os.cpu_count()} CPU(s))",
        )
    )
    print(f"wrote {OUTPUT.name}")

    # Sanity floors, not performance assertions: every kill healed, and
    # every curve point completed its whole mix.
    assert len(healed) == FAILOVER_ROUNDS
    assert all(point["jobs_per_second"] > 0 for point in curve)
