"""Section 6.2 (text) — runtime: "EFES relies on simple SQL queries only
for the analysis of the data and completes within seconds for databases
with thousands of tuples".

Times a full assessment of the running example at growing instance sizes
and asserts the seconds-scale claim at the paper's size class.
"""

import time

from repro.core import default_efes
from repro.reporting import render_table
from repro.scenarios.example import ExampleParameters, example_scenario
from conftest import run_once


def test_runtime_scaling(benchmark):
    efes = default_efes()
    sizes = (250, 1000, 2000)
    scenarios = {
        albums: example_scenario(
            ExampleParameters(
                albums=albums,
                multi_artist_albums=albums // 4,
                detached_artists=albums // 20,
            )
        )
        for albums in sizes
    }

    def assess_largest():
        return efes.assess(scenarios[sizes[-1]])

    rows = []
    for albums, scenario in scenarios.items():
        started = time.perf_counter()
        efes.assess(scenario)
        elapsed = time.perf_counter() - started
        rows.append(
            (albums, scenario.sources[0].total_rows(), f"{elapsed:.2f}s")
        )

    run_once(benchmark, assess_largest)

    print()
    print(
        render_table(
            ["Albums", "Source rows", "Assessment time"],
            rows,
            title="Section 6.2 — assessment runtime scaling",
        )
    )
    # "completes within seconds for databases with thousands of tuples"
    largest_elapsed = float(rows[-1][2].rstrip("s"))
    assert largest_elapsed < 10.0
