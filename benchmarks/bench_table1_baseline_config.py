"""Table 1 — "Tasks and effort per attribute from [14]" (Harden's model).

The table is the configuration of the attribute-counting baseline; the
bench verifies the published numbers and times a baseline estimation.
"""

import pytest

from repro.core import (
    AttributeCountingBaseline,
    HARDEN_TASKS,
    HOURS_PER_ATTRIBUTE,
    ResultQuality,
)
from repro.reporting import render_table


def test_table1_baseline_config(benchmark, example):
    baseline = AttributeCountingBaseline()
    estimate = benchmark(
        baseline.estimate, example, ResultQuality.HIGH_QUALITY
    )

    print()
    print(
        render_table(
            ["Task", "Hours per attribute"],
            list(HARDEN_TASKS),
            title="Table 1 — tasks and effort per attribute [14]",
        )
    )
    assert HOURS_PER_ATTRIBUTE == pytest.approx(8.05)
    assert estimate.total_minutes == pytest.approx(
        8.05 * 60 * example.total_source_attributes()
    )
