"""Table 9 — "Effort calculation functions used for the experiments".

Verifies the configured functions against the published ones (with the
documented Convert-values interpretation, see EXPERIMENTS.md) and times a
full pricing pass over one synthetic task per type.
"""

import pytest

from repro.core import ResultQuality, default_execution_settings
from repro.core.tasks import Task, TaskType
from repro.reporting import render_table


def make_task(task_type, **parameters):
    return Task(
        type=task_type,
        quality=ResultQuality.HIGH_QUALITY,
        subject="bench",
        parameters=parameters,
    )


#: (task type, parameters, expected minutes) — straight from Table 9.
PAPER_CASES = [
    (TaskType.AGGREGATE_VALUES, {"repetitions": 7}, 21.0),
    (TaskType.CONVERT_VALUES, {"representations": 3}, 15.0),
    (TaskType.CONVERT_VALUES, {"representations": 200}, 50.0),
    (TaskType.GENERALIZE_VALUES, {"distinct_values": 40}, 20.0),
    (TaskType.REFINE_VALUES, {"values": 40}, 20.0),
    (TaskType.DROP_VALUES, {}, 10.0),
    (TaskType.ADD_VALUES, {"values": 102}, 204.0),
    (TaskType.CREATE_ENCLOSING_TUPLES, {}, 10.0),
    (TaskType.DROP_DETACHED_VALUES, {}, 0.0),
    (TaskType.REJECT_TUPLES, {}, 5.0),
    (TaskType.KEEP_ANY_VALUE, {}, 5.0),
    (TaskType.ADD_TUPLES, {}, 5.0),
    (TaskType.AGGREGATE_TUPLES, {}, 5.0),
    (TaskType.DELETE_DANGLING_VALUES, {}, 5.0),
    (TaskType.ADD_REFERENCED_VALUES, {}, 5.0),
    (TaskType.DELETE_DANGLING_TUPLES, {}, 5.0),
    (TaskType.UNLINK_ALL_BUT_ONE_TUPLE, {}, 5.0),
    (
        TaskType.WRITE_MAPPING,
        {"foreign_keys": 2, "primary_keys": 1, "attributes": 4, "tables": 6},
        31.0,  # 3·2 + 3·1 + 4 + 3·6
    ),
]


def test_table9_effort_functions(benchmark):
    settings = default_execution_settings()
    tasks = [make_task(task_type, **params) for task_type, params, _ in PAPER_CASES]

    def price_all():
        return [settings.effort_of(task) for task in tasks]

    efforts = benchmark(price_all)

    rows = [
        (task_type.value, str(params or "-"), f"{minutes:g}")
        for (task_type, params, _), minutes in zip(PAPER_CASES, efforts)
    ]
    print()
    print(
        render_table(
            ["Task", "Parameters", "Effort [min]"],
            rows,
            title="Table 9 — effort calculation functions",
        )
    )
    for (task_type, params, expected), minutes in zip(PAPER_CASES, efforts):
        assert minutes == pytest.approx(expected), (task_type, params)
