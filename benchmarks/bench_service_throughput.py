"""Assessment-service throughput — N concurrent clients over real HTTP.

Drives the full submit -> poll -> result cycle against a running service
(``$REPRO_SERVICE_URL`` or an in-process server, see ``conftest``) with
several client threads, twice over the same job set:

* **cold** — the report store is empty, every job runs the pipeline;
* **warm** — identical content, every job is served from the store.

Records jobs/sec and p50/p95 end-to-end latency for both passes to
``BENCH_service_throughput.json``.  Backpressure (503 + Retry-After) is
handled with the advertised retry hint, so the bench also exercises the
bounded queue under contention.
"""

import json
import statistics
import threading
import time
from pathlib import Path

from repro.reporting import render_table
from repro.service import BackpressureError, ServiceClient
from conftest import run_once

OUTPUT = (
    Path(__file__).resolve().parent.parent / "BENCH_service_throughput.json"
)

#: Concurrent client threads.
CLIENTS = 4

#: The job mix: every bibliographic pairwise scenario at both qualities.
JOB_SPECS = [
    (name, "estimate", quality)
    for name in ("s1-s2", "s1-s3", "s3-s4", "s4-s4")
    for quality in ("low", "high")
]


def _percentile(latencies, fraction):
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
    return ordered[index]


def _run_pass(url, specs, clients):
    """Fan the job specs out over ``clients`` threads; per-job latency."""
    latencies = []
    errors = []
    lock = threading.Lock()

    def worker(worker_specs):
        client = ServiceClient(url)
        for name, kind, quality in worker_specs:
            started = time.perf_counter()
            try:
                while True:
                    try:
                        job = client.submit(name, kind=kind, quality=quality)
                        break
                    except BackpressureError as exc:
                        time.sleep(min(exc.retry_after, 0.25))
                client.result(job["id"], deadline=300)
            except Exception as exc:  # noqa: BLE001 - recorded, not raised
                with lock:
                    errors.append(f"{name}/{quality}: {exc}")
                continue
            with lock:
                latencies.append(time.perf_counter() - started)

    threads = [
        threading.Thread(target=worker, args=(specs[index::clients],))
        for index in range(clients)
    ]
    wall_started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_seconds = time.perf_counter() - wall_started
    return latencies, wall_seconds, errors


def _summarise(label, latencies, wall_seconds):
    return {
        "pass": label,
        "jobs": len(latencies),
        "wall_seconds": round(wall_seconds, 4),
        "jobs_per_second": round(len(latencies) / wall_seconds, 2),
        "p50_latency_seconds": round(statistics.median(latencies), 4),
        "p95_latency_seconds": round(_percentile(latencies, 0.95), 4),
        "mean_latency_seconds": round(statistics.fmean(latencies), 4),
    }


def test_service_throughput(benchmark, service_url):
    client = ServiceClient(service_url)
    assert client.healthz()["status"] == "ok"

    cold_latencies, cold_wall, cold_errors = _run_pass(
        service_url, JOB_SPECS, CLIENTS
    )
    assert not cold_errors, cold_errors
    assert len(cold_latencies) == len(JOB_SPECS)

    # Identical content a second time: served from the report store.
    warm_latencies, warm_wall, warm_errors = run_once(
        benchmark, _run_pass, service_url, JOB_SPECS, CLIENTS
    )
    assert not warm_errors, warm_errors
    assert len(warm_latencies) == len(JOB_SPECS)

    metrics = client.metrics()
    store_hits = metrics["counters"].get("store_hits", 0)
    assert store_hits >= len(JOB_SPECS), (
        "warm pass should be served from the report store"
    )

    cold = _summarise("cold", cold_latencies, cold_wall)
    warm = _summarise("warm", warm_latencies, warm_wall)
    payload = {
        "bench": "service_throughput",
        "url": service_url,
        "clients": CLIENTS,
        "job_mix": [f"{name}:{quality}" for name, _, quality in JOB_SPECS],
        "cold": cold,
        "warm": warm,
        "warm_speedup": round(
            cold["wall_seconds"] / warm["wall_seconds"], 2
        ),
        "store_hits": store_hits,
        "jobs_from_store": metrics["counters"].get("jobs_from_store", 0),
        "jobs_rejected": metrics["counters"].get("jobs_rejected", 0),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    print()
    print(
        render_table(
            ["Pass", "Jobs", "Jobs/s", "p50 (s)", "p95 (s)"],
            [
                (
                    row["pass"],
                    str(row["jobs"]),
                    f"{row['jobs_per_second']:.2f}",
                    f"{row['p50_latency_seconds']:.3f}",
                    f"{row['p95_latency_seconds']:.3f}",
                )
                for row in (cold, warm)
            ],
            title=f"Service throughput, {CLIENTS} concurrent clients",
        )
    )
    print(
        f"warm-store speedup: {payload['warm_speedup']}x; "
        f"store hits: {store_hits}; wrote {OUTPUT.name}"
    )
