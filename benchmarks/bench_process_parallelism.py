"""Process-pool benchmark — serial vs process-backed assessment.

Times a full phase-1 assessment of the large running-example scenario on
the serial backend, the process backend at a multi-worker pool, and the
process backend pinned to one worker, asserting all three produce
byte-identical complexity reports.

Emits ``BENCH_process_parallelism.json`` next to the repo root.  Two
gates ride on the numbers:

* with >=4 workers on a multi-core host the process backend must reach
  ``TARGET_SPEEDUP`` (2x) over serial — the GIL does not apply across
  processes, so the pure-Python profiling workload finally scales;
* with exactly one worker the backend must stay within 5% of serial —
  the executor runs single-worker dispatch inline and never even starts
  a pool, so ``--workers 1`` pays no IPC tax.

On single-core hosts the multi-worker gate is unreachable (there is
nothing to overlap and fork/IPC only add cost), so — like
``bench_runtime_parallelism`` — the JSON records a rationale instead of
failing.  ``REPRO_BENCH_SMOKE=1`` shrinks the scenario so CI can
exercise the full code path quickly.
"""

import json
import os
import tempfile
import time
from pathlib import Path

from repro.core import default_efes
from repro.reporting import render_table
from repro.runtime import Runtime, ScenarioSpool, auto_worker_count
from repro.scenarios.example import ExampleParameters, example_scenario
from conftest import run_once

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_process_parallelism.json"

#: The bar the ISSUE sets for >=4 workers on a multi-core host.
TARGET_SPEEDUP = 2.0

#: Allowed single-worker slowdown relative to serial (inline dispatch).
ONE_WORKER_TOLERANCE = 1.05

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

ALBUMS = 400 if SMOKE else 2000

#: Repetitions for the serial and one-worker legs; their difference is
#: what the 5% bound judges, so best-of-N beats a single noisy sample.
REPS = 2 if SMOKE else 3


def _timed(function):
    started = time.perf_counter()
    result = function()
    return result, time.perf_counter() - started


def _best_of(reps, make_runtime, run):
    """Cold-cache best-of-``reps``: a fresh runtime per repetition."""
    best_seconds, result = None, None
    for _ in range(reps):
        runtime = make_runtime()
        result, seconds = _timed(lambda: run(runtime))
        runtime.close()
        if best_seconds is None or seconds < best_seconds:
            best_seconds = seconds
    return result, best_seconds


def test_process_parallelism(benchmark):
    scenario = example_scenario(
        ExampleParameters(
            albums=ALBUMS,
            multi_artist_albums=ALBUMS // 4,
            detached_artists=ALBUMS // 20,
        )
    )
    cpu_count = os.cpu_count() or 1
    pool_workers = max(4, min(auto_worker_count(), 8))

    def assess_with(runtime):
        return default_efes(runtime=runtime).assess(scenario)

    serial_reports, serial_seconds = _best_of(
        REPS, lambda: Runtime(backend="serial"), assess_with
    )

    with tempfile.TemporaryDirectory(prefix="repro-bench-spool-") as spool_dir:
        pooled_runtime = Runtime(
            backend="process",
            max_workers=pool_workers,
            spool=ScenarioSpool(spool_dir),
        )
        pooled_efes = default_efes(runtime=pooled_runtime)
        pooled_reports, pooled_seconds = _timed(
            lambda: pooled_efes.assess(scenario)
        )
        pooled_fallbacks = pooled_runtime.metrics.counter("process_fallbacks")

        single_pools = []

        def single_runtime():
            runtime = Runtime(
                backend="process",
                max_workers=1,
                spool=ScenarioSpool(spool_dir),
            )
            single_pools.append(runtime.executor)
            return runtime

        single_reports, single_seconds = _best_of(
            REPS, single_runtime, assess_with
        )

        # Determinism: the backend must not change a single byte, and the
        # pooled run must genuinely have stayed on the process path.
        assert repr(pooled_reports) == repr(serial_reports)
        assert repr(single_reports) == repr(serial_reports)
        assert pooled_fallbacks == 0
        # One worker dispatches inline: the pool is never created.
        assert all(executor._pool is None for executor in single_pools)

        pooled_speedup = serial_seconds / pooled_seconds
        single_overhead = single_seconds / serial_seconds

        rationale = None
        if pooled_speedup < TARGET_SPEEDUP and cpu_count < 4:
            rationale = (
                f"{cpu_count} core(s): the {TARGET_SPEEDUP}x gate assumes "
                f">=4 cores to overlap {pool_workers} workers; on this host "
                "fork/IPC cost cannot be amortised by parallel compute; "
                "see README.md#parallelism"
            )
        single_ok = single_overhead <= ONE_WORKER_TOLERANCE
        within_gate = (
            pooled_speedup >= TARGET_SPEEDUP or rationale is not None
        ) and single_ok
        if not single_ok and serial_seconds < 1.0:
            # Sub-second smoke runs put the 5% bar inside timer noise.
            rationale = (
                (rationale + "; " if rationale else "")
                + f"single-worker check ran in {serial_seconds:.3f}s serial "
                "— below the resolution where a 5% bound is meaningful"
            )
            within_gate = pooled_speedup >= TARGET_SPEEDUP or bool(rationale)

        payload = {
            "bench": "process_parallelism",
            "scenario": scenario.name,
            "source_rows": scenario.sources[0].total_rows(),
            "smoke": SMOKE,
            "cpu_count": cpu_count,
            "pool_workers": pool_workers,
            "serial_seconds": round(serial_seconds, 4),
            "process_seconds": round(pooled_seconds, 4),
            "one_worker_seconds": round(single_seconds, 4),
            "process_speedup": round(pooled_speedup, 2),
            "one_worker_overhead": round(single_overhead, 3),
            "one_worker_tolerance": ONE_WORKER_TOLERANCE,
            "target_speedup": TARGET_SPEEDUP,
            "process_fallbacks": pooled_fallbacks,
            "identical_reports": True,
            "within_gate": within_gate,
            "rationale": rationale,
        }
        OUTPUT.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )

        run_once(benchmark, pooled_efes.assess, scenario)

        print()
        print(
            render_table(
                ["Configuration", "Seconds", "vs serial"],
                [
                    ("serial", f"{serial_seconds:.3f}", "1.00x"),
                    (
                        f"process, {pool_workers} workers",
                        f"{pooled_seconds:.3f}",
                        f"{pooled_speedup:.2f}x",
                    ),
                    (
                        "process, 1 worker (inline)",
                        f"{single_seconds:.3f}",
                        f"{1 / single_overhead:.2f}x",
                    ),
                ],
                title=(
                    f"Process-pool assessment on the {ALBUMS}-album scenario"
                ),
            )
        )
        print(f"wrote {OUTPUT.name}")
        if rationale:
            print(f"gate note: {rationale}")

        pooled_runtime.close()
