"""Table 7 — "Value heterogeneities and corresponding cleaning tasks".

Static catalogue; the bench renders it and times the planner on a
synthetic report covering every heterogeneity class.
"""

from repro.core import ResultQuality
from repro.core.modules.values import ValueTransformationPlanner
from repro.core.reports import ValueHeterogeneityFinding
from repro.core.tasks import VALUE_TASK_CATALOGUE, TaskType, ValueHeterogeneity
from repro.reporting import render_table

PAPER_TABLE7 = {
    ValueHeterogeneity.TOO_FEW_ELEMENTS: (None, TaskType.ADD_VALUES),
    ValueHeterogeneity.DIFFERENT_REPRESENTATIONS_CRITICAL: (
        TaskType.DROP_VALUES,
        TaskType.CONVERT_VALUES,
    ),
    ValueHeterogeneity.DIFFERENT_REPRESENTATIONS: (
        None,
        TaskType.CONVERT_VALUES,
    ),
    ValueHeterogeneity.TOO_FINE_GRAINED: (None, TaskType.GENERALIZE_VALUES),
    ValueHeterogeneity.TOO_COARSE_GRAINED: (None, TaskType.REFINE_VALUES),
}


def _full_report():
    return [
        ValueHeterogeneityFinding(
            source_database="src",
            source_attribute="s.v",
            target_attribute="t.v",
            heterogeneity=heterogeneity,
            parameters={"values": 100.0, "distinct_values": 80.0,
                        "representations": 2.0},
        )
        for heterogeneity in ValueHeterogeneity
    ]


def test_table7_value_catalogue(benchmark):
    planner = ValueTransformationPlanner()
    findings = _full_report()

    def plan_both():
        return (
            planner.plan(findings, ResultQuality.LOW_EFFORT),
            planner.plan(findings, ResultQuality.HIGH_QUALITY),
        )

    low_tasks, high_tasks = benchmark(plan_both)

    rows = []
    for heterogeneity, (low, high) in PAPER_TABLE7.items():
        catalogue = VALUE_TASK_CATALOGUE[heterogeneity]
        assert catalogue[ResultQuality.LOW_EFFORT] is low
        assert catalogue[ResultQuality.HIGH_QUALITY] is high
        rows.append(
            (
                heterogeneity.value,
                "-" if low is None else low.value,
                "-" if high is None else high.value,
            )
        )
    print()
    print(
        render_table(
            ["Value heterogeneity", "low effort", "high quality"],
            rows,
            title="Table 7 — value heterogeneities and cleaning tasks",
        )
    )
    # Low effort ignores everything except the critical class.
    assert len(low_tasks) == 1 and len(high_tasks) == len(findings)
