"""Table 2 — "Mapping complexity report of the scenario in Figure 2".

Paper rows::

    Target table | Source tables | Attributes | Primary key
    records      | 3             | 2          | yes
    tracks       | 3             | 2          | no
"""

from repro.core.modules.mapping import MappingModule
from repro.reporting import render_table

PAPER_ROWS = {
    "records": (3, 2, "yes"),
    "tracks": (3, 2, "no"),
}


def test_table2_mapping_report(benchmark, example):
    module = MappingModule()
    report = benchmark(module.assess, example)

    rows = [connection.as_row() for connection in report.connections]
    print()
    print(
        render_table(
            ["Target table", "Source tables", "Attributes", "Primary key"],
            rows,
            title="Table 2 — mapping complexity report",
        )
    )
    measured = {row[0]: row[1:] for row in rows}
    assert measured == PAPER_ROWS
