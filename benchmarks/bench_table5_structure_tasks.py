"""Table 5 — "High-quality structure repair tasks and their estimated
effort using the effort calculation functions from Table 9".

Paper rows::

    Task                        Repetitions  Effort
    Add tuples (records)        102          5 mins
    Add missing values (title)  102          204 mins
    Merge values (title)        503          15 mins
    Total                                    224 mins

(The paper labels the merge task "(title)"; the merged attribute in its
own running example is ``records.artist`` — the repetition count of 503
identifies it unambiguously.  See EXPERIMENTS.md.)
"""

import pytest

from repro.core import ResultQuality, default_execution_settings
from repro.core.effort import price_tasks
from repro.core.modules.structure import StructureModule
from repro.core.tasks import TaskType
from repro.reporting import render_table

PAPER_TOTAL_MINUTES = 224.0
PAPER_TASKS = {
    TaskType.ADD_TUPLES: (102, 5.0),
    TaskType.ADD_MISSING_VALUES: (102, 204.0),
    TaskType.MERGE_VALUES: (503, 15.0),
}


def test_table5_structure_tasks(benchmark, example):
    module = StructureModule()
    settings = default_execution_settings()
    report = module.assess(example)

    def plan_and_price():
        tasks = module.plan(example, report, ResultQuality.HIGH_QUALITY)
        return price_tasks(
            example.name, ResultQuality.HIGH_QUALITY, tasks, settings
        )

    estimate = benchmark(plan_and_price)

    rows = [
        (
            entry.task.describe(),
            int(entry.task.repetitions),
            f"{entry.minutes:g} mins",
        )
        for entry in estimate.entries
    ]
    rows.append(("Total", "", f"{estimate.total_minutes:g} mins"))
    print()
    print(
        render_table(
            ["Task", "Repetitions", "Effort"],
            rows,
            title="Table 5 — high-quality structure repair tasks",
        )
    )

    assert estimate.total_minutes == pytest.approx(PAPER_TOTAL_MINUTES)
    measured = {
        entry.task.type: (int(entry.task.repetitions), entry.minutes)
        for entry in estimate.entries
    }
    assert measured == PAPER_TASKS
