"""Failure-injection tests: hostile and degenerate inputs.

The paper's *Generality* requirement: "real cases often fail the
existence of solution tests considered in formal frameworks, but an
automatic estimation is still desirable for them in practice."  These
tests feed the pipeline inputs that break formal assumptions — empty
instances, all-null columns, self-referencing and cyclic foreign keys,
unicode noise — and require graceful behaviour throughout.
"""

import pytest

from repro.core import ResultQuality, default_efes
from repro.matching import (
    CorrespondenceSet,
    attribute_correspondence,
    relation_correspondence,
)
from repro.practitioner import PractitionerSimulator
from repro.relational import (
    Database,
    DataType,
    NotNull,
    Schema,
    foreign_key,
    primary_key,
    relation,
)
from repro.relational.validation import is_valid
from repro.scenarios.scenario import IntegrationScenario


def simple_scenario(source, target, correspondences):
    return IntegrationScenario("hostile", source, target, correspondences)


def run_everything(scenario):
    efes = default_efes()
    reports = efes.assess(scenario)
    low = efes.estimate(scenario, ResultQuality.LOW_EFFORT)
    high = efes.estimate(scenario, ResultQuality.HIGH_QUALITY)
    simulator = PractitionerSimulator(seed=1)
    result = simulator.integrate(scenario, ResultQuality.HIGH_QUALITY)
    assert is_valid(result.target)
    assert low.total_minutes >= 0 and high.total_minutes >= 0
    return reports, low, high, result


class TestEmptyInputs:
    def test_empty_source_instance(self):
        source = Database(
            Schema("src", relations=[relation("s", ["v"])])
        )
        target = Database(
            Schema(
                "tgt",
                relations=[relation("t", ["v"])],
                constraints=[NotNull("t", "v")],
            )
        )
        scenario = simple_scenario(
            source,
            target,
            CorrespondenceSet(
                [
                    relation_correspondence("s", "t"),
                    attribute_correspondence("s.v", "t.v"),
                ]
            ),
        )
        reports, low, high, result = run_everything(scenario)
        assert reports["structure"].is_empty()
        assert len(result.target.table("t")) == 0

    def test_empty_target_instance_still_estimates(self):
        source = Database(Schema("src", relations=[relation("s", ["v"])]))
        source.insert_all("s", [("4:43",), ("2:59",)])
        target = Database(Schema("tgt", relations=[relation("t", ["v"])]))
        scenario = simple_scenario(
            source,
            target,
            CorrespondenceSet(
                [
                    relation_correspondence("s", "t"),
                    attribute_correspondence("s.v", "t.v"),
                ]
            ),
        )
        run_everything(scenario)

    def test_no_correspondences_at_all(self):
        source = Database(Schema("src", relations=[relation("s", ["v"])]))
        source.insert("s", ("x",))
        target = Database(Schema("tgt", relations=[relation("t", ["v"])]))
        scenario = simple_scenario(source, target, CorrespondenceSet())
        reports, low, high, result = run_everything(scenario)
        assert low.total_minutes == 0.0  # nothing to do, nothing to pay


class TestDegenerateColumns:
    def test_all_null_source_column(self):
        source = Database(Schema("src", relations=[relation("s", ["v"])]))
        source.insert_all("s", [(None,)] * 5)
        target = Database(
            Schema(
                "tgt",
                relations=[relation("t", ["v"])],
                constraints=[NotNull("t", "v")],
            )
        )
        target.insert("t", ("seed",))
        scenario = simple_scenario(
            source,
            target,
            CorrespondenceSet(
                [
                    relation_correspondence("s", "t"),
                    attribute_correspondence("s.v", "t.v"),
                ]
            ),
        )
        reports, _, _, _ = run_everything(scenario)
        structure = reports["structure"]
        assert structure.total_violations() == 5  # every tuple violates

    def test_unicode_and_long_strings(self):
        source = Database(Schema("src", relations=[relation("s", ["v"])]))
        source.insert_all(
            "s",
            [
                ("héllo wörld 🎵",),
                ("日本語のテキスト",),
                ("x" * 10_000,),
                ("normal",),
            ],
        )
        target = Database(Schema("tgt", relations=[relation("t", ["v"])]))
        target.insert_all("t", [("plain text",), ("more text",)])
        scenario = simple_scenario(
            source,
            target,
            CorrespondenceSet(
                [
                    relation_correspondence("s", "t"),
                    attribute_correspondence("s.v", "t.v"),
                ]
            ),
        )
        run_everything(scenario)

    def test_mixed_type_chaos_column(self):
        source = Database(
            Schema("src", relations=[relation("s", [("v", DataType.STRING)])])
        )
        source.insert_all(
            "s", [("1",), ("2.5",), ("true",), ("1999-01-01",), ("x",)]
        )
        target = Database(
            Schema("tgt", relations=[relation("t", [("v", DataType.INTEGER)])])
        )
        target.insert_all("t", [(1,), (2,)])
        scenario = simple_scenario(
            source,
            target,
            CorrespondenceSet(
                [
                    relation_correspondence("s", "t"),
                    attribute_correspondence("s.v", "t.v"),
                ]
            ),
        )
        reports, _, _, _ = run_everything(scenario)
        assert not reports["values"].is_empty()  # critical incompatibility


class TestHostileForeignKeys:
    def test_self_referencing_source_fk(self):
        schema = Schema(
            "src",
            relations=[
                relation(
                    "s",
                    [
                        ("id", DataType.INTEGER),
                        ("parent", DataType.INTEGER),
                        ("v", DataType.STRING),
                    ],
                )
            ],
            constraints=[
                primary_key("s", "id"),
                foreign_key("s", "parent", "s", "id"),
            ],
        )
        source = Database(schema)
        source.insert_all(
            "s", [(1, 1, "root"), (2, 1, "child"), (3, 2, "leaf")]
        )
        target = Database(Schema("tgt", relations=[relation("t", ["v"])]))
        scenario = simple_scenario(
            source,
            target,
            CorrespondenceSet(
                [
                    relation_correspondence("s", "t"),
                    attribute_correspondence("s.v", "t.v"),
                ]
            ),
        )
        run_everything(scenario)

    def test_cyclic_target_fks_fall_back_gracefully(self):
        schema = Schema(
            "tgt",
            relations=[
                relation("a", [("id", DataType.INTEGER), ("b_ref", DataType.INTEGER), "v"]),
                relation("b", [("id", DataType.INTEGER), ("a_ref", DataType.INTEGER), "w"]),
            ],
            constraints=[
                primary_key("a", "id"),
                primary_key("b", "id"),
                foreign_key("a", "b_ref", "b", "id"),
                foreign_key("b", "a_ref", "a", "id"),
            ],
        )
        target = Database(schema)
        source = Database(
            Schema(
                "src",
                relations=[relation("s", ["v", "w"])],
            )
        )
        source.insert_all("s", [("x", "y"), ("p", "q")])
        scenario = simple_scenario(
            source,
            target,
            CorrespondenceSet(
                [
                    relation_correspondence("s", "a"),
                    attribute_correspondence("s.v", "a.v"),
                    relation_correspondence("s", "b"),
                    attribute_correspondence("s.w", "b.w"),
                ]
            ),
        )
        run_everything(scenario)

    def test_duplicate_rows_in_source(self):
        source = Database(Schema("src", relations=[relation("s", ["v"])]))
        source.insert_all("s", [("same",)] * 10)
        target = Database(
            Schema(
                "tgt",
                relations=[relation("t", ["v"])],
                constraints=[
                    NotNull("t", "v"),
                ],
            )
        )
        from repro.relational import Unique

        target.schema.add_constraint(Unique("t", ("v",)))
        scenario = simple_scenario(
            source,
            target,
            CorrespondenceSet(
                [
                    relation_correspondence("s", "t"),
                    attribute_correspondence("s.v", "t.v"),
                ]
            ),
        )
        _, _, _, result = run_everything(scenario)
        # The simulator deduplicated down to the unique constraint.
        assert len(result.target.table("t")) == 1
