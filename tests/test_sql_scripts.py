"""Tests for the practitioner's generated SQL mapping scripts."""

import pytest

from repro.core import ResultQuality
from repro.practitioner import PractitionerSimulator
from repro.relational.sql import parse, query
from repro.scenarios import bibliographic_scenarios, music_scenarios


@pytest.fixture(scope="module")
def example_result(small_example):
    return PractitionerSimulator().integrate(
        small_example, ResultQuality.HIGH_QUALITY
    )


class TestInsertSelect:
    """The INSERT ... SELECT statement form the scripts rely on."""

    @pytest.fixture
    def db(self):
        from repro.relational import Database, DataType, Schema, relation

        schema = Schema(
            "db",
            relations=[
                relation("src", [("v", DataType.INTEGER)]),
                relation("dst", [("v", DataType.INTEGER), ("doubled", DataType.INTEGER)]),
            ],
        )
        database = Database(schema)
        database.insert_all("src", [(1,), (2,), (3,)])
        return database

    def test_insert_select(self, db):
        count = db.execute(
            "INSERT INTO dst (v, doubled) SELECT v, v * 2 FROM src WHERE v > 1"
        )
        assert count == 2
        assert db.query("SELECT doubled FROM dst ORDER BY doubled") == [
            {"doubled": 4},
            {"doubled": 6},
        ]

    def test_arity_mismatch_rejected(self, db):
        from repro.relational.sql import SqlError

        with pytest.raises(SqlError):
            db.execute("INSERT INTO dst (v) SELECT v, v FROM src")


class TestGeneratedScripts:
    def test_example_produces_scripts(self, example_result):
        tables = [table for table, _ in example_result.scripts]
        assert tables == ["records", "tracks"]

    def test_scripts_are_valid_sql(self, example_result):
        for _, script in example_result.scripts:
            parse(script)  # must not raise

    def test_records_script_is_the_papers_three_table_join(
        self, example_result
    ):
        script = dict(example_result.scripts)["records"]
        for table in ("albums", "artist_lists", "artist_credits"):
            assert table in script
        assert "GROUP_CONCAT" in script  # multi-artist collapse
        assert script.startswith("INSERT INTO records")

    def test_records_select_executes_one_row_per_album(
        self, example_result, small_example
    ):
        script = dict(example_result.scripts)["records"]
        select = script.split("\n", 1)[1].rstrip(";")
        rows = query(small_example.sources[0], select)
        assert len(rows) == len(small_example.sources[0].table("albums"))
        assert set(rows[0]) == {"title", "artist"}

    def test_all_domain_scripts_parse(self):
        simulator = PractitionerSimulator()
        for scenario in bibliographic_scenarios() + music_scenarios():
            result = simulator.integrate(scenario, ResultQuality.LOW_EFFORT)
            for _, script in result.scripts:
                parse(script)
