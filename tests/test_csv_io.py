"""Unit tests for repro.relational.csv_io."""

import pytest

from repro.relational import DataType, InstanceError, relation
from repro.relational.csv_io import (
    dump_relation,
    dumps_relation,
    load_relation,
    loads_relation,
)
from repro.relational.instance import RelationInstance

CSV_TEXT = "id,name,length\n1,Sweet Home,215900\n2,Anxiety,\n"


class TestLoads:
    def test_type_inference(self):
        instance = loads_relation(CSV_TEXT, name="songs")
        datatypes = [a.datatype for a in instance.relation.attributes]
        assert datatypes == [DataType.INTEGER, DataType.STRING, DataType.INTEGER]

    def test_empty_cell_becomes_null(self):
        instance = loads_relation(CSV_TEXT, name="songs")
        assert instance.rows[1][2] is None

    def test_explicit_relation_casts(self):
        target = relation("songs", [("id", DataType.STRING), "name", "length"])
        instance = loads_relation(CSV_TEXT, relation=target)
        assert instance.rows[0][0] == "1"

    def test_empty_input_rejected(self):
        with pytest.raises(InstanceError):
            loads_relation("", name="x")

    def test_ragged_row_rejected(self):
        with pytest.raises(InstanceError):
            loads_relation("a,b\n1\n", name="x")

    def test_binary_column_prefers_integer(self):
        instance = loads_relation("flag\n0\n1\n0\n", name="x")
        assert instance.relation.attribute("flag").datatype == DataType.INTEGER


class TestRoundTrip:
    def test_dumps_then_loads(self):
        original = loads_relation(CSV_TEXT, name="songs")
        text = dumps_relation(original)
        reloaded = loads_relation(text, name="songs")
        assert reloaded.rows == original.rows

    def test_file_round_trip(self, tmp_path):
        original = loads_relation(CSV_TEXT, name="songs")
        path = tmp_path / "songs.csv"
        dump_relation(original, path)
        reloaded = load_relation(path)
        assert reloaded.rows == original.rows
        assert reloaded.relation.name == "songs"

    def test_null_round_trip(self):
        source = relation("r", [("a", DataType.INTEGER), "b"])
        instance = RelationInstance(source, [(None, "x")])
        text = dumps_relation(instance)
        reloaded = loads_relation(text, relation=source)
        assert reloaded.rows[0] == (None, "x")


class TestDiagnostics:
    """Malformed input must fail with one ``file:line`` line, not a
    traceback from inside the csv module."""

    def test_ragged_row_names_source_and_line(self):
        with pytest.raises(InstanceError, match=r"<csv>:3: CSV row arity 1"):
            loads_relation("a,b\n1,2\n1\n", name="x")

    def test_ragged_row_names_file(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2,3\n", encoding="utf-8")
        with pytest.raises(InstanceError, match=r"bad\.csv:2: CSV row arity 3"):
            load_relation(path)

    def test_empty_input_names_line_one(self):
        with pytest.raises(InstanceError, match=r"<csv>:1: CSV input is empty"):
            loads_relation("", name="x")

    def test_undecodable_bytes_name_offending_line(self, tmp_path):
        path = tmp_path / "latin1.csv"
        path.write_bytes(b"a,b\n1,caf\xe9\n")
        with pytest.raises(
            InstanceError,
            match=r"latin1\.csv:2: undecodable byte 0xe9",
        ):
            load_relation(path)
