"""Tests for the assessment runtime: determinism under concurrency,
exception propagation, executor backends, and single-assessment metrics."""

import threading

import pytest

from repro.core import (
    Efes,
    EstimationModule,
    ResultQuality,
    default_efes,
)
from repro.runtime import (
    Runtime,
    SerialExecutor,
    ThreadedExecutor,
    auto_worker_count,
    get_runtime,
    make_executor,
)
from repro.scenarios import bibliographic_scenarios, music_scenarios


@pytest.fixture(scope="module")
def domain_scenarios():
    return bibliographic_scenarios(seed=1) + music_scenarios(seed=1)


def _assess_all(scenarios, backend):
    """Assess every scenario on a fresh runtime; fresh cache per call so
    the comparison exercises real computation, not shared cache entries."""
    runtime = Runtime(backend=backend)
    efes = default_efes(runtime=runtime)
    try:
        return [efes.assess(scenario) for scenario in scenarios]
    finally:
        runtime.close()


def _estimate_all(scenarios, backend):
    runtime = Runtime(backend=backend)
    efes = default_efes(runtime=runtime)
    try:
        return [
            efes.estimate(scenario, quality)
            for scenario in scenarios
            for quality in (ResultQuality.LOW_EFFORT, ResultQuality.HIGH_QUALITY)
        ]
    finally:
        runtime.close()


class TestBackendEquivalence:
    def test_reports_identical_serial_vs_threaded(self, domain_scenarios):
        serial = _assess_all(domain_scenarios, "serial")
        threaded = _assess_all(domain_scenarios, "threads")
        for serial_reports, threaded_reports in zip(serial, threaded):
            assert list(serial_reports) == list(threaded_reports)
            assert repr(serial_reports) == repr(threaded_reports)

    def test_estimates_identical_serial_vs_threaded(self, domain_scenarios):
        serial = _estimate_all(domain_scenarios, "serial")
        threaded = _estimate_all(domain_scenarios, "threads")
        for serial_estimate, threaded_estimate in zip(serial, threaded):
            assert repr(serial_estimate) == repr(threaded_estimate)
            assert serial_estimate.total_minutes == pytest.approx(
                threaded_estimate.total_minutes
            )

    def test_threaded_is_deterministic_across_runs(self, domain_scenarios):
        scenario = domain_scenarios[0]
        first = _assess_all([scenario], "threads")[0]
        second = _assess_all([scenario], "threads")[0]
        assert repr(first) == repr(second)

    def test_report_order_follows_module_order(self, domain_scenarios):
        reports = _assess_all([domain_scenarios[0]], "threads")[0]
        assert list(reports) == ["mapping", "structure", "values"]


class FailingModule(EstimationModule):
    name = "failing"

    def assess(self, scenario):
        raise ValueError("detector exploded")

    def plan(self, scenario, report, quality):  # pragma: no cover
        return []


class TestExceptionPropagation:
    @pytest.mark.parametrize("backend", ["serial", "threads"])
    def test_detector_exception_reaches_caller(
        self, backend, domain_scenarios
    ):
        runtime = Runtime(backend=backend)
        efes = Efes([FailingModule()], runtime=runtime)
        with pytest.raises(ValueError, match="detector exploded"):
            efes.assess(domain_scenarios[0])
        runtime.close()

    def test_failure_does_not_poison_the_runtime(self, domain_scenarios):
        runtime = Runtime(backend="threads")
        efes = Efes([FailingModule()], runtime=runtime)
        with pytest.raises(ValueError):
            efes.assess(domain_scenarios[0])
        healthy = default_efes(runtime=runtime)
        reports = healthy.assess(domain_scenarios[0])
        assert list(reports) == ["mapping", "structure", "values"]
        runtime.close()


class TestExecutors:
    def test_map_ordered_preserves_submission_order(self):
        executor = ThreadedExecutor(max_workers=4)
        barrier = threading.Barrier(4, timeout=5)

        def task(index):
            # All four tasks rendezvous, so completion order is scrambled
            # relative to submission order on purpose.
            barrier.wait()
            return index

        assert executor.map_ordered(task, range(4)) == [0, 1, 2, 3]
        executor.shutdown()

    def test_nested_map_runs_serially_instead_of_deadlocking(self):
        executor = ThreadedExecutor(max_workers=2)

        def inner(index):
            return index * 10

        def outer(index):
            return executor.map_ordered(inner, range(3))

        results = executor.map_ordered(outer, range(4))
        assert results == [[0, 10, 20]] * 4
        executor.shutdown()

    def test_make_executor_backends(self):
        assert isinstance(make_executor("serial"), SerialExecutor)
        assert isinstance(make_executor("threads"), ThreadedExecutor)
        assert make_executor("auto").name in ("serial", "threads")
        with pytest.raises(ValueError):
            make_executor("gpu")

    def test_auto_worker_count_bounds(self):
        assert 2 <= auto_worker_count() <= 32

    def test_serial_map_ordered(self):
        assert SerialExecutor().map_ordered(lambda x: x + 1, [1, 2]) == [2, 3]


class TestSingleAssessment:
    """The Efes.estimate fix: callers holding reports never re-assess."""

    def test_estimate_with_reports_skips_assessment(self, small_example):
        runtime = Runtime()
        efes = default_efes(runtime=runtime)
        reports = efes.assess(small_example)
        assert runtime.metrics.counter("assessments") == 1
        efes.estimate(small_example, ResultQuality.HIGH_QUALITY, reports=reports)
        efes.estimate(small_example, ResultQuality.LOW_EFFORT, reports=reports)
        assert runtime.metrics.counter("assessments") == 1
        assert runtime.metrics.counter("estimates") == 2

    def test_estimate_without_reports_assesses_once(self, small_example):
        runtime = Runtime()
        efes = default_efes(runtime=runtime)
        efes.estimate(small_example, ResultQuality.HIGH_QUALITY)
        assert runtime.metrics.counter("assessments") == 1

    def test_estimate_reuse_matches_fresh_assessment(self, small_example):
        efes = default_efes(runtime=Runtime())
        reports = efes.assess(small_example)
        reused = efes.estimate(
            small_example, ResultQuality.HIGH_QUALITY, reports=reports
        )
        fresh = efes.estimate(small_example, ResultQuality.HIGH_QUALITY)
        assert repr(reused) == repr(fresh)


class TestRuntimeResolution:
    def test_default_runtime_used_when_unbound(self):
        efes = default_efes()
        assert efes.metrics is get_runtime().metrics

    def test_with_runtime_rebinds(self):
        runtime = Runtime()
        efes = default_efes().with_runtime(runtime)
        assert efes.metrics is runtime.metrics

    def test_activated_overrides_default(self):
        runtime = Runtime()
        with runtime.activated():
            assert get_runtime() is runtime
        assert get_runtime() is not runtime
