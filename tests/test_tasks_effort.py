"""Unit tests for the task model and the effort-calculation functions."""

import pytest

from repro.core import (
    ResultQuality,
    constant,
    default_execution_settings,
    linear,
    per_unit,
    price_tasks,
    threshold_per_unit,
    tool_assisted_settings,
)
from repro.core.tasks import (
    STRUCTURE_TASK_CATALOGUE,
    VALUE_TASK_CATALOGUE,
    StructuralConflict,
    Task,
    TaskCategory,
    TaskType,
    ValueHeterogeneity,
)


def make_task(task_type, **parameters):
    return Task(
        type=task_type,
        quality=ResultQuality.HIGH_QUALITY,
        subject="records.title",
        parameters=parameters,
    )


class TestTask:
    def test_category_assignment(self):
        assert make_task(TaskType.WRITE_MAPPING).category is TaskCategory.MAPPING
        assert (
            make_task(TaskType.MERGE_VALUES).category
            is TaskCategory.CLEANING_STRUCTURE
        )
        assert (
            make_task(TaskType.CONVERT_VALUES).category
            is TaskCategory.CLEANING_VALUES
        )

    def test_every_task_type_has_a_category(self):
        for task_type in TaskType:
            assert make_task(task_type).category is not None

    def test_parameter_defaults(self):
        task = make_task(TaskType.ADD_VALUES, values=5)
        assert task.parameter("values") == 5.0
        assert task.parameter("missing", 7.0) == 7.0

    def test_describe(self):
        assert make_task(TaskType.MERGE_VALUES).describe() == (
            "Merge values (records.title)"
        )


class TestCatalogues:
    def test_structure_catalogue_is_total(self):
        for conflict in StructuralConflict:
            for quality in ResultQuality:
                assert STRUCTURE_TASK_CATALOGUE[conflict][quality] is not None

    def test_value_catalogue_matches_table7(self):
        # "for a low-effort integration result, value heterogeneities can
        # in most cases be simply ignored" — only the critical class acts.
        low = {
            heterogeneity: VALUE_TASK_CATALOGUE[heterogeneity][
                ResultQuality.LOW_EFFORT
            ]
            for heterogeneity in ValueHeterogeneity
        }
        assert low[ValueHeterogeneity.DIFFERENT_REPRESENTATIONS_CRITICAL] is (
            TaskType.DROP_VALUES
        )
        assert low[ValueHeterogeneity.DIFFERENT_REPRESENTATIONS] is None
        assert low[ValueHeterogeneity.TOO_FEW_ELEMENTS] is None

    def test_table4_pairs(self):
        catalogue = STRUCTURE_TASK_CATALOGUE
        assert catalogue[StructuralConflict.NOT_NULL_VIOLATED] == {
            ResultQuality.LOW_EFFORT: TaskType.REJECT_TUPLES,
            ResultQuality.HIGH_QUALITY: TaskType.ADD_MISSING_VALUES,
        }
        assert catalogue[StructuralConflict.UNIQUE_VIOLATED] == {
            ResultQuality.LOW_EFFORT: TaskType.SET_VALUES_TO_NULL,
            ResultQuality.HIGH_QUALITY: TaskType.AGGREGATE_TUPLES,
        }


class TestEffortFunctions:
    def test_constant(self):
        assert constant(5.0)(make_task(TaskType.REJECT_TUPLES)) == 5.0

    def test_per_unit(self):
        function = per_unit(2.0, "values")
        assert function(make_task(TaskType.ADD_VALUES, values=102)) == 204.0

    def test_linear(self):
        function = linear(tables=3.0, attributes=1.0, primary_keys=3.0)
        task = make_task(
            TaskType.WRITE_MAPPING, tables=3, attributes=2, primary_keys=1
        )
        assert function(task) == 14.0

    def test_threshold_below(self):
        function = threshold_per_unit("distinct_values", 120, 30.0, 0.25)
        assert function(make_task(TaskType.CONVERT_VALUES, distinct_values=10)) == 30.0

    def test_threshold_above(self):
        function = threshold_per_unit("distinct_values", 120, 30.0, 0.25)
        task = make_task(TaskType.CONVERT_VALUES, distinct_values=1000)
        assert function(task) == 250.0


class TestExecutionSettings:
    def test_table9_defaults(self):
        settings = default_execution_settings()
        assert settings.effort_of(make_task(TaskType.REJECT_TUPLES)) == 5.0
        assert settings.effort_of(make_task(TaskType.DROP_VALUES)) == 10.0
        assert settings.effort_of(make_task(TaskType.DROP_DETACHED_VALUES)) == 0.0
        assert (
            settings.effort_of(make_task(TaskType.ADD_VALUES, values=102))
            == 204.0
        )

    def test_every_task_type_priced(self):
        settings = default_execution_settings()
        for task_type in TaskType:
            settings.effort_of(make_task(task_type))  # must not raise

    def test_unknown_task_type_raises(self):
        settings = default_execution_settings()
        from repro.core.effort import ExecutionSettings

        empty = ExecutionSettings({})
        with pytest.raises(KeyError):
            empty.effort_of(make_task(TaskType.REJECT_TUPLES))
        del settings

    def test_scale(self):
        settings = default_execution_settings().with_scale(2.0)
        assert settings.effort_of(make_task(TaskType.REJECT_TUPLES)) == 10.0

    def test_with_function_replaces(self):
        settings = default_execution_settings().with_function(
            TaskType.REJECT_TUPLES, constant(1.0)
        )
        assert settings.effort_of(make_task(TaskType.REJECT_TUPLES)) == 1.0

    def test_tool_assisted_mapping_is_constant(self):
        """Example 3.8: a mapping tool turns the effort into ~2 minutes."""
        settings = tool_assisted_settings()
        expensive = make_task(
            TaskType.WRITE_MAPPING, tables=50, attributes=100, primary_keys=9
        )
        assert settings.effort_of(expensive) == 2.0


class TestEffortEstimate:
    def test_price_and_breakdown(self):
        tasks = [
            make_task(TaskType.WRITE_MAPPING, tables=3, attributes=2,
                      primary_keys=1),
            make_task(TaskType.MERGE_VALUES, repetitions=503),
            make_task(TaskType.CONVERT_VALUES, representations=1),
        ]
        estimate = price_tasks(
            "example", ResultQuality.HIGH_QUALITY, tasks,
            default_execution_settings(),
        )
        categories = estimate.by_category()
        assert categories[TaskCategory.CLEANING_STRUCTURE] == 15.0
        assert categories[TaskCategory.CLEANING_VALUES] == 15.0
        assert estimate.total_minutes == pytest.approx(
            sum(categories.values())
        )

    def test_by_task_type(self):
        tasks = [
            make_task(TaskType.REJECT_TUPLES),
            make_task(TaskType.REJECT_TUPLES),
        ]
        estimate = price_tasks(
            "x", ResultQuality.LOW_EFFORT, tasks, default_execution_settings()
        )
        assert estimate.by_task_type()[TaskType.REJECT_TUPLES] == 10.0

    def test_mapping_and_cleaning_split(self):
        tasks = [
            make_task(TaskType.WRITE_MAPPING, tables=1),
            make_task(TaskType.REJECT_TUPLES),
        ]
        estimate = price_tasks(
            "x", ResultQuality.LOW_EFFORT, tasks, default_execution_settings()
        )
        assert estimate.mapping_minutes() == 3.0
        assert estimate.cleaning_minutes() == 5.0
