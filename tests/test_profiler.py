"""Unit tests for column profiling and schema reverse engineering."""

import pytest

from repro.profiling import (
    profile_column,
    profile_database,
    reverse_engineer,
    statistic_types_for,
)
from repro.relational import (
    Database,
    DataType,
    ForeignKey,
    NotNull,
    PrimaryKey,
    Schema,
    Unique,
    relation,
)


@pytest.fixture
def database():
    schema = Schema(
        "db",
        relations=[
            relation(
                "albums",
                [("id", DataType.INTEGER), ("name", DataType.STRING)],
            ),
            relation(
                "songs",
                [
                    ("album", DataType.INTEGER),
                    ("title", DataType.STRING),
                    ("length", DataType.INTEGER),
                ],
            ),
        ],
    )
    db = Database(schema)
    db.insert_all("albums", [(1, "A"), (2, "B"), (3, "C")])
    db.insert_all(
        "songs",
        [(1, "s1", 100), (1, "s2", None), (2, "s3", 300)],
    )
    return db


class TestProfileColumn:
    def test_counts(self, database):
        profile = profile_column(database, "songs", "length")
        assert profile.row_count == 3
        assert profile.distinct_count == 2

    def test_numeric_statistics_selected(self, database):
        profile = profile_column(database, "songs", "length")
        assert "mean" in profile.statistics
        assert "text_pattern" not in profile.statistics

    def test_textual_statistics_selected(self, database):
        profile = profile_column(database, "songs", "title")
        assert "text_pattern" in profile.statistics
        assert "mean" not in profile.statistics

    def test_override_datatype(self, database):
        profile = profile_column(
            database, "songs", "length", datatype=DataType.STRING
        )
        assert "text_pattern" in profile.statistics

    def test_fill_status_counts_nulls(self, database):
        profile = profile_column(database, "songs", "length")
        assert profile.fill_status.nulls == 1

    def test_statistic_types_for(self):
        numeric = statistic_types_for(DataType.INTEGER)
        textual = statistic_types_for(DataType.STRING)
        assert numeric != textual


class TestProfileDatabase:
    def test_all_columns_profiled(self, database):
        profiles = profile_database(database)
        assert len(profiles) == 5
        assert ("songs", "title") in profiles


class TestReverseEngineer:
    def test_primary_keys_reconstructed(self, database):
        constraints = reverse_engineer(database)
        pks = [c for c in constraints if isinstance(c, PrimaryKey)]
        assert any(c.relation == "albums" and c.attributes == ("id",) for c in pks)

    def test_extra_unique_becomes_unique(self, database):
        constraints = reverse_engineer(database)
        uniques = [c for c in constraints if isinstance(c, Unique)]
        # albums.name is also unique in the data; id wins PK by name order.
        assert any(
            c.relation == "albums" and c.attributes == ("name",)
            for c in uniques
        )

    def test_not_null_reconstructed(self, database):
        constraints = reverse_engineer(database)
        not_nulls = [c for c in constraints if isinstance(c, NotNull)]
        assert any(
            c.relation == "songs" and c.attribute == "album" for c in not_nulls
        )

    def test_pk_implies_not_null_without_duplication(self, database):
        """A column promoted to PK must not also get an explicit NOT NULL."""
        constraints = reverse_engineer(database)
        pk_columns = {
            (c.relation, c.attributes[0])
            for c in constraints
            if isinstance(c, PrimaryKey)
        }
        nn_columns = {
            (c.relation, c.attribute)
            for c in constraints
            if isinstance(c, NotNull)
        }
        assert not pk_columns & nn_columns

    def test_nullable_column_not_marked(self, database):
        constraints = reverse_engineer(database)
        not_nulls = [c for c in constraints if isinstance(c, NotNull)]
        assert not any(
            c.relation == "songs" and c.attribute == "length"
            for c in not_nulls
        )

    def test_foreign_key_reconstructed(self, database):
        constraints = reverse_engineer(database)
        fks = [c for c in constraints if isinstance(c, ForeignKey)]
        assert any(
            c.relation == "songs"
            and c.attributes == ("album",)
            and c.referenced == "albums"
            for c in fks
        )

    def test_functional_dependency_reconstructed(self):
        from repro.relational import FunctionalDependencyConstraint

        schema = Schema(
            "db", relations=[relation("r", ["grp", "label", "v"])]
        )
        db = Database(schema)
        db.insert_all(
            "r",
            [
                ("g1", "One", "a"),
                ("g1", "One", "b"),
                ("g2", "Two", "c"),
                ("g2", "Two", "d"),
            ],
        )
        constraints = reverse_engineer(db)
        fds = [
            c
            for c in constraints
            if isinstance(c, FunctionalDependencyConstraint)
        ]
        assert any(
            fd.determinant == "grp" and fd.dependent == "label" for fd in fds
        )

    def test_almost_unique_determinants_skipped(self):
        from repro.relational import FunctionalDependencyConstraint

        schema = Schema("db", relations=[relation("r", ["a", "b"])])
        db = Database(schema)
        # a is distinct on 4 of 5 rows: coincidence-prone, not an FD rule
        db.insert_all(
            "r", [("1", "x"), ("2", "y"), ("3", "z"), ("4", "w"), ("1", "x")]
        )
        constraints = reverse_engineer(db)
        fds = [
            c
            for c in constraints
            if isinstance(c, FunctionalDependencyConstraint)
        ]
        assert fds == []

    def test_reconstructed_constraints_attachable(self, database):
        """All reconstructed constraints fit the schema and hold on the data."""
        from repro.relational.validation import check_constraint

        fresh = Database(database.schema)
        for row in database.table("albums"):
            fresh.insert("albums", row)
        for row in database.table("songs"):
            fresh.insert("songs", row)
        for constraint in reverse_engineer(database):
            assert check_constraint(fresh, constraint) == []
