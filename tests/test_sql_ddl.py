"""Tests for DDL generation and script splitting."""

import pytest

from repro.relational import (
    Database,
    FunctionalDependencyConstraint,
    Schema,
)
from repro.relational.sql import (
    relation_to_ddl,
    schema_to_ddl,
    split_statements,
)
from repro.scenarios.bibliographic import schema_s2, schema_s3
from repro.scenarios.example import source_schema, target_schema


def round_trip(schema: Schema) -> Database:
    database = Database(Schema("fresh"))
    for statement in split_statements(schema_to_ddl(schema)):
        database.execute(statement)
    return database


@pytest.mark.parametrize(
    "schema_builder",
    [source_schema, target_schema, schema_s2, schema_s3],
    ids=["example-source", "example-target", "s2", "s3"],
)
class TestRoundTrip:
    def test_relations_survive(self, schema_builder):
        original = schema_builder()
        restored = round_trip(original)
        assert set(restored.schema.relation_names) == set(
            original.relation_names
        )

    def test_attributes_and_types_survive(self, schema_builder):
        original = schema_builder()
        restored = round_trip(original)
        for relation in original.relations:
            restored_relation = restored.schema.relation(relation.name)
            assert restored_relation.attribute_names == relation.attribute_names
            assert [
                a.datatype for a in restored_relation.attributes
            ] == [a.datatype for a in relation.attributes]

    def test_constraints_survive(self, schema_builder):
        original = schema_builder()
        restored = round_trip(original)
        expected = {
            c.describe()
            for c in original.constraints
            if c.kind != "functional_dependency"
        }
        assert {c.describe() for c in restored.schema.constraints} == expected


class TestDdlDetails:
    def test_references_are_dependency_ordered(self):
        ddl = schema_to_ddl(source_schema())
        assert ddl.index("CREATE TABLE artist_lists") < ddl.index(
            "CREATE TABLE albums"
        )
        assert ddl.index("CREATE TABLE albums") < ddl.index(
            "CREATE TABLE songs"
        )

    def test_composite_pk_rendered_as_table_constraint(self):
        ddl = relation_to_ddl(source_schema(), "artist_credits")
        assert "PRIMARY KEY (artist_list, position)" in ddl

    def test_fd_emitted_as_comment(self):
        from repro.relational import relation as make_relation

        schema = Schema(
            "s",
            relations=[make_relation("r", ["a", "b"])],
            constraints=[FunctionalDependencyConstraint("r", "a", "b")],
        )
        ddl = schema_to_ddl(schema)
        assert "-- FD r.a -> b" in ddl

    def test_fk_cycle_still_renders(self):
        from repro.relational import (
            DataType,
            foreign_key,
            primary_key,
            relation as make_relation,
        )

        schema = Schema(
            "s",
            relations=[
                make_relation("x", [("id", DataType.INTEGER), ("y_ref", DataType.INTEGER)]),
                make_relation("y", [("id", DataType.INTEGER), ("x_ref", DataType.INTEGER)]),
            ],
            constraints=[
                primary_key("x", "id"),
                primary_key("y", "id"),
                foreign_key("x", "y_ref", "y", "id"),
                foreign_key("y", "x_ref", "x", "id"),
            ],
        )
        ddl = schema_to_ddl(schema)
        assert "CREATE TABLE x" in ddl and "CREATE TABLE y" in ddl


class TestSplitStatements:
    def test_splits_on_semicolons(self):
        parts = split_statements("SELECT 1; SELECT 2;")
        assert parts == ["SELECT 1", "SELECT 2"]

    def test_semicolon_inside_string_kept(self):
        parts = split_statements("SELECT 'a;b'; SELECT 2")
        assert parts == ["SELECT 'a;b'", "SELECT 2"]

    def test_comments_stripped(self):
        parts = split_statements("-- header\nSELECT 1; -- tail\nSELECT 2")
        assert parts == ["SELECT 1", "\nSELECT 2"] or parts == [
            "SELECT 1",
            "SELECT 2",
        ]

    def test_trailing_statement_without_semicolon(self):
        assert split_statements("SELECT 1") == ["SELECT 1"]

    def test_empty_script(self):
        assert split_statements("   \n  ") == []
