"""Chaos suite: seeded fault plans against the whole resilience layer.

Every test here injects a deterministic failure — a crashing detector, a
torn spool write, a dead socket, a wedged worker — and asserts the stack
degrades exactly as documented instead of dying: tombstones on the
outcome, quarantined files on disk, an open breaker shedding load, a
draining scheduler handing out retry hints.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.core import ResultQuality, default_efes
from repro.resilience import (
    CORRUPTION_MARKER,
    CircuitBreaker,
    CircuitOpenError,
    CircuitState,
    FaultError,
    FaultPlan,
    FaultPoint,
    HealthMonitor,
    HealthState,
    RetryPolicy,
    call_with_retry,
    corrupt_text,
    fault_plan_from_env,
    fault_point,
    injected_faults,
    reset_fault_plan,
)
from repro.service import (
    DRAINING_ERROR,
    JobScheduler,
    JobState,
    ReportStore,
    ServiceClient,
    ServiceUnavailableError,
    job_key,
    make_server,
)


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan():
    yield
    reset_fault_plan()


def blocking_payload(release, started=None):
    """A cooperative payload that runs until ``release`` is set."""

    def payload(job):
        if started is not None:
            started.set()
        while not release.wait(0.01):
            job.check_cancelled()
        return {"ok": True}

    return payload


def stubborn_payload(duration, started=None):
    """A payload that ignores cancellation and sleeps ``duration``."""

    def payload(job):
        if started is not None:
            started.set()
        time.sleep(duration)
        return {"ok": True}

    return payload


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_env_inline_json_and_malformed(self):
        plan = fault_plan_from_env(
            {"REPRO_FAULT_PLAN": '{"points": [{"site": "detector"}]}'}
        )
        assert len(plan) == 1
        assert fault_plan_from_env({"REPRO_FAULT_PLAN": ""}) is None
        with pytest.raises(ValueError):
            fault_plan_from_env({"REPRO_FAULT_PLAN": "{torn"})
        with pytest.raises(ValueError):
            fault_plan_from_env(
                {"REPRO_FAULT_PLAN": '{"points": [{"site": ""}]}'}
            )

    def test_env_file_path(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(
            '{"seed": 3, "points": [{"site": "store.read"}]}',
            encoding="utf-8",
        )
        plan = fault_plan_from_env({"REPRO_FAULT_PLAN": str(path)})
        assert plan.seed == 3
        assert plan.points[0].site == "store.read"

    def test_times_per_budget_scopes_to_context_key(self):
        plan = FaultPlan(
            [FaultPoint(site="detector", times=1, per="scenario")]
        )
        fired = []
        with injected_faults(plan):
            for scenario in ("a", "a", "b"):
                try:
                    fault_point("detector", scenario=scenario)
                    fired.append(False)
                except FaultError:
                    fired.append(True)
        # Exactly one firing per distinct scenario value.
        assert fired == [True, False, True]
        assert plan.trip_count("detector") == 2

    def test_match_filters_on_context(self):
        plan = FaultPlan(
            [FaultPoint(site="detector", match={"name": "values"})]
        )
        with injected_faults(plan):
            fault_point("detector", name="mapping")  # no match: silent
            with pytest.raises(FaultError):
                fault_point("detector", name="values")

    def test_corrupt_rules_never_burn_at_control_sites(self):
        plan = FaultPlan(
            [FaultPoint(site="store.write", action="corrupt", times=1)]
        )
        with injected_faults(plan):
            fault_point("store.write", key="k")  # control site: no-op
            mangled = corrupt_text("store.write", '{"a": 1}', key="k")
        assert CORRUPTION_MARKER in mangled
        assert plan.trip_count() == 1

    def test_delay_action_sleeps(self):
        plan = FaultPlan(
            [
                FaultPoint(
                    site="profile", action="delay", delay_seconds=0.05
                )
            ]
        )
        with injected_faults(plan):
            started = time.perf_counter()
            fault_point("profile", relation="r")
            assert time.perf_counter() - started >= 0.04


# ----------------------------------------------------------------------
# Graceful degradation through the pipeline
# ----------------------------------------------------------------------


class TestDegradedPipeline:
    def test_detector_crash_degrades_module_not_run(self, small_example):
        plan = FaultPlan(
            [
                FaultPoint(
                    site="detector",
                    match={"name": "values"},
                    times=1,
                    per="scenario",
                )
            ]
        )
        efes = default_efes()
        with injected_faults(plan):
            outcome = efes.run(small_example, ResultQuality.HIGH_QUALITY)
        assert outcome.is_degraded
        assert [d.module for d in outcome.degradations] == ["values"]
        assert outcome.degradations[0].phase == "assess"
        assert outcome.degradations[0].scenario == small_example.name
        # The surviving modules still price the scenario.
        assert set(outcome.reports) == {"mapping", "structure"}
        assert outcome.estimate.total_minutes > 0

    def test_strict_escape_hatch_restores_fail_fast(self, small_example):
        plan = FaultPlan(
            [FaultPoint(site="detector", match={"name": "values"})]
        )
        efes = default_efes()
        with injected_faults(plan), pytest.raises(FaultError):
            efes.run(
                small_example, ResultQuality.HIGH_QUALITY, strict=True
            )

    def test_degraded_run_counts_metrics_and_marks_trace(
        self, small_example
    ):
        from repro.runtime import Runtime

        plan = FaultPlan(
            [FaultPoint(site="detector", match={"name": "mapping"})]
        )
        runtime = Runtime(backend="serial")
        try:
            efes = default_efes(runtime=runtime)
            with injected_faults(plan):
                outcome = efes.run(
                    small_example, ResultQuality.HIGH_QUALITY, trace=True
                )
            counters = runtime.metrics.snapshot().counters
        finally:
            runtime.close()
        assert counters["degraded_total"] >= 1
        assert counters["detectors_degraded"] >= 1
        spans = {span.name: span for span in outcome.trace.walk()}
        assert "error" in spans["detector:mapping"].attributes
        assert outcome.trace.attributes["degraded"] == 1


# ----------------------------------------------------------------------
# Retry combinator
# ----------------------------------------------------------------------


class TestRetryCombinator:
    def test_seeded_jitter_is_deterministic(self):
        def delays_of_one_run():
            delays = []
            attempts = []

            def flaky():
                attempts.append(1)
                raise OSError("transient")

            with pytest.raises(OSError):
                call_with_retry(
                    flaky,
                    policy=RetryPolicy(
                        max_attempts=4, retry_on=(OSError,), seed=99
                    ),
                    sleep=delays.append,
                )
            assert len(attempts) == 4
            return delays

        first, second = delays_of_one_run(), delays_of_one_run()
        assert first == second
        assert len(first) == 3

    def test_deadline_budget_stops_retrying(self):
        now = [0.0]

        def advance(seconds):
            now[0] += seconds

        attempts = []

        def always_failing():
            attempts.append(1)
            raise OSError("transient")

        with pytest.raises(OSError):
            call_with_retry(
                always_failing,
                policy=RetryPolicy(
                    max_attempts=10,
                    base_delay=1.0,
                    multiplier=2.0,
                    jitter=False,
                    deadline=2.5,
                    retry_on=(OSError,),
                ),
                sleep=advance,
                clock=lambda: now[0],
            )
        # Waits would be 1s, 2s, 4s...: the 4s retry overshoots the
        # 2.5s budget, so only the first two retries happen.
        assert len(attempts) == 2

    def test_retry_after_hint_raises_the_delay(self):
        class Hinted(OSError):
            retry_after = 5.0

        delays = []
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) == 1:
                raise Hinted("busy")
            return "ok"

        assert (
            call_with_retry(
                flaky,
                policy=RetryPolicy(
                    max_attempts=3, max_delay=0.1, retry_on=(OSError,)
                ),
                sleep=delays.append,
            )
            == "ok"
        )
        assert delays == [5.0]

    def test_non_matching_exception_is_not_retried(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            call_with_retry(
                broken,
                policy=RetryPolicy(max_attempts=5, retry_on=(OSError,)),
                sleep=lambda _: None,
            )
        assert len(calls) == 1


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def test_full_cycle_closed_open_half_open_closed(self):
        now = [0.0]
        transitions = []
        breaker = CircuitBreaker(
            name="t",
            failure_threshold=2,
            reset_timeout=10.0,
            clock=lambda: now[0],
            listener=lambda old, new: transitions.append(new),
        )
        breaker.allow()
        breaker.record_failure()
        assert breaker.state is CircuitState.CLOSED
        breaker.record_failure()
        assert breaker.state is CircuitState.OPEN
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.allow()
        assert 0 < excinfo.value.retry_after <= 10.0
        now[0] += 10.0
        assert breaker.state is CircuitState.HALF_OPEN
        breaker.allow()  # the single probe
        with pytest.raises(CircuitOpenError):
            breaker.allow()  # second probe over half_open_max
        breaker.record_success()
        assert breaker.state is CircuitState.CLOSED
        breaker.allow()
        assert transitions == [
            CircuitState.OPEN,
            CircuitState.HALF_OPEN,
            CircuitState.CLOSED,
        ]

    def test_failed_probe_reopens_and_restarts_the_timer(self):
        now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=5.0, clock=lambda: now[0]
        )
        breaker.record_failure()
        now[0] += 5.0
        assert breaker.state is CircuitState.HALF_OPEN
        breaker.record_failure()
        assert breaker.state is CircuitState.OPEN
        now[0] += 4.0
        assert breaker.state is CircuitState.OPEN  # timer restarted
        snapshot = breaker.snapshot()
        assert snapshot["opened_total"] == 2


class TestHealthMonitor:
    def test_reasons_drive_the_state(self):
        health = HealthMonitor()
        assert health.state is HealthState.HEALTHY
        health.flag("circuit_open")
        assert health.state is HealthState.DEGRADED
        health.clear("circuit_open")
        assert health.state is HealthState.HEALTHY

    def test_draining_is_terminal(self):
        health = HealthMonitor()
        health.flag("stuck_workers")
        health.start_draining()
        health.clear("stuck_workers")
        assert health.state is HealthState.DRAINING
        assert health.snapshot() == {
            "state": "draining",
            "reasons": [],
            "warnings": [],
            "fleet_degraded": False,
        }

    def test_fleet_degraded_sits_between_warning_and_degraded(self):
        health = HealthMonitor()
        health.set_fleet_degraded(True)
        assert health.state is HealthState.FLEET_DEGRADED
        assert health.snapshot()["fleet_degraded"] is True
        # A hard reason outranks partial fleet loss ...
        health.flag("circuit_open")
        assert health.state is HealthState.DEGRADED
        health.clear("circuit_open")
        # ... while fleet loss outranks an SLO advisory.
        health.set_warning("slo:availability", True)
        assert health.state is HealthState.FLEET_DEGRADED
        health.set_fleet_degraded(False)
        assert health.state is HealthState.SLO_WARNING

    def test_warnings_are_advisory_and_outranked_by_reasons(self):
        health = HealthMonitor()
        health.set_warning("slo:availability", True)
        assert health.state is HealthState.SLO_WARNING
        # A hard reason outranks any number of advisories ...
        health.flag("circuit_open")
        assert health.state is HealthState.DEGRADED
        health.clear("circuit_open")
        assert health.state is HealthState.SLO_WARNING
        # ... and clearing the warning restores full health.
        health.set_warning("slo:availability", False)
        assert health.state is HealthState.HEALTHY
        assert health.snapshot()["warnings"] == []


# ----------------------------------------------------------------------
# Self-healing report store
# ----------------------------------------------------------------------


class TestStoreSelfHealing:
    def test_corrupted_write_is_quarantined_on_restart(self, tmp_path):
        store = ReportStore(tmp_path)
        plan = FaultPlan(
            [FaultPoint(site="store.write", action="corrupt", times=1)]
        )
        with injected_faults(plan):
            store.put("k", {"a": 1})
        assert store.get("k") == {"a": 1}  # in-memory copy unharmed
        assert CORRUPTION_MARKER in (tmp_path / "k.json").read_text()

        restarted = ReportStore(tmp_path)  # simulated restart
        assert restarted.last_recovery == {
            "scanned": 1,
            "valid": 0,
            "quarantined": 1,
        }
        assert restarted.get("k") is None
        assert restarted.quarantined_count() == 1
        assert (restarted.quarantine_directory / "k.json").exists()
        # The healed store accepts a fresh write for the same key.
        restarted.put("k", {"a": 2})
        assert ReportStore(tmp_path).get("k") == {"a": 2}

    def test_checksum_mismatch_is_never_served(self, tmp_path):
        store = ReportStore(tmp_path)
        store.put("k", {"a": 1})
        path = tmp_path / "k.json"
        envelope = json.loads(path.read_text(encoding="utf-8"))
        envelope["document"]["a"] = 42  # bit rot, checksum now stale
        path.write_text(json.dumps(envelope), encoding="utf-8")
        fresh = ReportStore(tmp_path)
        assert fresh.get("k") is None
        assert fresh.quarantined_count() == 1

    def test_transient_write_faults_are_retried(self, tmp_path):
        store = ReportStore(tmp_path)
        plan = FaultPlan([FaultPoint(site="store.write", times=2)])
        with injected_faults(plan):
            store.put("k", {"a": 1})
        counters = store.metrics.snapshot().counters
        assert counters["store_write_retries"] == 2
        assert ReportStore(tmp_path).get("k") == {"a": 1}

    def test_recovery_sweeps_stale_temp_files(self, tmp_path):
        (tmp_path / "dead.tmp.123").write_text("never renamed")
        store = ReportStore(tmp_path)
        assert not (tmp_path / "dead.tmp.123").exists()
        assert store.last_recovery == {
            "scanned": 0,
            "valid": 0,
            "quarantined": 0,
        }

    def test_injected_read_fault_is_a_miss(self, tmp_path):
        store = ReportStore(tmp_path)
        store.put("k", {"a": 1})
        restarted = ReportStore(tmp_path)
        plan = FaultPlan([FaultPoint(site="store.read", times=1)])
        with injected_faults(plan):
            assert restarted.get("k") is None  # fault: a miss, no crash
        assert restarted.get("k") == {"a": 1}  # next read succeeds


# ----------------------------------------------------------------------
# Scheduler resilience
# ----------------------------------------------------------------------


class TestSchedulerResilience:
    def test_timeout_racing_completion_settles_exactly_once(self):
        """Regression: a payload finishing after its timeout fired must
        not double-settle the job (flip FAILED back to DONE/CANCELLED,
        double-release the slot, or double-count metrics).  Grace is
        kept below the payload duration so the FAILED settle wins."""
        with JobScheduler(
            workers=1, max_queue=8, deadline_grace=0.05
        ) as sched:
            job = sched.submit_callable(
                stubborn_payload(0.4), timeout=0.1
            )
            sched.wait(job.id, timeout=2.0)
            assert job.state is JobState.FAILED
            assert "timed out" in job.error
            # Let the abandoned payload thread drain and report in late.
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline:
                counters = sched.metrics.snapshot().counters
                if counters.get("jobs_double_settle_averted"):
                    break
                time.sleep(0.02)
            counters = sched.metrics.snapshot().counters
            assert counters["jobs_double_settle_averted"] >= 1
            assert job.state is JobState.FAILED  # first settle stood
            assert counters["jobs_failed"] == 1
            assert counters.get("jobs_completed", 0) == 0
            # The slot was released exactly once: the next job runs.
            follow_up = sched.submit_callable(lambda job: {"ok": True})
            sched.wait(follow_up.id, timeout=2.0)
            assert follow_up.state is JobState.DONE

    def test_consecutive_failures_trip_the_breaker(self, small_example):
        breaker = CircuitBreaker(name="jobs", failure_threshold=2)
        with JobScheduler(
            workers=1, max_queue=8, breaker=breaker
        ) as sched:

            def boom(job):
                raise ValueError("boom")

            for _ in range(2):
                job = sched.submit_callable(boom)
                sched.wait(job.id, timeout=2.0)
                assert job.state is JobState.FAILED
            assert breaker.state is CircuitState.OPEN
            with pytest.raises(CircuitOpenError):
                sched.submit_callable(lambda job: {"ok": True})
            # Degraded, not dead: /healthz says so.
            health = sched.health_snapshot()
            assert health["state"] == "degraded"
            assert "circuit_open" in health["reasons"]
            assert health["breaker"]["state"] == "open"

    def test_open_breaker_still_serves_the_store(self, small_example):
        breaker = CircuitBreaker(name="jobs", failure_threshold=1)
        store = ReportStore()
        key = job_key(small_example, "assess")
        store.put(key, {"kind": "assess", "reports": {}})
        with JobScheduler(
            workers=1, max_queue=8, breaker=breaker, store=store
        ) as sched:
            breaker.record_failure()
            assert breaker.state is CircuitState.OPEN
            job = sched.submit(small_example, kind="assess")
            assert job.state is JobState.DONE
            assert job.from_store
            # Work that would actually execute is still rejected.
            with pytest.raises(CircuitOpenError):
                sched.submit(small_example, kind="estimate")

    def test_dispatch_fault_costs_the_job_not_the_dispatcher(self):
        plan = FaultPlan([FaultPoint(site="scheduler.dispatch", times=1)])
        with injected_faults(plan):
            with JobScheduler(workers=1, max_queue=8) as sched:
                first = sched.submit_callable(lambda job: {"ok": True})
                sched.wait(first.id, timeout=2.0)
                second = sched.submit_callable(lambda job: {"ok": True})
                sched.wait(second.id, timeout=2.0)
        assert first.state is JobState.FAILED
        assert "injected fault" in first.error
        assert second.state is JobState.DONE

    def test_graceful_drain_fails_queued_jobs_with_retry_hint(self):
        release = threading.Event()
        started = threading.Event()
        sched = JobScheduler(workers=1, max_queue=8)
        try:
            running = sched.submit_callable(
                blocking_payload(release, started)
            )
            assert started.wait(2.0)
            queued = sched.submit_callable(lambda job: {"ok": True})
            closer = threading.Thread(
                target=lambda: sched.close(wait=True, timeout=5.0)
            )
            closer.start()
            sched.wait(queued.id, timeout=2.0)
            assert queued.state is JobState.FAILED
            assert queued.error == DRAINING_ERROR
            assert queued.retry_after is not None
            assert queued.snapshot()["retry_after"] == queued.retry_after
            assert sched.health.state is HealthState.DRAINING
            release.set()
            closer.join(timeout=5.0)
            assert running.state is JobState.DONE
            counters = sched.metrics.snapshot().counters
            assert counters["jobs_drained"] == 1
        finally:
            release.set()
            sched.close()

    def test_watchdog_marks_stuck_workers(self):
        with JobScheduler(
            workers=1, max_queue=8, stuck_after=0.08
        ) as sched:
            job = sched.submit_callable(stubborn_payload(0.3))
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline and not job.stuck:
                time.sleep(0.02)
            assert job.stuck
            assert "stuck_workers" in sched.health.reasons
            sched.wait(job.id, timeout=2.0)
            assert job.state is JobState.DONE  # stuck is a mark, not a kill
            assert sched.metrics.snapshot().counters["jobs_stuck"] >= 1

    def test_degraded_assessment_lands_in_the_result_document(
        self, small_example
    ):
        plan = FaultPlan(
            [
                FaultPoint(
                    site="detector",
                    match={"name": "values"},
                    times=1,
                    per="scenario",
                )
            ]
        )
        with injected_faults(plan):
            with JobScheduler(workers=1, max_queue=8) as sched:
                job = sched.submit(small_example, kind="assess")
                sched.wait(job.id, timeout=60.0)
        assert job.state is JobState.DONE
        degradations = job.result["degradations"]
        assert [d["module"] for d in degradations] == ["values"]
        assert set(job.result["reports"]) == {"mapping", "structure"}


# ----------------------------------------------------------------------
# Client resilience
# ----------------------------------------------------------------------


class _FlakyOnceHandler(BaseHTTPRequestHandler):
    """First request: 503 + Retry-After header; afterwards: 200."""

    def do_GET(self):  # noqa: N802 - stdlib naming
        if not self.server.recovered:
            self.server.recovered = True
            self._reply(503, {"error": "warming up"}, retry_after="0.25")
        else:
            self._reply(200, {"ok": True})

    def _reply(self, status, doc, retry_after=None):
        body = json.dumps(doc).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", retry_after)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass


@pytest.fixture()
def flaky_server():
    server = ThreadingHTTPServer(("127.0.0.1", 0), _FlakyOnceHandler)
    server.recovered = False
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


class TestClientResilience:
    def test_dead_server_raises_service_unavailable(self):
        import socket

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
        sleeps = []
        client = ServiceClient(
            f"http://127.0.0.1:{dead_port}",
            timeout=1.0,
            retry_policy=RetryPolicy(
                max_attempts=2,
                retry_on=(ServiceUnavailableError,),
                seed=0,
            ),
            sleep=sleeps.append,
        )
        with pytest.raises(ServiceUnavailableError) as excinfo:
            client.healthz()
        assert "unreachable" in str(excinfo.value)
        assert excinfo.value.status == 503
        assert client.retries_total == 1  # it did retry before giving up
        assert len(sleeps) == 1

    def test_retry_honours_retry_after_and_recovers(self, flaky_server):
        sleeps = []
        client = ServiceClient(flaky_server, sleep=sleeps.append)
        assert client.healthz() == {"ok": True}
        # The 503 carried Retry-After: 0.25; the backoff honoured it as
        # a minimum even though the policy's caps are smaller.
        assert sleeps and sleeps[0] >= 0.25
        assert client.retries_total == 1

    def test_open_breaker_maps_to_503_with_retry_after(self, small_example):
        breaker = CircuitBreaker(name="jobs", failure_threshold=1)
        scheduler = JobScheduler(workers=1, max_queue=8, breaker=breaker)
        server = make_server(scheduler, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            breaker.record_failure()
            client = ServiceClient(
                server.url,
                retry_policy=RetryPolicy(max_attempts=1),
            )
            with pytest.raises(ServiceUnavailableError) as excinfo:
                client.submit("s1-s2", kind="assess")
            assert excinfo.value.retry_after is not None
            doc = client.healthz()
            assert doc["status"] == "ok"  # alive...
            assert doc["health"]["state"] == "degraded"  # ...but flagged
            assert doc["health"]["reasons"] == ["circuit_open"]
        finally:
            server.shutdown()
            server.server_close()
            scheduler.close(wait=True, timeout=5.0)
            thread.join(timeout=5.0)

    def test_http_handler_fault_surfaces_as_500(self):
        scheduler = JobScheduler(workers=1, max_queue=8)
        server = make_server(scheduler, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        plan = FaultPlan([FaultPoint(site="http.handler", times=1)])
        try:
            client = ServiceClient(
                server.url, retry_policy=RetryPolicy(max_attempts=1)
            )
            with injected_faults(plan):
                from repro.service import ServiceError

                with pytest.raises(ServiceError) as excinfo:
                    client.healthz()
                assert excinfo.value.status == 500
                assert client.healthz()["status"] == "ok"  # healed
        finally:
            server.shutdown()
            server.server_close()
            scheduler.close(wait=True, timeout=5.0)
            thread.join(timeout=5.0)
