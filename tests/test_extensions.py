"""Tests for the future-work extensions (Section 7)."""

import pytest

from repro.core import Efes, ResultQuality, default_efes, default_modules
from repro.extensions import (
    CorrespondenceModule,
    cost_benefit_curve,
    marginal_gains,
    predicted_loss,
)
from repro.core.reports import (
    StructureComplexityReport,
    StructureViolation,
    ValueComplexityReport,
)
from repro.core.tasks import StructuralConflict


class TestCorrespondenceModule:
    @pytest.fixture(scope="class")
    def report(self, small_example):
        return CorrespondenceModule().assess(small_example)

    def test_accuracy_in_unit_range_or_negative(self, report):
        assert report.accuracy <= 1.0

    def test_counts_are_consistent(self, report):
        # fixes = what the matcher missed plus what it hallucinated
        assert report.additions >= 0 and report.deletions >= 0
        assert report.intended == 5  # the example's attribute arrows

    def test_plan_prices_fixes(self, small_example, report):
        module = CorrespondenceModule(minutes_per_fix=2.0)
        tasks = module.plan(small_example, report, ResultQuality.HIGH_QUALITY)
        if report.is_empty():
            assert tasks == []
        else:
            assert len(tasks) == 1
            assert tasks[0].module == "correspondences"

    def test_perfect_matcher_needs_no_fixes(self, small_example):
        class OracleMatcher:
            def match(self, source, target):
                cset = small_example.correspondences[source.name]
                return list(cset.attribute_correspondences())

        module = CorrespondenceModule(matcher=OracleMatcher())
        report = module.assess(small_example)
        assert report.is_empty()
        assert report.accuracy == pytest.approx(1.0)
        assert module.plan(
            small_example, report, ResultQuality.HIGH_QUALITY
        ) == []

    def test_pluggable_into_efes(self, small_example):
        efes = Efes(default_modules() + [CorrespondenceModule()])
        estimate = efes.estimate(small_example, ResultQuality.HIGH_QUALITY)
        assert estimate.total_minutes > 0


class TestPredictedLoss:
    def _structure(self, conflict, count):
        return StructureComplexityReport(
            [
                StructureViolation(
                    source_database="s",
                    target_relationship="t->t.v",
                    conflict=conflict,
                    prescribed="1",
                    inferred="0..1",
                    violation_count=count,
                    scope=100,
                    target_relation="t",
                    target_attribute="v",
                )
            ]
        )

    def test_high_quality_loses_nothing(self):
        structure = self._structure(StructuralConflict.NOT_NULL_VIOLATED, 50)
        loss = predicted_loss(
            structure, ValueComplexityReport([]), 100,
            ResultQuality.HIGH_QUALITY,
        )
        assert loss == 0.0

    def test_low_effort_loses_violations(self):
        structure = self._structure(StructuralConflict.NOT_NULL_VIOLATED, 25)
        loss = predicted_loss(
            structure, ValueComplexityReport([]), 100,
            ResultQuality.LOW_EFFORT,
        )
        assert loss == pytest.approx(0.25)

    def test_multi_value_conflicts_are_not_losses(self):
        structure = self._structure(
            StructuralConflict.MULTIPLE_ATTRIBUTE_VALUES, 25
        )
        loss = predicted_loss(
            structure, ValueComplexityReport([]), 100,
            ResultQuality.LOW_EFFORT,
        )
        assert loss == 0.0

    def test_loss_is_capped(self):
        structure = self._structure(StructuralConflict.NOT_NULL_VIOLATED, 500)
        loss = predicted_loss(
            structure, ValueComplexityReport([]), 100,
            ResultQuality.LOW_EFFORT,
        )
        assert loss == 1.0


class TestCostBenefitCurve:
    @pytest.fixture(scope="class")
    def curve(self, small_example, efes):
        return cost_benefit_curve(efes, small_example)

    def test_two_points_increasing_effort(self, curve):
        assert len(curve) == 2
        assert curve[0].effort_minutes <= curve[1].effort_minutes

    def test_more_effort_more_benefit(self, curve):
        """The paper's motto: "the more effort, the better the quality"."""
        assert curve[0].benefit <= curve[1].benefit

    def test_high_quality_keeps_everything(self, curve):
        high = next(
            p for p in curve if p.quality is ResultQuality.HIGH_QUALITY
        )
        assert high.benefit == pytest.approx(1.0)

    def test_low_effort_loses_something_on_example(self, curve):
        low = next(p for p in curve if p.quality is ResultQuality.LOW_EFFORT)
        assert low.benefit < 1.0  # the detached artists are dropped


class TestMarginalGains:
    def test_ranking_is_by_gain_per_hour(self, efes):
        from repro.scenarios import bibliographic_scenarios

        gains = marginal_gains(efes, bibliographic_scenarios())
        rates = [gain.gain_per_hour for gain in gains]
        assert rates == sorted(rates, reverse=True)

    def test_identity_scenario_is_best_value(self, efes):
        from repro.scenarios import bibliographic_scenarios

        gains = marginal_gains(efes, bibliographic_scenarios())
        assert gains[0].scenario_name == "s4-s4"
