"""Unit tests for the mapping estimation module (Table 2, Example 3.8)."""

import pytest

from repro.core import ResultQuality, default_execution_settings
from repro.core.modules.mapping import MappingModule, join_closure
from repro.core.tasks import TaskType
from repro.scenarios.example import source_schema


@pytest.fixture(scope="module")
def module():
    return MappingModule()


class TestJoinClosure:
    def test_single_relation(self):
        assert join_closure(source_schema(), {"albums"}) == {"albums"}

    def test_paper_closure(self):
        closure = join_closure(source_schema(), {"albums", "artist_credits"})
        assert closure == {"albums", "artist_lists", "artist_credits"}

    def test_unconnected_relations_stay_separate(self):
        from repro.relational import Schema, relation

        schema = Schema(
            "s", relations=[relation("a", ["x"]), relation("b", ["y"])]
        )
        assert join_closure(schema, {"a", "b"}) == {"a", "b"}

    def test_empty_input(self):
        assert join_closure(source_schema(), set()) == set()


class TestTable2Report:
    """The mapping complexity report of the running example (Table 2)."""

    @pytest.fixture(scope="class")
    def report(self, example, module):
        return module.assess(example)

    def test_two_connections(self, report):
        assert len(report.connections) == 2

    def test_records_row(self, report):
        records = next(
            c for c in report.connections if c.target_table == "records"
        )
        assert records.source_tables == 3
        assert records.attributes == 2
        assert records.needs_primary_key is True

    def test_tracks_row(self, report):
        tracks = next(
            c for c in report.connections if c.target_table == "tracks"
        )
        assert tracks.source_tables == 3
        assert tracks.attributes == 2
        assert tracks.needs_primary_key is False

    def test_totals(self, report):
        assert report.total_tables() == 6
        assert report.total_attributes() == 4
        assert report.total_primary_keys() == 1

    def test_as_row_shape(self, report):
        row = report.connections[0].as_row()
        assert row[3] in ("yes", "no")


class TestPlanner:
    def test_one_task_per_connection(self, example, module):
        report = module.assess(example)
        tasks = module.plan(example, report, ResultQuality.HIGH_QUALITY)
        assert len(tasks) == 2
        assert all(task.type is TaskType.WRITE_MAPPING for task in tasks)

    def test_quality_does_not_change_mapping(self, example, module):
        report = module.assess(example)
        low = module.plan(example, report, ResultQuality.LOW_EFFORT)
        high = module.plan(example, report, ResultQuality.HIGH_QUALITY)
        assert len(low) == len(high)

    def test_example_38_manual_formula(self, example, module):
        """Example 3.8: effort = 3·tables + 1·attributes + 3·PKs = 25 min."""
        from repro.core.effort import ExecutionSettings, linear, price_tasks

        report = module.assess(example)
        tasks = module.plan(example, report, ResultQuality.HIGH_QUALITY)
        settings = ExecutionSettings(
            {
                TaskType.WRITE_MAPPING: linear(
                    tables=3.0, attributes=1.0, primary_keys=3.0
                )
            }
        )
        estimate = price_tasks(
            "example", ResultQuality.HIGH_QUALITY, tasks, settings
        )
        assert estimate.total_minutes == 25.0  # 18 + 4 + 3

    def test_example_38_tool_assisted(self, example, module):
        """With a mapping tool the two connections cost 2 minutes each."""
        from repro.core.effort import ExecutionSettings, constant, price_tasks

        report = module.assess(example)
        tasks = module.plan(example, report, ResultQuality.HIGH_QUALITY)
        settings = ExecutionSettings(
            {TaskType.WRITE_MAPPING: constant(2.0)}
        )
        estimate = price_tasks(
            "example", ResultQuality.HIGH_QUALITY, tasks, settings
        )
        assert estimate.total_minutes == 4.0


class TestEdgeCases:
    def test_identity_scenario_needs_no_pk_generation(self):
        from repro.scenarios import scenario_s4_s4

        scenario = scenario_s4_s4()
        report = MappingModule().assess(scenario)
        assert all(not c.needs_primary_key for c in report.connections)

    def test_empty_correspondences_give_empty_report(self, example):
        from repro.matching import CorrespondenceSet
        from repro.scenarios.scenario import IntegrationScenario

        bare = IntegrationScenario(
            "bare", example.sources, example.target, CorrespondenceSet()
        )
        report = MappingModule().assess(bare)
        assert report.is_empty()
