"""Tests for the content-keyed profile cache: hits on unchanged data,
invalidation on mutation, and cached-equals-uncached equivalence on
seeded-random schemas."""

import random

import pytest

from repro.profiling import (
    compute_column_profile,
    compute_fds,
    compute_inds,
    compute_uccs,
)
from repro.relational import Database, DataType, Schema, relation
from repro.runtime import ProfileCache, Runtime, fingerprint_database


def build_database():
    schema = Schema(
        "db",
        relations=[
            relation(
                "albums",
                [("id", DataType.INTEGER), ("name", DataType.STRING)],
            ),
            relation(
                "songs",
                [
                    ("album", DataType.INTEGER),
                    ("title", DataType.STRING),
                    ("length", DataType.INTEGER),
                ],
            ),
        ],
    )
    db = Database(schema)
    db.insert_all("albums", [(1, "A"), (2, "B"), (3, "C")])
    db.insert_all("songs", [(1, "s1", 100), (1, "s2", None), (2, "s3", 300)])
    return db


class TestCacheHitsAndMisses:
    def test_repeated_profiling_hits(self):
        runtime = Runtime()
        db = build_database()
        first = runtime.profile_database(db)
        misses = runtime.metrics.cache_misses
        second = runtime.profile_database(db)
        assert second is first  # the memoised object itself
        assert runtime.metrics.cache_misses == misses
        assert runtime.metrics.cache_hits >= 1

    def test_repeated_dependency_discovery_hits(self):
        runtime = Runtime()
        db = build_database()
        assert runtime.discover_uccs(db) == runtime.discover_uccs(db)
        assert runtime.discover_fds(db) == runtime.discover_fds(db)
        assert runtime.discover_inds(db) == runtime.discover_inds(db)
        assert runtime.metrics.cache_hits == 3

    def test_insert_invalidates(self):
        runtime = Runtime()
        db = build_database()
        before = runtime.profile_database(db)
        db.insert("albums", (4, "D"))
        after = runtime.profile_database(db)
        assert after is not before
        assert after[("albums", "id")].row_count == 4
        assert runtime.metrics.cache_misses > len(before)

    def test_update_and_delete_invalidate(self):
        runtime = Runtime()
        db = build_database()
        runtime.profile_column(db, "albums", "name")
        db.table("albums").update_where(
            lambda row: row["id"] == 1, {"name": "Z"}
        )
        updated = runtime.profile_column(db, "albums", "name")
        assert "Z" in db.table("albums").column("name")
        db.table("albums").delete_where(lambda row: row["id"] == 2)
        deleted = runtime.profile_column(db, "albums", "name")
        assert deleted.row_count == updated.row_count - 1

    def test_identical_content_shares_entries(self):
        runtime = Runtime()
        first, second = build_database(), build_database()
        profile_a = runtime.profile_column(first, "songs", "length")
        profile_b = runtime.profile_column(second, "songs", "length")
        assert profile_b is profile_a
        assert runtime.metrics.cache_hits == 1


class TestFingerprints:
    def test_stable_for_unchanged_content(self):
        db = build_database()
        assert fingerprint_database(db) == fingerprint_database(db)

    def test_identical_content_identical_fingerprint(self):
        assert fingerprint_database(build_database()) == fingerprint_database(
            build_database()
        )

    def test_mutation_changes_fingerprint(self):
        db = build_database()
        before = fingerprint_database(db)
        db.insert("songs", (3, "s4", 400))
        assert fingerprint_database(db) != before

    def test_value_change_changes_fingerprint(self):
        db = build_database()
        before = fingerprint_database(db)
        db.table("songs").map_column("length", lambda v: v + 1)
        assert fingerprint_database(db) != before


class TestCacheMaintenance:
    def test_explicit_invalidation(self):
        runtime = Runtime()
        db = build_database()
        runtime.profile_database(db)
        assert len(runtime.cache) > 0
        dropped = runtime.cache.invalidate(db)
        assert dropped > 0
        assert len(runtime.cache) == 0

    def test_eviction_respects_bound(self):
        cache = ProfileCache(max_entries=2)
        runtime = Runtime(cache=cache, metrics=cache.metrics)
        db = build_database()
        runtime.profile_column(db, "albums", "id")
        runtime.profile_column(db, "albums", "name")
        runtime.profile_column(db, "songs", "title")
        assert len(cache) == 2
        assert cache.metrics.counter("cache_evictions") == 1


class TestCanonicalKeys:
    """Regression: fingerprints hash canonical column bytes, not reprs.

    Keys must be independent of constraint declaration order and immune
    to separator-forging values — and therefore identical no matter
    which executor backend computed the entry.
    """

    def test_constraint_declaration_order_is_irrelevant(self):
        from repro.relational.constraints import NotNull, Unique

        def build(order):
            schema = Schema(
                "db",
                relations=[
                    relation(
                        "albums",
                        [("id", DataType.INTEGER), ("name", DataType.STRING)],
                    )
                ],
                constraints=order,
            )
            db = Database(schema)
            db.insert_all("albums", [(1, "A"), (2, "B")])
            return db

        forward = [Unique("albums", ("id",)), NotNull("albums", "name")]
        backward = [NotNull("albums", "name"), Unique("albums", ("id",))]
        assert fingerprint_database(build(forward)) == fingerprint_database(
            build(backward)
        )

    def test_separator_values_cannot_collide(self):
        """Values that mimic old field/row separators hash distinctly."""

        def single_column(values):
            schema = Schema(
                "db",
                relations=[relation("t", [("v", DataType.STRING)])],
            )
            db = Database(schema)
            db.insert_all("t", [(value,) for value in values])
            return db

        # One row "a\x1fb" vs two rows "a"/"b": a separator-joined repr
        # hash could conflate these; length-prefixed blocks cannot.
        joined = single_column(["a\x1fb"])
        split = single_column(["a", "b"])
        assert fingerprint_database(joined) != fingerprint_database(split)
        # repr-lookalike strings must differ from the values they mimic.
        assert fingerprint_database(
            single_column(["'x'"])
        ) != fingerprint_database(single_column(["x"]))

    def test_numeric_types_hash_distinctly(self):
        def one(datatype, value):
            schema = Schema(
                "db", relations=[relation("t", [("v", datatype)])]
            )
            db = Database(schema)
            db.insert("t", (value,))
            return db

        # 1 and 1.0 share repr-adjacent forms but are different typed
        # columns; the canonical encoding keeps them apart.
        assert fingerprint_database(
            one(DataType.INTEGER, 1)
        ) != fingerprint_database(one(DataType.FLOAT, 1.0))

    def test_put_then_peek_round_trips(self):
        cache = ProfileCache()
        db = build_database()
        key = ("profile_column", "albums", "id", "integer")
        assert cache.peek(db, key) is None
        sentinel = object()
        cache.put(db, key, sentinel)
        assert cache.peek(db, key) is sentinel
        # peek is passive: no hit/miss accounting.
        assert cache.metrics.cache_hits == 0
        assert cache.metrics.cache_misses == 0

    def test_entries_merge_between_caches(self):
        """Worker-cache entries merged via put_raw are indistinguishable
        from locally computed ones (same content keys)."""
        db = build_database()
        worker_runtime = Runtime()
        worker_runtime.profile_database(db)
        parent = ProfileCache()
        for key, value in worker_runtime.cache.entries():
            parent.put_raw(key, value)
        parent_runtime = Runtime(cache=parent, metrics=parent.metrics)
        parent_runtime.profile_database(db)
        assert parent.metrics.cache_hits >= 1
        assert sorted(parent.keys(), key=repr) == sorted(
            worker_runtime.cache.keys(), key=repr
        )


def random_database(seed: int) -> Database:
    """A seeded-random schema + instance for the property check."""
    rng = random.Random(seed)
    relations = []
    for index in range(rng.randint(1, 3)):
        attributes = [("id", DataType.INTEGER)]
        for attr_index in range(rng.randint(1, 3)):
            datatype = rng.choice(
                [DataType.INTEGER, DataType.STRING, DataType.FLOAT]
            )
            attributes.append((f"a{attr_index}", datatype))
        relations.append(relation(f"r{index}", attributes))
    schema = Schema(f"random{seed}", relations=relations)
    db = Database(schema)
    for rel in schema.relations:
        for row_index in range(rng.randint(0, 25)):
            row = [row_index]
            for _, datatype in [
                (a.name, a.datatype) for a in rel.attributes[1:]
            ]:
                if rng.random() < 0.15:
                    row.append(None)
                elif datatype is DataType.INTEGER:
                    row.append(rng.randint(0, 9))
                elif datatype is DataType.FLOAT:
                    row.append(round(rng.uniform(0, 100), 2))
                else:
                    row.append(rng.choice(["x", "yy", "z-3", "W 4"]))
            db.insert(rel.name, row)
    return db


class TestCachedEqualsUncached:
    """Property: for random schemas, cached results equal fresh computation."""

    @pytest.mark.parametrize("seed", range(12))
    def test_profiles_equal(self, seed):
        runtime = Runtime()
        db = random_database(seed)
        cached = runtime.profile_database(db)
        again = runtime.profile_database(db)
        assert again is cached
        for (relation_name, attribute_name), profile in cached.items():
            uncached = compute_column_profile(
                db, relation_name, attribute_name
            )
            assert profile == uncached

    @pytest.mark.parametrize("seed", range(12))
    def test_dependencies_equal(self, seed):
        runtime = Runtime()
        db = random_database(seed)
        assert runtime.discover_uccs(db) == compute_uccs(db)
        assert runtime.discover_inds(db) == compute_inds(db)
        assert runtime.discover_fds(db) == compute_fds(db)
        # And the second (cached) round still matches.
        assert runtime.discover_uccs(db) == compute_uccs(db)
        assert runtime.metrics.cache_hits >= 1
