"""One consolidated module asserting every paper-exact number.

Each claim also lives next to its module tests and in the benchmarks;
this module is the single place a reviewer can read to see what the
reproduction pins down exactly (see EXPERIMENTS.md for the full
paper-vs-measured index including the shape-level claims).
"""

import pytest

from repro.core import ResultQuality
from repro.core.effort import ExecutionSettings, constant, linear, price_tasks
from repro.core.tasks import TaskCategory, TaskType


@pytest.fixture(scope="module")
def high_estimate(example, efes):
    return efes.estimate(example, ResultQuality.HIGH_QUALITY)


class TestTable2:
    def test_rows(self, example_reports):
        rows = {
            c.target_table: (c.source_tables, c.attributes, c.needs_primary_key)
            for c in example_reports["mapping"].connections
        }
        assert rows == {
            "records": (3, 2, True),
            "tracks": (3, 2, False),
        }


class TestTable3:
    def test_counts(self, example_reports):
        counts = {
            (v.target_relationship, v.prescribed): v.violation_count
            for v in example_reports["structure"].violations
        }
        assert counts == {
            ("records->records.artist", "1"): 503,
            ("records.artist->records", "1..*"): 102,
        }


class TestTable5:
    def test_total_224_minutes(self, high_estimate):
        assert high_estimate.by_category()[
            TaskCategory.CLEANING_STRUCTURE
        ] == pytest.approx(224.0)

    def test_task_breakdown(self, high_estimate):
        structure = {
            entry.task.type: entry.minutes
            for entry in high_estimate.entries
            if entry.task.category is TaskCategory.CLEANING_STRUCTURE
        }
        assert structure == {
            TaskType.ADD_TUPLES: 5.0,
            TaskType.ADD_MISSING_VALUES: 204.0,
            TaskType.MERGE_VALUES: 15.0,
        }


class TestTable6:
    def test_single_finding_on_duration(self, example_reports):
        findings = example_reports["values"].findings
        assert [(f.source_attribute, f.target_attribute) for f in findings] == [
            ("songs.length", "tracks.duration")
        ]


class TestTable8:
    def test_value_cleaning_is_15_minutes(self, high_estimate):
        assert high_estimate.by_category()[
            TaskCategory.CLEANING_VALUES
        ] == pytest.approx(15.0)


class TestExample38:
    def test_manual_25_and_tooled_4_minutes(self, example, efes):
        mapping = next(m for m in efes.modules if m.name == "mapping")
        report = mapping.assess(example)
        tasks = mapping.plan(example, report, ResultQuality.HIGH_QUALITY)
        manual = ExecutionSettings(
            {
                TaskType.WRITE_MAPPING: linear(
                    tables=3.0, attributes=1.0, primary_keys=3.0
                )
            }
        )
        tooled = ExecutionSettings({TaskType.WRITE_MAPPING: constant(2.0)})
        assert price_tasks(
            "e", ResultQuality.HIGH_QUALITY, tasks, manual
        ).total_minutes == pytest.approx(25.0)
        assert price_tasks(
            "e", ResultQuality.HIGH_QUALITY, tasks, tooled
        ).total_minutes == pytest.approx(4.0)


class TestSection62Runtime:
    def test_assessment_completes_within_seconds(self, example, efes):
        import time

        started = time.perf_counter()
        efes.assess(example)
        assert time.perf_counter() - started < 10.0


class TestRuntimeRegression:
    """The paper-exact numbers survive the new parallel, cached runtime.

    The baseline configuration (Table 1) and the running example's
    estimates (Tables 5/8) must be byte-for-byte unchanged when every
    detector and profile runs through the threaded backend.
    """

    @pytest.fixture(scope="class")
    def threaded_estimate(self, example):
        from repro.core import default_efes
        from repro.runtime import Runtime

        runtime = Runtime(backend="threads")
        try:
            yield default_efes(runtime=runtime).estimate(
                example, ResultQuality.HIGH_QUALITY
            )
        finally:
            runtime.close()

    def test_table1_baseline_unchanged(self, example):
        from repro.core import (
            HARDEN_TASKS,
            HOURS_PER_ATTRIBUTE,
            AttributeCountingBaseline,
        )
        from repro.runtime import Runtime

        assert HOURS_PER_ATTRIBUTE == pytest.approx(8.05)
        assert sum(hours for _, hours in HARDEN_TASKS) == pytest.approx(8.05)
        with Runtime(backend="threads").activated():
            baseline = AttributeCountingBaseline().estimate(
                example, ResultQuality.HIGH_QUALITY
            )
        assert baseline.total_minutes == pytest.approx(
            8.05 * 60 * example.total_source_attributes()
        )

    def test_table5_structure_total_unchanged(self, threaded_estimate):
        assert threaded_estimate.by_category()[
            TaskCategory.CLEANING_STRUCTURE
        ] == pytest.approx(224.0)

    def test_table8_value_total_unchanged(self, threaded_estimate):
        assert threaded_estimate.by_category()[
            TaskCategory.CLEANING_VALUES
        ] == pytest.approx(15.0)

    def test_whole_estimate_matches_serial(self, threaded_estimate, high_estimate):
        assert repr(threaded_estimate) == repr(high_estimate)
