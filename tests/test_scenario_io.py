"""Tests for scenario serialization (save/load round trips)."""

import json

import pytest

from repro.core import ResultQuality, default_efes
from repro.relational import FunctionalDependencyConstraint
from repro.scenarios.bibliographic import scenario_multi_source
from repro.scenarios.io import (
    ScenarioFormatError,
    constraint_from_dict,
    constraint_to_dict,
    load_database,
    load_scenario,
    save_database,
    save_scenario,
)


class TestConstraintRoundTrip:
    def test_all_kinds_round_trip(self, example):
        for constraint in (
            example.sources[0].schema.constraints
            + example.target.schema.constraints
        ):
            restored = constraint_from_dict(constraint_to_dict(constraint))
            assert restored == constraint

    def test_functional_dependency_round_trip(self):
        fd = FunctionalDependencyConstraint("r", "a", "b")
        assert constraint_from_dict(constraint_to_dict(fd)) == fd

    def test_unknown_kind_rejected(self):
        with pytest.raises(ScenarioFormatError):
            constraint_from_dict({"kind": "check", "relation": "r"})


class TestDatabaseRoundTrip:
    def test_schema_and_rows_survive(self, small_example, tmp_path):
        source = small_example.sources[0]
        save_database(source, tmp_path / "db")
        restored = load_database(tmp_path / "db")
        assert restored.schema.name == source.schema.name
        assert restored.schema.relation_names == source.schema.relation_names
        for rel in source.schema.relations:
            assert restored.table(rel.name).rows == source.table(rel.name).rows

    def test_constraints_survive(self, small_example, tmp_path):
        source = small_example.sources[0]
        save_database(source, tmp_path / "db")
        restored = load_database(tmp_path / "db")
        original = {c.describe() for c in source.schema.constraints}
        assert {c.describe() for c in restored.schema.constraints} == original

    def test_missing_schema_rejected(self, tmp_path):
        with pytest.raises(ScenarioFormatError):
            load_database(tmp_path)


class TestScenarioRoundTrip:
    @pytest.fixture(scope="class")
    def round_tripped(self, small_example, tmp_path_factory):
        directory = tmp_path_factory.mktemp("scenario")
        save_scenario(small_example, directory)
        return load_scenario(directory)

    def test_name_and_structure(self, round_tripped, small_example):
        assert round_tripped.name == small_example.name
        assert [s.name for s in round_tripped.sources] == [
            s.name for s in small_example.sources
        ]
        assert round_tripped.target.name == small_example.target.name

    def test_correspondences_survive(self, round_tripped, small_example):
        original = small_example.correspondences["source"]
        restored = round_tripped.correspondences["source"]
        assert {(c.source, c.target) for c in restored} == {
            (c.source, c.target) for c in original
        }

    def test_estimates_are_identical(self, round_tripped, small_example, efes):
        original = efes.estimate(small_example, ResultQuality.HIGH_QUALITY)
        restored = efes.estimate(round_tripped, ResultQuality.HIGH_QUALITY)
        assert restored.total_minutes == original.total_minutes
        assert [e.task.describe() for e in restored.entries] == [
            e.task.describe() for e in original.entries
        ]

    def test_multi_source_round_trip(self, tmp_path):
        scenario = scenario_multi_source()
        save_scenario(scenario, tmp_path / "multi")
        restored = load_scenario(tmp_path / "multi")
        assert [s.name for s in restored.sources] == ["s1", "s3"]
        efes = default_efes()
        original_total = efes.estimate(
            scenario, ResultQuality.LOW_EFFORT
        ).total_minutes
        restored_total = efes.estimate(
            restored, ResultQuality.LOW_EFFORT
        ).total_minutes
        assert restored_total == original_total


class TestStoreRoundTrip:
    """On-disk scenarios driven through the service's report store."""

    def test_saved_scenario_has_the_same_content_address(
        self, small_example, tmp_path
    ):
        from repro.service import job_key

        save_scenario(small_example, tmp_path / "scenario")
        restored = load_scenario(tmp_path / "scenario")
        # Content addressing ignores where the scenario came from: the
        # CSV round trip preserves every value, so the store key matches.
        assert job_key(restored, "assess") == job_key(small_example, "assess")

    def test_assessment_of_loaded_scenario_round_trips_via_spool(
        self, small_example, tmp_path, efes
    ):
        from repro.core.serialize import reports_from_dict, reports_to_dict
        from repro.service import ReportStore, job_key

        save_scenario(small_example, tmp_path / "scenario")
        restored = load_scenario(tmp_path / "scenario")
        reports = efes.assess(restored)

        key = job_key(restored, "assess")
        ReportStore(tmp_path / "spool").put(key, reports_to_dict(reports))
        # A fresh store (fresh process) serves the spooled document, and
        # deserialisation reproduces the reports exactly.
        document = ReportStore(tmp_path / "spool").get(key)
        assert reports_from_dict(document) == reports
        assert reports_from_dict(document) == efes.assess(small_example)


class TestFormatValidation:
    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(ScenarioFormatError):
            load_scenario(tmp_path)

    def test_wrong_version_rejected(self, small_example, tmp_path):
        save_scenario(small_example, tmp_path)
        manifest = json.loads((tmp_path / "scenario.json").read_text())
        manifest["version"] = 99
        (tmp_path / "scenario.json").write_text(json.dumps(manifest))
        with pytest.raises(ScenarioFormatError):
            load_scenario(tmp_path)


class TestMalformedRelationData:
    """Bad relation CSVs degrade by default and fail fast under strict."""

    def _mangle_first_csv(self, directory):
        victim = sorted(directory.rglob("*.csv"))[0]
        lines = victim.read_text(encoding="utf-8").splitlines()
        lines.insert(1, "one-lonely-cell")
        victim.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return victim

    def test_lenient_load_leaves_tombstone(self, small_example, tmp_path):
        save_scenario(small_example, tmp_path)
        victim = self._mangle_first_csv(tmp_path)
        scenario = load_scenario(tmp_path)
        degradations = scenario.load_degradations
        assert len(degradations) == 1
        assert degradations[0].phase == "load"
        assert f"{victim}:2:" in degradations[0].error
        assert degradations[0].scenario == scenario.name

    def test_strict_load_raises_with_location(self, small_example, tmp_path):
        save_scenario(small_example, tmp_path)
        victim = self._mangle_first_csv(tmp_path)
        with pytest.raises(ScenarioFormatError) as excinfo:
            load_scenario(tmp_path, strict=True)
        assert f"{victim}:2:" in str(excinfo.value)

    def test_run_merges_load_tombstones(self, small_example, tmp_path):
        save_scenario(small_example, tmp_path)
        self._mangle_first_csv(tmp_path)
        scenario = load_scenario(tmp_path)
        outcome = default_efes().run(scenario, ResultQuality.HIGH_QUALITY)
        assert outcome.is_degraded
        assert any(d.phase == "load" for d in outcome.degradations)

    def test_run_strict_upgrades_tombstone_to_error(
        self, small_example, tmp_path
    ):
        save_scenario(small_example, tmp_path)
        self._mangle_first_csv(tmp_path)
        scenario = load_scenario(tmp_path)
        with pytest.raises(ScenarioFormatError):
            default_efes().run(
                scenario, ResultQuality.HIGH_QUALITY, strict=True
            )

    def test_clean_scenario_has_no_tombstones(self, small_example, tmp_path):
        save_scenario(small_example, tmp_path)
        scenario = load_scenario(tmp_path)
        assert not hasattr(scenario, "load_degradations")
