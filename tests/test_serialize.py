"""Round-trip tests for the JSON codecs of reports, tasks, estimates."""

import json

import pytest

from repro.core import (
    ResultQuality,
    SerializationError,
    default_efes,
    estimate_from_dict,
    estimate_to_dict,
    report_from_dict,
    report_to_dict,
    reports_from_dict,
    reports_to_dict,
    task_from_dict,
    task_to_dict,
    tasks_from_dicts,
    tasks_to_dicts,
)
from repro.core.reports import ComplexityReport
from repro.core.tasks import Task, TaskType


def through_json(doc):
    """Force a real JSON round trip, not just dict identity."""
    return json.loads(json.dumps(doc))


class TestReportRoundTrip:
    def test_every_shipped_report_shape(self, example_reports):
        for name, report in example_reports.items():
            doc = through_json(report_to_dict(report))
            restored = report_from_dict(doc)
            assert restored == report, name
            assert restored.module == report.module

    def test_reports_dict_preserves_module_order(self, example_reports):
        doc = through_json(reports_to_dict(example_reports))
        restored = reports_from_dict(doc)
        assert list(restored) == list(example_reports)
        assert restored == example_reports

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError):
            report_from_dict({"kind": "sentiment", "findings": []})

    def test_unregistered_report_type_rejected(self):
        class CustomReport(ComplexityReport):
            module = "custom"

        with pytest.raises(SerializationError):
            report_to_dict(CustomReport())


class TestTaskRoundTrip:
    def test_plain_task(self):
        task = Task(
            TaskType.CONVERT_VALUES,
            ResultQuality.HIGH_QUALITY,
            "albums.length -> records.length",
            {"values": 1000.0, "representations": 2.0},
            module="values",
        )
        assert task_from_dict(through_json(task_to_dict(task))) == task

    def test_planned_task_list(self, small_example, efes):
        outcome = efes.run(small_example, ResultQuality.HIGH_QUALITY)
        docs = through_json(tasks_to_dicts(outcome.tasks))
        assert tasks_from_dicts(docs) == outcome.tasks

    def test_malformed_task_rejected(self):
        with pytest.raises(SerializationError):
            task_from_dict({"type": "Not a task", "quality": "high_quality"})


class TestEstimateRoundTrip:
    @pytest.mark.parametrize(
        "quality", [ResultQuality.LOW_EFFORT, ResultQuality.HIGH_QUALITY]
    )
    def test_estimate(self, small_example, efes, quality):
        estimate = efes.estimate(small_example, quality)
        doc = through_json(estimate_to_dict(estimate))
        restored = estimate_from_dict(doc)
        assert restored == estimate
        assert restored.total_minutes == pytest.approx(estimate.total_minutes)
        assert restored.by_category() == estimate.by_category()

    def test_headline_total_matches_entries(self, small_example, efes):
        estimate = efes.estimate(small_example, ResultQuality.HIGH_QUALITY)
        doc = estimate_to_dict(estimate)
        assert doc["total_minutes"] == pytest.approx(
            sum(entry["minutes"] for entry in doc["entries"])
        )

    def test_malformed_estimate_rejected(self):
        with pytest.raises(SerializationError):
            estimate_from_dict({"scenario_name": "x", "quality": "nope"})


class TestOutcome:
    def test_run_bundles_reports_and_estimate(self, small_example):
        efes = default_efes()
        outcome = efes.run(small_example, ResultQuality.HIGH_QUALITY)
        assert set(outcome.reports) == {"mapping", "structure", "values"}
        assert outcome.scenario_name == small_example.name
        assert outcome.tasks == [e.task for e in outcome.estimate.entries]
        # The bundled estimate equals a standalone one over the same reports.
        standalone = efes.estimate(
            small_example, ResultQuality.HIGH_QUALITY, reports=outcome.reports
        )
        assert outcome.estimate == standalone
