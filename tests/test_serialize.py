"""Round-trip tests for the JSON codecs of reports, tasks, estimates."""

import json

import pytest

from repro.core import (
    ResultQuality,
    SerializationError,
    default_efes,
    estimate_from_dict,
    estimate_to_dict,
    report_from_dict,
    report_to_dict,
    reports_from_dict,
    reports_to_dict,
    task_from_dict,
    task_to_dict,
    tasks_from_dicts,
    tasks_to_dicts,
)
from repro.core.reports import ComplexityReport
from repro.core.tasks import Task, TaskType


def through_json(doc):
    """Force a real JSON round trip, not just dict identity."""
    return json.loads(json.dumps(doc))


class TestReportRoundTrip:
    def test_every_shipped_report_shape(self, example_reports):
        for name, report in example_reports.items():
            doc = through_json(report_to_dict(report))
            restored = report_from_dict(doc)
            assert restored == report, name
            assert restored.module == report.module

    def test_reports_dict_preserves_module_order(self, example_reports):
        doc = through_json(reports_to_dict(example_reports))
        restored = reports_from_dict(doc)
        assert list(restored) == list(example_reports)
        assert restored == example_reports

    def test_unknown_kind_rejected(self):
        with pytest.raises(SerializationError):
            report_from_dict({"kind": "sentiment", "findings": []})

    def test_unregistered_report_type_rejected(self):
        class CustomReport(ComplexityReport):
            module = "custom"

        with pytest.raises(SerializationError):
            report_to_dict(CustomReport())


class TestTaskRoundTrip:
    def test_plain_task(self):
        task = Task(
            TaskType.CONVERT_VALUES,
            ResultQuality.HIGH_QUALITY,
            "albums.length -> records.length",
            {"values": 1000.0, "representations": 2.0},
            module="values",
        )
        assert task_from_dict(through_json(task_to_dict(task))) == task

    def test_planned_task_list(self, small_example, efes):
        outcome = efes.run(small_example, ResultQuality.HIGH_QUALITY)
        docs = through_json(tasks_to_dicts(outcome.tasks))
        assert tasks_from_dicts(docs) == outcome.tasks

    def test_malformed_task_rejected(self):
        with pytest.raises(SerializationError):
            task_from_dict({"type": "Not a task", "quality": "high_quality"})


class TestEstimateRoundTrip:
    @pytest.mark.parametrize(
        "quality", [ResultQuality.LOW_EFFORT, ResultQuality.HIGH_QUALITY]
    )
    def test_estimate(self, small_example, efes, quality):
        estimate = efes.estimate(small_example, quality)
        doc = through_json(estimate_to_dict(estimate))
        restored = estimate_from_dict(doc)
        assert restored == estimate
        assert restored.total_minutes == pytest.approx(estimate.total_minutes)
        assert restored.by_category() == estimate.by_category()

    def test_headline_total_matches_entries(self, small_example, efes):
        estimate = efes.estimate(small_example, ResultQuality.HIGH_QUALITY)
        doc = estimate_to_dict(estimate)
        assert doc["total_minutes"] == pytest.approx(
            sum(entry["minutes"] for entry in doc["entries"])
        )

    def test_malformed_estimate_rejected(self):
        with pytest.raises(SerializationError):
            estimate_from_dict({"scenario_name": "x", "quality": "nope"})


class TestOutcome:
    def test_run_bundles_reports_and_estimate(self, small_example):
        efes = default_efes()
        outcome = efes.run(small_example, ResultQuality.HIGH_QUALITY)
        assert set(outcome.reports) == {"mapping", "structure", "values"}
        assert outcome.scenario_name == small_example.name
        assert outcome.tasks == [e.task for e in outcome.estimate.entries]
        # The bundled estimate equals a standalone one over the same reports.
        standalone = efes.estimate(
            small_example, ResultQuality.HIGH_QUALITY, reports=outcome.reports
        )
        assert outcome.estimate == standalone


class TestJournalCodec:
    """Property-style round trips for the write-ahead journal lines.

    The decoder's WAL truncation contract: any byte-level truncation of
    an encoded stream decodes exactly the untouched prefix of records
    and counts the torn tail — never garbage, never a partial record.
    """

    @staticmethod
    def random_records(rng, count):
        from repro.durability import (
            dispatched_record,
            settled_record,
            submitted_record,
        )
        from repro.service.jobs import Job

        records = []
        for index in range(count):
            kind = rng.choice(("submitted", "dispatched", "settled"))
            if kind == "submitted":
                job = Job(
                    kind=rng.choice(("assess", "estimate", "callable")),
                    scenario_name=f"scn-{rng.randint(0, 99)}",
                    quality=rng.choice(("high_quality", "low_effort", None)),
                    priority=rng.randint(-5, 5),
                    idempotency_key=(
                        f"key-{rng.randint(0, 9)}" if rng.random() < 0.7
                        else None
                    ),
                )
                records.append(
                    submitted_record(
                        job,
                        scenario_ref=f"ref-{index}",
                        seed=rng.randint(1, 1000),
                    )
                )
            elif kind == "dispatched":
                records.append(dispatched_record(f"job-{index:04x}"))
            else:
                records.append(
                    settled_record(
                        f"job-{index:04x}",
                        rng.choice(("done", "failed", "cancelled")),
                        error="boom éµ" if rng.random() < 0.3
                        else None,
                        store_key=f"sk-{index}" if rng.random() < 0.5
                        else None,
                        checkpoint=rng.random() < 0.2,
                    )
                )
        return records

    def test_single_record_round_trip(self):
        import random

        from repro.core.serialize import (
            journal_record_from_line,
            journal_record_to_line,
        )

        rng = random.Random(0xC0DEC)
        for record in self.random_records(rng, 200):
            line = journal_record_to_line(record)
            assert line.endswith("\n") and "\n" not in line[:-1]
            assert journal_record_from_line(line) == json.loads(
                json.dumps(record)
            )

    def test_torn_truncation_drops_exactly_the_tail(self):
        import random

        from repro.core.serialize import (
            decode_journal_text,
            journal_record_to_line,
        )

        rng = random.Random(0x7EA6)
        for _ in range(30):
            records = self.random_records(rng, rng.randint(1, 8))
            lines = [journal_record_to_line(r) for r in records]
            text = "".join(lines)
            # Intact stream: everything decodes, nothing torn.
            decoded, torn = decode_journal_text(text)
            assert torn == 0
            assert decoded == json.loads(json.dumps(records))
            # Truncate at a random byte inside the final record.
            cut = rng.randrange(
                len(text) - len(lines[-1]), len(text) - 1
            ) + 1
            decoded, torn = decode_journal_text(text[:cut])
            assert decoded == json.loads(json.dumps(records[:-1]))
            assert torn == 1

    def test_truncation_at_every_offset_never_yields_garbage(self):
        import random

        from repro.core.serialize import (
            decode_journal_text,
            journal_record_to_line,
        )

        rng = random.Random(0x0FF5E7)
        records = self.random_records(rng, 4)
        lines = [journal_record_to_line(r) for r in records]
        text = "".join(lines)
        starts = [0]
        for line in lines:
            starts.append(starts[-1] + len(line))
        expected = json.loads(json.dumps(records))
        for cut in range(len(text) + 1):
            decoded, torn = decode_journal_text(text[:cut])
            # The decoded prefix is exactly the records whose full line
            # (newline included) fits inside the cut.
            whole = sum(1 for start in starts[1:] if start <= cut)
            assert decoded == expected[:whole]
            assert torn == (0 if cut in starts else 1)

    def test_corrupted_line_invalidates_segment_tail(self):
        from repro.core.serialize import (
            decode_journal_text,
            journal_record_to_line,
        )

        lines = [
            journal_record_to_line({"type": "dispatched", "job_id": str(i)})
            for i in range(5)
        ]
        # Flip one byte in the middle record's body: CRC catches it and
        # WAL semantics discard it plus everything after it.
        bad = lines[2][:-3] + ("X" if lines[2][-3] != "X" else "Y") + lines[2][-2:]
        decoded, torn = decode_journal_text("".join(lines[:2] + [bad] + lines[3:]))
        assert [r["job_id"] for r in decoded] == ["0", "1"]
        assert torn == 3
