"""Tests for the scenario machinery and both case-study domains."""

import pytest

from repro.matching import CorrespondenceSet, attribute_correspondence
from repro.relational.validation import assert_valid
from repro.scenarios import (
    DataGenerator,
    IntegrationScenario,
    bibliographic_scenarios,
    example_scenario,
    music_scenarios,
)
from repro.scenarios.example import ExampleParameters


class TestIntegrationScenario:
    def test_single_source_shorthand(self, example):
        assert len(example.sources) == 1
        assert example.correspondences[example.sources[0].name]

    def test_pairs(self, example):
        pairs = list(example.pairs())
        assert len(pairs) == 1
        source, cset = pairs[0]
        assert source.name == "source" and len(cset) > 0

    def test_source_lookup(self, example):
        assert example.source("source") is example.sources[0]
        with pytest.raises(KeyError):
            example.source("nope")

    def test_total_source_attributes(self, example):
        assert example.total_source_attributes() == 11

    def test_duplicate_source_names_rejected(self, example):
        with pytest.raises(ValueError):
            IntegrationScenario(
                "dup",
                [example.sources[0], example.sources[0]],
                example.target,
                {},
            )

    def test_unknown_correspondence_source_rejected(self, example):
        with pytest.raises(ValueError):
            IntegrationScenario(
                "bad",
                example.sources,
                example.target,
                {"ghost": CorrespondenceSet()},
            )

    def test_correspondences_validated_against_schemas(self, example):
        bad = CorrespondenceSet(
            [attribute_correspondence("albums.nope", "records.title")]
        )
        with pytest.raises(Exception):
            IntegrationScenario(
                "bad", example.sources, example.target, bad
            )


class TestDataGenerator:
    def test_deterministic(self):
        a, b = DataGenerator(7), DataGenerator(7)
        assert [a.title() for _ in range(5)] == [b.title() for _ in range(5)]

    def test_seeds_differ(self):
        a, b = DataGenerator(7), DataGenerator(8)
        assert [a.title() for _ in range(5)] != [b.title() for _ in range(5)]

    def test_distinct_person_names_are_distinct(self):
        names = DataGenerator(1).distinct_person_names(500)
        assert len(set(names)) == 500

    def test_inverted_names_have_comma(self):
        names = DataGenerator(1).distinct_person_names(10, inverted=True)
        assert all("," in name for name in names)

    def test_distinct_titles(self):
        titles = DataGenerator(1).distinct_titles(300)
        assert len(set(titles)) == 300

    def test_ms_to_mss(self):
        assert DataGenerator.ms_to_mss(283_000) == "4:43"
        assert DataGenerator.ms_to_mss(60_000) == "1:00"

    def test_seconds_to_mss_pads(self):
        assert DataGenerator.seconds_to_mss(61) == "1:01"


class TestExampleScenario:
    def test_sources_are_locally_valid(self, example):
        assert_valid(example.sources[0])

    def test_target_is_locally_valid(self, example):
        assert_valid(example.target)

    def test_paper_counts_are_exact(self, example):
        source = example.sources[0]
        assert len(source.table("albums")) == 2000
        lists = len(source.table("artist_lists"))
        assert lists == 2000 + 102

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            example_scenario(
                ExampleParameters(albums=10, multi_artist_albums=20)
            )

    def test_known_transformations_attached(self, example):
        transformation = example.known_transformations[
            ("songs.length", "tracks.duration")
        ]
        assert transformation(283_000) == "4:43"


@pytest.mark.parametrize("builder", [bibliographic_scenarios, music_scenarios])
class TestDomains:
    def test_four_scenarios(self, builder):
        assert len(builder()) == 4

    def test_all_locally_valid(self, builder):
        for scenario in builder():
            for source in scenario.sources:
                assert_valid(source)
            assert_valid(scenario.target)

    def test_deterministic(self, builder):
        names_a = [
            (s.name, s.sources[0].total_rows(), s.target.total_rows())
            for s in builder(seed=3)
        ]
        names_b = [
            (s.name, s.sources[0].total_rows(), s.target.total_rows())
            for s in builder(seed=3)
        ]
        assert names_a == names_b

    def test_seed_changes_instances(self, builder):
        rows_a = [s.sources[0].total_rows() for s in builder(seed=1)]
        rows_b = [s.sources[0].total_rows() for s in builder(seed=2)]
        assert rows_a != rows_b

    def test_identity_scenario_present(self, builder):
        names = [s.name for s in builder()]
        assert any(
            name.split("-")[0].rstrip("0123456789")
            == name.split("-")[1].rstrip("0123456789")
            for name in names
        )


class TestDomainHeterogeneities:
    """Each non-identity scenario must exhibit detectable heterogeneity;
    identity scenarios must not (the s4-s4 / d1-d2 argument of §6.2)."""

    @pytest.fixture(scope="class")
    def assessments(self, efes):
        result = {}
        for scenario in bibliographic_scenarios() + music_scenarios():
            result[scenario.name] = efes.assess(scenario)
        return result

    def test_identity_scenarios_are_clean(self, assessments):
        for name in ("s4-s4", "d1-d2"):
            assert assessments[name]["structure"].is_empty()
            assert assessments[name]["values"].is_empty()

    def test_non_identity_scenarios_have_findings(self, assessments):
        for name in ("s1-s2", "s1-s3", "s3-s4", "f1-m2", "m1-d2", "m1-f2"):
            reports = assessments[name]
            assert (
                not reports["structure"].is_empty()
                or not reports["values"].is_empty()
            ), name

    def test_s3_s4_structure_conflicts(self, assessments):
        from repro.core.tasks import StructuralConflict

        conflicts = {
            v.conflict
            for v in assessments["s3-s4"]["structure"].violations
        }
        assert StructuralConflict.MULTIPLE_ATTRIBUTE_VALUES in conflicts
        assert StructuralConflict.VALUE_WITHOUT_ENCLOSING_TUPLE in conflicts

    def test_value_conflicts_name_the_attributes(self, assessments):
        findings = assessments["m1-d2"]["values"].findings
        pairs = {(f.source_attribute, f.target_attribute) for f in findings}
        assert ("rtracks.length_ms", "tracklist.duration") in pairs
