"""Property tests for the effort model: monotonicity and scale laws."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ResultQuality, default_execution_settings
from repro.core.effort import linear, per_unit, threshold_per_unit
from repro.core.tasks import Task, TaskType

counts = st.integers(min_value=0, max_value=10_000)
small_floats = st.floats(
    min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


def make_task(**parameters):
    return Task(
        type=TaskType.CONVERT_VALUES,
        quality=ResultQuality.HIGH_QUALITY,
        subject="p",
        parameters=parameters,
    )


@settings(max_examples=100)
@given(counts, counts)
def test_per_unit_is_monotone(a, b):
    function = per_unit(2.0, "values")
    low, high = sorted((a, b))
    assert function(make_task(values=low)) <= function(make_task(values=high))


@settings(max_examples=100)
@given(counts, counts)
def test_threshold_function_is_monotone_above_threshold(a, b):
    function = threshold_per_unit("values", 120, below=15.0, per_unit_above=0.25)
    low, high = sorted((value for value in (a, b)), key=int)
    if low >= 120:
        assert function(make_task(values=low)) <= function(
            make_task(values=high)
        )


@settings(max_examples=100)
@given(counts)
def test_threshold_function_never_negative(count):
    function = threshold_per_unit("values", 120, below=15.0, per_unit_above=0.25)
    assert function(make_task(values=count)) >= 0.0


@settings(max_examples=100)
@given(counts, counts, counts)
def test_linear_is_additive_in_parameters(tables, attributes, keys):
    function = linear(tables=3.0, attributes=1.0, primary_keys=3.0)
    combined = function(
        make_task(tables=tables, attributes=attributes, primary_keys=keys)
    )
    parts = (
        function(make_task(tables=tables))
        + function(make_task(attributes=attributes))
        + function(make_task(primary_keys=keys))
    )
    assert abs(combined - parts) < 1e-6


@settings(max_examples=50)
@given(small_floats)
def test_settings_scale_is_multiplicative(scale):
    settings_obj = default_execution_settings()
    scaled = settings_obj.with_scale(scale)
    task = make_task(representations=500)
    assert scaled.effort_of(task) == settings_obj.effort_of(task) * scale


@settings(max_examples=50)
@given(counts)
def test_every_default_function_is_non_negative(count):
    settings_obj = default_execution_settings()
    for task_type in TaskType:
        task = Task(
            type=task_type,
            quality=ResultQuality.HIGH_QUALITY,
            subject="p",
            parameters={
                "values": count,
                "distinct_values": count,
                "repetitions": count,
                "representations": count,
                "tables": count,
                "attributes": count,
                "primary_keys": count,
                "foreign_keys": count,
            },
        )
        assert settings_obj.effort_of(task) >= 0.0
