"""Differential backend harness: serial is the oracle.

Every scenario family (running example, bibliographic case study, music
case study) runs through the serial, threaded, and process backends;
the serialized reports, estimates, and task catalogues must be
**byte-identical** and the ProfileCache must end up holding exactly the
same content keys regardless of which backend computed the entries.
The fine-grained profiling/discovery primitives get the same treatment
on a shared database.
"""

import json

import pytest

from repro.core import Efes, ResultQuality, default_modules
from repro.core.serialize import (
    dumps,
    estimate_to_dict,
    reports_to_dict,
    tasks_to_dicts,
)
from repro.runtime import Runtime
from repro.scenarios import (
    example_scenario,
    scenario_m1_f2,
    scenario_s1_s2,
)
from repro.scenarios.example import ExampleParameters

BACKENDS = ("serial", "threads", "process")

#: One representative scenario per family; builders return fresh
#: instances so no state leaks between backend runs.
SCENARIO_FAMILIES = {
    "example": lambda: example_scenario(
        ExampleParameters(
            albums=200,
            multi_artist_albums=50,
            detached_artists=12,
            target_records=40,
            seed=9,
        )
    ),
    "bibliographic": lambda: scenario_s1_s2(seed=9),
    "music": lambda: scenario_m1_f2(seed=9),
}


def run_pipeline(backend: str, build_scenario):
    """One full Efes run on a fresh runtime; returns serialized artefacts."""
    runtime = Runtime(backend=backend, max_workers=4)
    scenario = build_scenario()
    efes = Efes(default_modules(), runtime=runtime)
    outcome = efes.run(scenario, ResultQuality.HIGH_QUALITY)
    tasks = efes.plan(
        scenario, ResultQuality.HIGH_QUALITY, reports=outcome.reports
    )
    artefacts = {
        "reports": dumps(reports_to_dict(outcome.reports)),
        "estimate": dumps(estimate_to_dict(outcome.estimate)),
        "tasks": json.dumps(tasks_to_dicts(tasks), sort_keys=True),
        "cache_keys": runtime.cache.keys(),
        "degradations": len(outcome.degradations),
        "fallbacks": runtime.metrics.counter("process_fallbacks"),
    }
    runtime.close()
    return artefacts


@pytest.mark.parametrize("family", sorted(SCENARIO_FAMILIES))
class TestBackendEquivalence:
    def test_reports_estimates_tasks_byte_identical(self, family):
        build = SCENARIO_FAMILIES[family]
        oracle = run_pipeline("serial", build)
        assert oracle["degradations"] == 0
        for backend in BACKENDS[1:]:
            candidate = run_pipeline(backend, build)
            assert candidate["degradations"] == 0, backend
            assert candidate["reports"] == oracle["reports"], backend
            assert candidate["estimate"] == oracle["estimate"], backend
            assert candidate["tasks"] == oracle["tasks"], backend

    def test_cache_keys_backend_independent(self, family):
        build = SCENARIO_FAMILIES[family]
        oracle = run_pipeline("serial", build)
        for backend in BACKENDS[1:]:
            candidate = run_pipeline(backend, build)
            assert candidate["cache_keys"] == oracle["cache_keys"], backend

    def test_process_backend_did_not_silently_fall_back(self, family):
        # A fallback would still be *correct* (serial semantics), but
        # then this harness would not be exercising the process path at
        # all; require the happy path to actually stay on it.
        build = SCENARIO_FAMILIES[family]
        artefacts = run_pipeline("process", build)
        assert artefacts["fallbacks"] == 0


class TestPrimitiveEquivalence:
    """profile_database / discover_* agree across backends on one db."""

    @pytest.fixture(scope="class")
    def scenario(self):
        return SCENARIO_FAMILIES["example"]()

    @pytest.mark.parametrize("backend", BACKENDS[1:])
    def test_primitives_match_serial(self, scenario, backend):
        serial = Runtime(backend="serial")
        candidate = Runtime(backend=backend, max_workers=4)
        for database in (*scenario.sources, scenario.target):
            assert candidate.profile_database(database) == (
                serial.profile_database(database)
            )
            assert candidate.discover_uccs(database) == (
                serial.discover_uccs(database)
            )
            assert candidate.discover_inds(database) == (
                serial.discover_inds(database)
            )
            assert candidate.discover_fds(database) == (
                serial.discover_fds(database)
            )
        assert candidate.cache.keys() == serial.cache.keys()
        assert candidate.metrics.counter("process_fallbacks") == 0
        candidate.close()
        serial.close()

    def test_one_worker_process_backend_runs_inline(self, scenario):
        # --workers 1 must not pay any IPC tax: every task runs in the
        # parent and the pool is never even created.
        runtime = Runtime(backend="process", max_workers=1)
        database = scenario.sources[0]
        runtime.profile_database(database)
        runtime.discover_uccs(database)
        assert runtime.executor._pool is None
        runtime.close()
