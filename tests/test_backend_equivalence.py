"""Differential backend harness: serial is the oracle.

Every scenario family (running example, bibliographic case study, music
case study) runs through the serial, threaded, and process backends;
the serialized reports, estimates, and task catalogues must be
**byte-identical** and the ProfileCache must end up holding exactly the
same content keys regardless of which backend computed the entries.
The fine-grained profiling/discovery primitives get the same treatment
on a shared database.
"""

import json

import pytest

from repro.core import Efes, ResultQuality, default_modules
from repro.core.serialize import (
    dumps,
    estimate_to_dict,
    reports_to_dict,
    tasks_to_dicts,
)
from repro.runtime import Runtime
from repro.scenarios import (
    example_scenario,
    scenario_m1_f2,
    scenario_s1_s2,
)
from repro.scenarios.example import ExampleParameters

BACKENDS = ("serial", "threads", "process")

#: One representative scenario per family; builders return fresh
#: instances so no state leaks between backend runs.
SCENARIO_FAMILIES = {
    "example": lambda: example_scenario(
        ExampleParameters(
            albums=200,
            multi_artist_albums=50,
            detached_artists=12,
            target_records=40,
            seed=9,
        )
    ),
    "bibliographic": lambda: scenario_s1_s2(seed=9),
    "music": lambda: scenario_m1_f2(seed=9),
}


def run_pipeline(backend: str, build_scenario, trace: bool = False):
    """One full Efes run on a fresh runtime; returns serialized artefacts."""
    runtime = Runtime(backend=backend, max_workers=4)
    scenario = build_scenario()
    efes = Efes(default_modules(), runtime=runtime)
    outcome = efes.run(scenario, ResultQuality.HIGH_QUALITY, trace=trace)
    tasks = efes.plan(
        scenario, ResultQuality.HIGH_QUALITY, reports=outcome.reports
    )
    artefacts = {
        "reports": dumps(reports_to_dict(outcome.reports)),
        "estimate": dumps(estimate_to_dict(outcome.estimate)),
        "tasks": json.dumps(tasks_to_dicts(tasks), sort_keys=True),
        "cache_keys": runtime.cache.keys(),
        "degradations": len(outcome.degradations),
        "fallbacks": runtime.metrics.counter("process_fallbacks"),
        "fault_fallbacks": runtime.metrics.counter(
            "process_fallbacks", reason="fault"
        ),
        "telemetry_dropped": runtime.metrics.counter(
            "worker_telemetry_dropped"
        ),
    }
    if trace:
        nodes = list(outcome.trace.walk())
        ids = {node.span_id for node in nodes}
        artefacts["trace_ids"] = {node.trace_id for node in nodes}
        artefacts["orphans"] = sum(
            1
            for node in nodes
            if node.parent_id is not None and node.parent_id not in ids
        )
        artefacts["worker_spans"] = sum(
            1
            for node in nodes
            if node.attributes.get("backend") == "process"
            and node.attributes.get("pid")
        )
    runtime.close()
    return artefacts


@pytest.mark.parametrize("family", sorted(SCENARIO_FAMILIES))
class TestBackendEquivalence:
    def test_reports_estimates_tasks_byte_identical(self, family):
        build = SCENARIO_FAMILIES[family]
        oracle = run_pipeline("serial", build)
        assert oracle["degradations"] == 0
        for backend in BACKENDS[1:]:
            candidate = run_pipeline(backend, build)
            assert candidate["degradations"] == 0, backend
            assert candidate["reports"] == oracle["reports"], backend
            assert candidate["estimate"] == oracle["estimate"], backend
            assert candidate["tasks"] == oracle["tasks"], backend

    def test_cache_keys_backend_independent(self, family):
        build = SCENARIO_FAMILIES[family]
        oracle = run_pipeline("serial", build)
        for backend in BACKENDS[1:]:
            candidate = run_pipeline(backend, build)
            assert candidate["cache_keys"] == oracle["cache_keys"], backend

    def test_process_backend_did_not_silently_fall_back(self, family):
        # A fallback would still be *correct* (serial semantics), but
        # then this harness would not be exercising the process path at
        # all; require the happy path to actually stay on it.
        build = SCENARIO_FAMILIES[family]
        artefacts = run_pipeline("process", build)
        assert artefacts["fallbacks"] == 0


class TestPrimitiveEquivalence:
    """profile_database / discover_* agree across backends on one db."""

    @pytest.fixture(scope="class")
    def scenario(self):
        return SCENARIO_FAMILIES["example"]()

    @pytest.mark.parametrize("backend", BACKENDS[1:])
    def test_primitives_match_serial(self, scenario, backend):
        serial = Runtime(backend="serial")
        candidate = Runtime(backend=backend, max_workers=4)
        for database in (*scenario.sources, scenario.target):
            assert candidate.profile_database(database) == (
                serial.profile_database(database)
            )
            assert candidate.discover_uccs(database) == (
                serial.discover_uccs(database)
            )
            assert candidate.discover_inds(database) == (
                serial.discover_inds(database)
            )
            assert candidate.discover_fds(database) == (
                serial.discover_fds(database)
            )
        assert candidate.cache.keys() == serial.cache.keys()
        assert candidate.metrics.counter("process_fallbacks") == 0
        candidate.close()
        serial.close()

    def test_one_worker_process_backend_runs_inline(self, scenario):
        # --workers 1 must not pay any IPC tax: every task runs in the
        # parent and the pool is never even created.
        runtime = Runtime(backend="process", max_workers=1)
        database = scenario.sources[0]
        runtime.profile_database(database)
        runtime.discover_uccs(database)
        assert runtime.executor._pool is None
        runtime.close()


@pytest.fixture
def env_fault_plan(monkeypatch):
    """Arm a fault plan via the environment so pool workers — which
    re-resolve ``$REPRO_FAULT_PLAN`` on startup — inherit it, and so
    the engine keeps the process path eligible."""
    from repro.resilience.faults import reset_fault_plan

    def arm(plan: dict) -> None:
        monkeypatch.setenv("REPRO_FAULT_PLAN", json.dumps(plan))
        reset_fault_plan()

    yield arm
    monkeypatch.undo()
    reset_fault_plan()


class TestTracedEquivalence:
    """Tracing must observe the computation, never participate in it."""

    def test_traced_process_run_matches_untraced_serial_oracle(self):
        build = SCENARIO_FAMILIES["example"]
        oracle = run_pipeline("serial", build)
        traced = run_pipeline("process", build, trace=True)
        assert traced["reports"] == oracle["reports"]
        assert traced["estimate"] == oracle["estimate"]
        assert traced["tasks"] == oracle["tasks"]
        assert traced["cache_keys"] == oracle["cache_keys"]
        assert traced["degradations"] == 0
        assert traced["fallbacks"] == 0
        # The traced run actually exercised cross-process propagation:
        # worker-side spans merged into one seamless, orphan-free tree.
        assert traced["worker_spans"] > 0
        assert len(traced["trace_ids"]) == 1
        assert traced["orphans"] == 0

    def test_traced_and_untraced_process_runs_agree(self):
        build = SCENARIO_FAMILIES["bibliographic"]
        untraced = run_pipeline("process", build)
        traced = run_pipeline("process", build, trace=True)
        assert traced["reports"] == untraced["reports"]
        assert traced["estimate"] == untraced["estimate"]
        assert traced["cache_keys"] == untraced["cache_keys"]


class TestCrashedWorkerTelemetry:
    def test_crashed_worker_never_corrupts_results_or_trace(
        self, env_fault_plan
    ):
        build = SCENARIO_FAMILIES["example"]
        oracle = run_pipeline("serial", build)
        # Each worker process crashes its first task at the
        # process.worker site — before its telemetry session even
        # opens, exactly like a worker dying mid-dispatch.
        env_fault_plan(
            {
                "name": "worker-crash",
                "points": [
                    {
                        "site": "process.worker",
                        "action": "raise",
                        "times": 1,
                    }
                ],
            }
        )
        traced = run_pipeline("process", build, trace=True)
        # The engine fell back (labelled with the injected reason) and
        # still produced the oracle's bytes with zero degradations.
        assert traced["fallbacks"] >= 1
        assert traced["fault_fallbacks"] >= 1
        assert traced["reports"] == oracle["reports"]
        assert traced["estimate"] == oracle["estimate"]
        assert traced["cache_keys"] == oracle["cache_keys"]
        assert traced["degradations"] == 0
        # A crashed worker ships no telemetry blob; whatever partial
        # work it did must never tear the parent's trace: one trace id,
        # no orphaned spans, nothing counted as dropped.
        assert len(traced["trace_ids"]) == 1
        assert traced["orphans"] == 0
        assert traced["telemetry_dropped"] == 0
