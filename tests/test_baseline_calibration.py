"""Unit tests for the counting baseline and the calibration metrics."""

import math

import pytest

from repro.core import (
    AttributeCountingBaseline,
    HARDEN_TASKS,
    HOURS_PER_ATTRIBUTE,
    MAPPING_SHARE,
    ResultQuality,
    optimal_scale,
    relative_rmse,
)
from repro.core.calibration import DomainResult, EstimateSummary, ComparisonRow, combined_rmse


class TestHardenTable1:
    def test_thirteen_subtasks(self):
        assert len(HARDEN_TASKS) == 13

    def test_total_hours(self):
        """"slightly more than 8 hours of work for each source attribute"."""
        assert HOURS_PER_ATTRIBUTE == pytest.approx(8.05)

    def test_requirements_and_mapping_is_biggest(self):
        biggest = max(HARDEN_TASKS, key=lambda item: item[1])
        assert biggest == ("Requirements and Mapping", 2.0)

    def test_mapping_share(self):
        assert 0.0 < MAPPING_SHARE < 1.0


class TestBaseline:
    def test_scales_with_attribute_count(self, example, small_example):
        baseline = AttributeCountingBaseline(minutes_per_attribute=10.0)
        estimate = baseline.estimate(example, ResultQuality.HIGH_QUALITY)
        assert estimate.total_minutes == 10.0 * example.total_source_attributes()

    def test_quality_blind(self, example):
        baseline = AttributeCountingBaseline(minutes_per_attribute=10.0)
        low = baseline.estimate(example, ResultQuality.LOW_EFFORT)
        high = baseline.estimate(example, ResultQuality.HIGH_QUALITY)
        assert low.total_minutes == high.total_minutes

    def test_breakdown_sums(self, example):
        baseline = AttributeCountingBaseline(minutes_per_attribute=10.0)
        estimate = baseline.estimate(example, ResultQuality.HIGH_QUALITY)
        assert estimate.mapping_minutes + estimate.cleaning_minutes == (
            pytest.approx(estimate.total_minutes)
        )

    def test_with_rate(self):
        baseline = AttributeCountingBaseline().with_rate(5.0)
        assert baseline.minutes_per_attribute == 5.0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            AttributeCountingBaseline(minutes_per_attribute=-1.0)

    def test_bad_share_rejected(self):
        with pytest.raises(ValueError):
            AttributeCountingBaseline(mapping_share=1.5)


class TestRelativeRmse:
    def test_perfect_estimates(self):
        assert relative_rmse([10, 20], [10, 20]) == 0.0

    def test_paper_formula(self):
        # one scenario, estimate off by half → rmse 0.5
        assert relative_rmse([100], [50]) == pytest.approx(0.5)

    def test_relative_not_absolute(self):
        # same relative error at different magnitudes → same rmse
        assert relative_rmse([10], [5]) == pytest.approx(
            relative_rmse([1000], [500])
        )

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            relative_rmse([1], [1, 2])

    def test_zero_measure_rejected(self):
        with pytest.raises(ValueError):
            relative_rmse([0.0], [1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            relative_rmse([], [])


class TestOptimalScale:
    def test_exact_recovery(self):
        measured = [10.0, 40.0, 25.0]
        raw = [5.0, 20.0, 12.5]
        assert optimal_scale(measured, raw) == pytest.approx(2.0)

    def test_minimises_rmse(self):
        measured = [30.0, 50.0, 80.0]
        raw = [10.0, 20.0, 50.0]
        best = optimal_scale(measured, raw)
        best_rmse = relative_rmse(measured, [r * best for r in raw])
        for delta in (-0.2, -0.05, 0.05, 0.2):
            worse = relative_rmse(
                measured, [r * (best + delta) for r in raw]
            )
            assert best_rmse <= worse + 1e-12

    def test_zero_estimates_fall_back(self):
        assert optimal_scale([10.0], [0.0]) == 1.0


class TestDomainResult:
    def _summary(self, estimator, total):
        return EstimateSummary(estimator, "s", "low eff.", total, {})

    def _row(self, measured, efes, counting):
        return ComparisonRow(
            "s",
            "low eff.",
            self._summary("Efes", efes),
            self._summary("Measured", measured),
            self._summary("Counting", counting),
        )

    def test_improvement_factor(self):
        result = DomainResult(
            "d", (self._row(100, 90, 50),), efes_rmse=0.1, counting_rmse=0.5
        )
        assert result.improvement_factor == pytest.approx(5.0)

    def test_infinite_improvement(self):
        result = DomainResult("d", (), efes_rmse=0.0, counting_rmse=0.5)
        assert math.isinf(result.improvement_factor)

    def test_combined_rmse_pools_rows(self):
        a = DomainResult(
            "a", (self._row(100, 100, 200),), efes_rmse=0.0, counting_rmse=1.0
        )
        b = DomainResult(
            "b", (self._row(100, 50, 100),), efes_rmse=0.5, counting_rmse=0.0
        )
        efes, counting = combined_rmse([a, b])
        assert efes == pytest.approx(math.sqrt(0.25 / 2))
        assert counting == pytest.approx(math.sqrt(1.0 / 2))
