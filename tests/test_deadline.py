"""Deadline propagation and cooperative cancellation.

Covers the :mod:`repro.runtime.deadline` primitives, the scheduler's
two-phase deadline enforcement (fire → grace → partial DONE or FAILED),
the cancellation races around the serialize/store phases, and the
client-side deadline budget (``X-Deadline-Ms``, no retry past the
deadline).
"""

from __future__ import annotations

import pickle
import threading
import time

import pytest

from repro.resilience.faults import FaultPlan, FaultPoint, injected_faults
from repro.runtime.deadline import (
    CancelScope,
    Deadline,
    DeadlineExceededError,
    OperationCancelled,
    WorkerReapedError,
    checkpoint,
    current_scope,
    remaining_scope,
    wire_deadline,
)
from repro.service import JobScheduler, JobState, ServiceClient, make_server
from repro.service.client import (
    DeadlineExceededError as ClientDeadlineExceededError,
)
from repro.service.client import SubmitEnvelope


class TestDeadline:
    def test_after_and_remaining(self):
        deadline = Deadline.after(5.0)
        assert 0.0 < deadline.remaining() <= 5.0
        assert not deadline.expired

    def test_expired_deadline(self):
        deadline = Deadline(time.monotonic() - 1.0)
        assert deadline.expired
        assert deadline.remaining() < 0

    def test_after_clamps_negative_budgets(self):
        # A spent budget arrives as "0 seconds left", never as a point
        # in the past that would make remaining() lie about magnitude.
        deadline = Deadline.after(-10.0)
        assert deadline.expired
        assert deadline.remaining() > -1.0


class TestCancelScope:
    def test_checkpoint_is_noop_without_scope(self):
        assert current_scope() is None
        checkpoint("anywhere")  # must not raise

    def test_cancel_event_raises_operation_cancelled(self):
        event = threading.Event()
        event.set()
        with CancelScope(cancel_event=event).activated():
            with pytest.raises(OperationCancelled) as excinfo:
                checkpoint("unit")
        assert excinfo.value.reason == "cancelled"
        assert excinfo.value.site == "unit"

    def test_expired_deadline_raises_deadline_exceeded(self):
        scope = CancelScope(deadline=Deadline(time.monotonic() - 0.1))
        with scope.activated():
            with pytest.raises(DeadlineExceededError) as excinfo:
                checkpoint("unit")
        assert excinfo.value.reason == "deadline"

    def test_deadline_wins_over_cancel_event(self):
        # The scheduler sets the cancel event when the deadline fires;
        # the settlement path must still classify this as a timeout.
        event = threading.Event()
        event.set()
        scope = CancelScope(
            deadline=Deadline(time.monotonic() - 0.1), cancel_event=event
        )
        assert scope.cancel_reason() == "deadline"

    def test_exception_hierarchy(self):
        assert issubclass(DeadlineExceededError, OperationCancelled)
        assert issubclass(WorkerReapedError, DeadlineExceededError)

    def test_exceptions_survive_pickling(self):
        # Deadline aborts cross the process-pool boundary.
        for cls in (
            OperationCancelled,
            DeadlineExceededError,
            WorkerReapedError,
        ):
            restored = pickle.loads(pickle.dumps(cls("boom")))
            assert isinstance(restored, cls)
            assert "boom" in str(restored)

    def test_scope_deactivates_on_exit(self):
        scope = CancelScope(deadline=Deadline.after(10.0))
        with scope.activated():
            assert current_scope() is scope
        assert current_scope() is None

    def test_checkpoint_rechecks_after_injected_delay(self):
        # The fault plan stalls the checkpoint past the deadline; the
        # overrun must be noticed at THIS checkpoint, not the next one.
        plan = FaultPlan(
            [
                FaultPoint(
                    site="deadline.checkpoint",
                    action="delay",
                    delay_seconds=0.25,
                )
            ]
        )
        with injected_faults(plan):
            with CancelScope(deadline=Deadline.after(0.05)).activated():
                with pytest.raises(DeadlineExceededError):
                    checkpoint("stalled")
        assert plan.trip_count("deadline.checkpoint") == 1

    def test_fault_site_fires_only_under_an_active_scope(self):
        plan = FaultPlan(
            [FaultPoint(site="deadline.checkpoint", action="delay")]
        )
        with injected_faults(plan):
            checkpoint("unscoped")
        assert plan.trip_count("deadline.checkpoint") == 0

    def test_wire_deadline_round_trip(self):
        assert wire_deadline() is None
        with CancelScope(deadline=Deadline.after(4.0)).activated():
            budget = wire_deadline()
        assert budget is not None and 0.0 < budget <= 4.0
        with remaining_scope(budget, label="worker") as scope:
            assert scope is current_scope()
            remaining = scope.remaining()
            assert remaining is not None and remaining <= budget

    def test_remaining_scope_none_is_unbounded(self):
        with remaining_scope(None) as scope:
            assert scope is None
            assert current_scope() is None


def _sleeper(seconds):
    """A non-cooperative payload: no checkpoints, just wall-clock."""

    def payload(job):
        time.sleep(seconds)
        return {"ok": True}

    return payload


class TestSchedulerDeadline:
    def test_partial_estimate_on_deadline(self, small_example):
        # Stall the first cooperative checkpoint past the job's budget:
        # the deadline fires mid-assessment, the stalled module aborts at
        # its checkpoint, the remaining stages tombstone, and the job
        # settles DONE with a marked partial inside the grace window.
        plan = FaultPlan(
            [
                FaultPoint(
                    site="deadline.checkpoint",
                    action="delay",
                    delay_seconds=0.6,
                    times=1,
                )
            ]
        )
        with injected_faults(plan), JobScheduler(
            workers=1, deadline_grace=5.0
        ) as sched:
            job = sched.submit(
                small_example, "estimate", "high", timeout=0.15
            )
            job = sched.wait(job.id, timeout=30)
            assert job.state is JobState.DONE
            assert job.result["deadline_exceeded"] is True
            assert job.result["degradations"], "unrun stages must tombstone"
            assert job.deadline_fired
            # Partials are budget-dependent: the content address must
            # keep answering with full-budget results only.
            assert sched.store.get(job.store_key) is None
            counters = sched.metrics.snapshot().counters
            assert counters["jobs_deadline_exceeded"] >= 1
            assert counters["jobs_deadline_partial"] >= 1
        assert plan.trip_count("deadline.checkpoint") >= 1

    def test_grace_expiry_settles_failed(self):
        # A payload that never reaches a checkpoint cannot hand back a
        # partial; once deadline + grace passes the reaper settles the
        # job FAILED without waiting for the runaway thread.
        with JobScheduler(workers=1, deadline_grace=0.1) as sched:
            job = sched.submit_callable(_sleeper(1.0), timeout=0.1)
            job = sched.wait(job.id, timeout=5)
            assert job.state is JobState.FAILED
            assert "timed out after 0.1s" in job.error
            counters = sched.metrics.snapshot().counters
            assert counters["jobs_timeout"] >= 1

    def test_deadline_fire_frees_the_slot_immediately(self):
        # Slot reclamation must not wait for the grace window: a sibling
        # job runs while the overrunning payload is still draining.
        with JobScheduler(workers=1, deadline_grace=5.0) as sched:
            slow = sched.submit_callable(
                _sleeper(0.7), name="slow", timeout=0.1
            )
            quick = sched.submit_callable(
                lambda job: {"quick": True}, name="quick"
            )
            quick = sched.wait(quick.id, timeout=2.0)
            assert quick.state is JobState.DONE
            assert sched.job(slow.id).state is JobState.RUNNING
            # The drained payload still settles: its (late) result is
            # kept as a marked partial.
            slow = sched.wait(slow.id, timeout=5.0)
            assert slow.state is JobState.DONE
            assert slow.result["deadline_exceeded"] is True

    def test_late_payload_without_result_counts_one_timeout(self):
        # The fired deadline settles the job once; the late payload
        # arrival must avert the double settle instead of clobbering it.
        with JobScheduler(workers=1, deadline_grace=0.05) as sched:
            job = sched.submit_callable(_sleeper(0.5), timeout=0.05)
            job = sched.wait(job.id, timeout=5)
            assert job.state is JobState.FAILED
            deadline = time.monotonic() + 2.0
            while time.monotonic() < deadline:
                counters = sched.metrics.snapshot().counters
                if counters.get("jobs_double_settle_averted", 0) >= 1:
                    break
                time.sleep(0.01)
            counters = sched.metrics.snapshot().counters
            assert counters["jobs_timeout"] == 1
            assert counters["jobs_double_settle_averted"] >= 1

    def test_cancel_during_serialize_phase(
        self, small_example, monkeypatch
    ):
        # Cancellation lands while the result document is being built:
        # the cancel settles first, the finished payload's settle is
        # averted, and no partial leaks out as DONE.
        import repro.service.scheduler as scheduler_module

        original = scheduler_module.estimate_to_dict
        holder = {}

        def cancelling(estimate):
            sched = holder["sched"]
            sched.cancel(holder["job_id"])
            return original(estimate)

        monkeypatch.setattr(
            scheduler_module, "estimate_to_dict", cancelling
        )
        with JobScheduler(workers=1) as sched:
            holder["sched"] = sched
            job = sched.submit(small_example, "estimate", "high")
            holder["job_id"] = job.id
            job = sched.wait(job.id, timeout=60)
            assert job.state is JobState.CANCELLED
            assert job.result is None
            counters = sched.metrics.snapshot().counters
            assert counters["jobs_cancelled"] >= 1
            assert counters["jobs_double_settle_averted"] >= 1

    def test_cancel_during_store_phase(self, small_example, monkeypatch):
        # Same race one phase later: the cancel re-enters the scheduler
        # lock from inside store.put; the DONE settle must lose cleanly.
        holder = {}

        with JobScheduler(workers=1) as sched:
            original_put = sched.store.put

            def cancelling_put(key, document):
                sched.cancel(holder["job_id"])
                return original_put(key, document)

            monkeypatch.setattr(sched.store, "put", cancelling_put)
            job = sched.submit(small_example, "assess")
            holder["job_id"] = job.id
            job = sched.wait(job.id, timeout=60)
            assert job.state is JobState.CANCELLED
            counters = sched.metrics.snapshot().counters
            assert counters["jobs_double_settle_averted"] >= 1

    def test_deadline_stats_shape(self):
        with JobScheduler(workers=1, deadline_grace=0.25) as sched:
            stats = sched.deadline_stats()
            assert stats["grace_seconds"] == 0.25
            assert stats["running_with_deadline"] == 0
            assert stats["in_grace"] == 0
            assert stats["exceeded_total"] == 0
            assert stats["partial_results_total"] == 0
            assert "deadlines" in sched.health_snapshot()
            assert "deadlines" in sched.stats()

    def test_negative_grace_is_rejected(self):
        with pytest.raises(ValueError):
            JobScheduler(workers=1, deadline_grace=-0.1)


class TestClientDeadline:
    def test_envelope_carries_deadline_header(self):
        envelope = SubmitEnvelope(scenario="s4-s4", deadline=2.5)
        assert envelope.headers()["X-Deadline-Ms"] == "2500"
        restored = SubmitEnvelope.from_dict(envelope.to_dict())
        assert restored.deadline == 2.5

    def test_no_deadline_no_header(self):
        assert "X-Deadline-Ms" not in SubmitEnvelope(
            scenario="s4-s4"
        ).headers()

    def test_spent_budget_raises_before_the_wire(self):
        # Nothing listens on this port; a pre-wire deadline check must
        # fail fast instead of burning retries against it.
        client = ServiceClient("http://127.0.0.1:9")
        started = time.monotonic()
        with pytest.raises(ClientDeadlineExceededError):
            client.submit("s4-s4", deadline=0.0)
        assert time.monotonic() - started < 1.0

    def test_client_deadline_error_is_a_timeout(self):
        assert issubclass(ClientDeadlineExceededError, TimeoutError)
        error = ClientDeadlineExceededError("late", deadline=1.5)
        assert error.status == 504
        assert error.deadline == 1.5


@pytest.fixture()
def service():
    scheduler = JobScheduler(workers=2, max_queue=8, deadline_grace=5.0)
    server = make_server(scheduler, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, scheduler
    finally:
        server.shutdown()
        server.server_close()
        scheduler.close(wait=True, timeout=5.0)
        thread.join(timeout=5.0)


class TestDeadlineOverHTTP:
    def test_header_becomes_the_job_timeout(self, service):
        server, scheduler = service
        client = ServiceClient(server.url)
        job = client.submit("s4-s4", kind="assess", deadline=30.0)
        assert scheduler.job(job["id"]).timeout == pytest.approx(30.0)
        client.result(job["id"], deadline=60)

    def test_explicit_timeout_beats_the_header(self, service):
        server, scheduler = service
        client = ServiceClient(server.url)
        job = client.submit(
            "s4-s4", kind="estimate", quality="low",
            timeout=45.0, deadline=30.0,
        )
        assert scheduler.job(job["id"]).timeout == pytest.approx(45.0)

    def test_malformed_header_is_400(self, service):
        server, _ = service
        import json
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            f"{server.url}/jobs",
            data=json.dumps({"scenario": "s4-s4"}).encode(),
            method="POST",
            headers={
                "Content-Type": "application/json",
                "X-Deadline-Ms": "soon",
            },
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_polling_stops_at_the_deadline(self, service):
        server, scheduler = service
        release, started = threading.Event(), threading.Event()

        def payload(job):
            started.set()
            release.wait(5.0)
            return {"ok": True}

        job = scheduler.submit_callable(payload)
        assert started.wait(5.0)
        client = ServiceClient(server.url)
        try:
            began = time.monotonic()
            with pytest.raises(ClientDeadlineExceededError) as excinfo:
                client.result(job.id, deadline=0.3)
            assert excinfo.value.deadline == 0.3
            assert time.monotonic() - began < 2.0
        finally:
            release.set()
