"""Unit + property tests for the cardinality algebra (Lemmas 1-4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csg.cardinality import (
    ANY,
    AT_LEAST_ONE,
    AT_MOST_ONE,
    EXACTLY_ONE,
    NONE,
    Cardinality,
    CardinalityError,
    Interval,
)


class TestConstruction:
    def test_of_single(self):
        assert str(Cardinality.of(1)) == "1"

    def test_of_range(self):
        assert str(Cardinality.of(0, 1)) == "0..1"

    def test_of_unbounded(self):
        assert str(Cardinality.of(1, None)) == "1..*"

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1", "1"),
            ("0..1", "0..1"),
            ("1..*", "1..*"),
            ("*", "0..*"),
            ("0, 2..4", "0, 2..4"),
        ],
    )
    def test_parse_round_trip(self, text, expected):
        assert str(Cardinality.parse(text)) == expected

    def test_parse_rejects_garbage(self):
        with pytest.raises((CardinalityError, ValueError)):
            Cardinality.parse("one..two")

    def test_negative_bound_rejected(self):
        with pytest.raises(CardinalityError):
            Interval(-1, 2)

    def test_empty_interval_rejected(self):
        with pytest.raises(CardinalityError):
            Interval(3, 2)

    def test_normalisation_merges_adjacent(self):
        merged = Cardinality([Interval(0, 1), Interval(2, 4)])
        assert str(merged) == "0..4"

    def test_normalisation_keeps_gaps(self):
        gapped = Cardinality([Interval(0, 0), Interval(2, 4)])
        assert str(gapped) == "0, 2..4"

    def test_immutable(self):
        with pytest.raises(AttributeError):
            EXACTLY_ONE.intervals = ()


class TestMembershipAndSubset:
    def test_contains(self):
        assert AT_MOST_ONE.contains(0) and AT_MOST_ONE.contains(1)
        assert not AT_MOST_ONE.contains(2)

    def test_unbounded_contains_large(self):
        assert AT_LEAST_ONE.contains(10**9)

    def test_subset_chain(self):
        assert EXACTLY_ONE.is_subset(AT_MOST_ONE)
        assert EXACTLY_ONE.is_subset(AT_LEAST_ONE)
        assert AT_MOST_ONE.is_subset(ANY)
        assert not ANY.is_subset(AT_MOST_ONE)

    def test_proper_subset_is_strict(self):
        assert EXACTLY_ONE.is_proper_subset(ANY)
        assert not EXACTLY_ONE.is_proper_subset(EXACTLY_ONE)

    def test_intersection(self):
        assert AT_MOST_ONE.intersection(AT_LEAST_ONE) == EXACTLY_ONE

    def test_empty_intersection(self):
        zero = Cardinality.of(0)
        assert zero.intersection(AT_LEAST_ONE).is_empty


class TestLemma1Composition:
    """κ(ρ1 ∘ ρ2) = (sgn a1 · a2)..(b1 · b2)."""

    def test_paper_example(self):
        # 1 ∘ 1 ∘ 0..1 ∘ 1..* ∘ 1 = 0..* (the records→artist path)
        result = (
            EXACTLY_ONE.compose(EXACTLY_ONE)
            .compose(AT_MOST_ONE)
            .compose(AT_LEAST_ONE)
            .compose(EXACTLY_ONE)
        )
        assert result == ANY

    def test_identity(self):
        assert AT_LEAST_ONE.compose(EXACTLY_ONE) == AT_LEAST_ONE

    def test_zero_lower_bound_propagates(self):
        assert AT_MOST_ONE.compose(AT_LEAST_ONE) == ANY

    def test_bounded_product(self):
        assert Cardinality.of(2, 3).compose(Cardinality.of(2, 4)) == (
            Cardinality.of(2, 12)
        )

    def test_empty_absorbs(self):
        assert NONE.compose(EXACTLY_ONE).is_empty
        assert EXACTLY_ONE.compose(NONE).is_empty


class TestLemma2Union:
    def test_disjoint_domains_is_set_union(self):
        result = Cardinality.of(0).union_disjoint_domains(Cardinality.of(2))
        assert str(result) == "0, 2"

    def test_sum(self):
        result = EXACTLY_ONE.union_sum(AT_MOST_ONE)
        assert result == Cardinality.of(1, 2)

    def test_sum_unbounded(self):
        result = AT_LEAST_ONE.union_sum(EXACTLY_ONE)
        assert result == Cardinality.of(2, None)

    def test_overlapping(self):
        # 1 +̂ 1 = {c : 1 <= c <= 2}
        result = EXACTLY_ONE.union_overlapping(EXACTLY_ONE)
        assert result == Cardinality.of(1, 2)

    def test_overlapping_lower_bound_is_max(self):
        result = Cardinality.of(3).union_overlapping(Cardinality.of(1))
        assert result == Cardinality.of(3, 4)


class TestLemma3Join:
    def test_join_caps_at_smaller_max(self):
        result = Cardinality.of(1, 3).join(Cardinality.of(1, 5))
        assert result == Cardinality.of(1, 3)

    def test_join_unbounded_both(self):
        assert AT_LEAST_ONE.join(AT_LEAST_ONE) == AT_LEAST_ONE

    def test_join_zero_max_is_empty(self):
        zero = Cardinality.of(0)
        assert EXACTLY_ONE.join(zero).is_empty

    def test_join_inverse(self):
        result = Cardinality.of(1, 2).join_inverse(Cardinality.of(2, 3))
        assert result == Cardinality.of(2, 6)

    def test_join_inverse_unbounded(self):
        result = AT_LEAST_ONE.join_inverse(Cardinality.of(1, 2))
        assert result == Cardinality.of(1, None)


class TestLemma4Collateral:
    def test_collateral(self):
        result = Cardinality.of(1, 2).collateral(Cardinality.of(1, 3))
        assert result == Cardinality.of(0, 6)

    def test_collateral_unbounded(self):
        assert EXACTLY_ONE.collateral(AT_LEAST_ONE) == ANY


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------

intervals = st.builds(
    lambda lo, extra, unbounded: Interval(lo, None if unbounded else lo + extra),
    st.integers(min_value=0, max_value=6),
    st.integers(min_value=0, max_value=6),
    st.booleans(),
)
cardinalities = st.lists(intervals, min_size=1, max_size=3).map(Cardinality)
members = st.integers(min_value=0, max_value=40)


@settings(max_examples=200)
@given(cardinalities, cardinalities, members, members)
def test_composition_soundness(kappa1, kappa2, a, b):
    """If a ∈ κ1 and b ∈ κ2 then a·b counts are admissible in κ1 ∘ κ2.

    Soundness of Lemma 1: chasing a elements, each reaching b elements,
    can produce anywhere between (a>0 ? min κ2 : 0) and a·b distinct
    end elements; the composed cardinality must contain that whole range's
    extremes.
    """
    if not (kappa1.contains(a) and kappa2.contains(b)):
        return
    composed = kappa1.compose(kappa2)
    assert composed.contains(a * b)


@settings(max_examples=200)
@given(cardinalities, cardinalities)
def test_composition_preserves_emptiness(kappa1, kappa2):
    composed = kappa1.compose(kappa2)
    assert not composed.is_empty  # non-empty inputs compose to non-empty


@settings(max_examples=200)
@given(cardinalities, cardinalities, members, members)
def test_union_sum_soundness(kappa1, kappa2, a, b):
    if not (kappa1.contains(a) and kappa2.contains(b)):
        return
    assert kappa1.union_sum(kappa2).contains(a + b)


@settings(max_examples=200)
@given(cardinalities, cardinalities, members, members)
def test_union_overlapping_covers_hull(kappa1, kappa2, a, b):
    """κ1 +̂ κ2 must admit every c with max(a,b) <= c <= a+b."""
    if not (kappa1.contains(a) and kappa2.contains(b)):
        return
    result = kappa1.union_overlapping(kappa2)
    assert result.contains(max(a, b))
    assert result.contains(a + b)


@settings(max_examples=200)
@given(cardinalities, cardinalities)
def test_union_disjoint_is_superset_of_both(kappa1, kappa2):
    union = kappa1.union_disjoint_domains(kappa2)
    assert kappa1.is_subset(union)
    assert kappa2.is_subset(union)


@settings(max_examples=200)
@given(cardinalities, cardinalities)
def test_intersection_is_subset_of_both(kappa1, kappa2):
    intersected = kappa1.intersection(kappa2)
    assert intersected.is_subset(kappa1)
    assert intersected.is_subset(kappa2)


@settings(max_examples=200)
@given(cardinalities, cardinalities, members)
def test_intersection_membership(kappa1, kappa2, value):
    expected = kappa1.contains(value) and kappa2.contains(value)
    assert kappa1.intersection(kappa2).contains(value) == expected


@settings(max_examples=200)
@given(cardinalities)
def test_subset_is_reflexive(kappa):
    assert kappa.is_subset(kappa)
    assert not kappa.is_proper_subset(kappa)


@settings(max_examples=200)
@given(cardinalities, cardinalities, cardinalities)
def test_subset_is_transitive(kappa1, kappa2, kappa3):
    if kappa1.is_subset(kappa2) and kappa2.is_subset(kappa3):
        assert kappa1.is_subset(kappa3)


@settings(max_examples=200)
@given(cardinalities)
def test_normalisation_is_canonical(kappa):
    """Equal sets have equal representations (hash/eq safety)."""
    rebuilt = Cardinality(kappa.intervals)
    assert rebuilt == kappa
    assert hash(rebuilt) == hash(kappa)


@settings(max_examples=200)
@given(cardinalities, cardinalities)
def test_collateral_contains_zero(kappa1, kappa2):
    assert kappa1.collateral(kappa2).contains(0)
