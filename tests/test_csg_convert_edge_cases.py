"""Edge-case tests for relational → CSG conversion."""

import pytest

from repro.csg import (
    AT_MOST_ONE,
    EXACTLY_ONE,
    RelationshipKind,
    database_to_csg,
    schema_to_csg,
)
from repro.relational import (
    Database,
    DataType,
    Schema,
    foreign_key,
    primary_key,
    relation,
)


class TestCompositeForeignKeys:
    @pytest.fixture
    def schema(self):
        built = Schema(
            "s",
            relations=[
                relation(
                    "child",
                    [("pk", DataType.INTEGER), ("a", DataType.INTEGER), ("b", DataType.INTEGER)],
                ),
                relation(
                    "parent",
                    [("a", DataType.INTEGER), ("b", DataType.INTEGER)],
                ),
            ],
            constraints=[
                primary_key("parent", ("a", "b")),
                foreign_key("child", ("a", "b"), "parent", ("a", "b")),
            ],
        )
        return built

    def test_one_equality_edge_per_attribute_pair(self, schema):
        graph = schema_to_csg(schema)
        equalities = [
            rel
            for rel in graph.relationships
            if rel.kind is RelationshipKind.EQUALITY
            and rel.start.relation == "child"
        ]
        assert {rel.start.name for rel in equalities} == {
            "child.a",
            "child.b",
        }

    def test_equality_links_per_component(self, schema):
        db = Database(schema)
        db.insert("parent", (1, 10))
        db.insert("parent", (2, 20))
        db.insert("child", (1, 1, 10))
        graph, instance = database_to_csg(db)
        rel = graph.relationship("child.a", "parent.a")
        assert instance.links(rel) == frozenset({(1, 1)})


class TestSelfReferencingForeignKey:
    def test_conversion_succeeds(self):
        schema = Schema(
            "s",
            relations=[
                relation(
                    "node",
                    [("id", DataType.INTEGER), ("parent", DataType.INTEGER)],
                )
            ],
            constraints=[
                primary_key("node", "id"),
                foreign_key("node", "parent", "node", "id"),
            ],
        )
        db = Database(schema)
        db.insert_all("node", [(1, 1), (2, 1), (3, 2)])
        graph, instance = database_to_csg(db)
        rel = graph.relationship("node.parent", "node.id")
        assert rel.kind is RelationshipKind.EQUALITY
        # parent values {1, 2} both exist among ids
        assert instance.links(rel) == frozenset({(1, 1), (2, 2)})


class TestValueSemantics:
    def test_duplicate_rows_share_value_elements(self):
        schema = Schema("s", relations=[relation("r", ["v"])])
        db = Database(schema)
        db.insert_all("r", [("x",), ("x",)])
        graph, instance = database_to_csg(db)
        assert len(instance.elements("r")) == 2  # tuple identities differ
        assert len(instance.elements("r.v")) == 1  # values are a set

    def test_mixed_numeric_values_stay_typed(self):
        schema = Schema(
            "s", relations=[relation("r", [("v", DataType.FLOAT)])]
        )
        db = Database(schema)
        db.insert_all("r", [(1.5,), (2.0,)])
        _, instance = database_to_csg(db)
        assert instance.elements("r.v") == {1.5, 2.0}

    def test_boolean_attributes(self):
        schema = Schema(
            "s", relations=[relation("r", [("flag", DataType.BOOLEAN)])]
        )
        db = Database(schema)
        db.insert_all("r", [(True,), (False,), (True,)])
        _, instance = database_to_csg(db)
        assert instance.elements("r.flag") == {True, False}

    def test_empty_relation_converts(self):
        schema = Schema("s", relations=[relation("r", ["v"])])
        graph, instance = database_to_csg(Database(schema))
        assert instance.elements("r") == frozenset()
        assert instance.elements("r.v") == frozenset()


class TestPrescribedCardinalityMatrix:
    """All four (not-null × unique) combinations convert correctly."""

    @pytest.mark.parametrize(
        "not_null,unique_attr,forward,backward",
        [
            (False, False, "0..1", "1..*"),
            (True, False, "1", "1..*"),
            (False, True, "0..1", "1"),
            (True, True, "1", "1"),
        ],
    )
    def test_combination(self, not_null, unique_attr, forward, backward):
        from repro.relational import NotNull, Unique

        constraints = []
        if not_null:
            constraints.append(NotNull("r", "v"))
        if unique_attr:
            constraints.append(Unique("r", ("v",)))
        schema = Schema(
            "s", relations=[relation("r", ["v"])], constraints=constraints
        )
        graph = schema_to_csg(schema)
        assert str(graph.relationship("r", "r.v").cardinality) == forward
        assert str(graph.relationship("r.v", "r").cardinality) == backward
