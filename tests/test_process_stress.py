"""Seeded stress tests for the process backend and its shared spool.

Three claims under concurrency and injected failure:

* N concurrent assessments through one process runtime + one shared
  spool produce exactly the serial oracle's results even while an armed
  ``process.worker`` fault is crashing workers — the engine falls back
  to serial in-process execution (counted on ``process_fallbacks``)
  and never returns a wrong or partial answer,
* spool reads are never torn: concurrent re-writers and readers of the
  same content-addressed entry see only complete, checksum-valid files
  (atomic tmp + fsync + rename),
* a module that genuinely fails inside a worker degrades exactly like
  the serial path: a DegradedResult tombstone for that module, intact
  reports for the rest.
"""

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import Efes, ResultQuality, default_modules
from repro.core.serialize import dumps, reports_to_dict
from repro.resilience import DegradedResult
from repro.resilience.faults import reset_fault_plan
from repro.runtime import Runtime, ScenarioSpool, SpoolCorruptionError
from repro.runtime.spool import clear_rehydration_memo
from repro.scenarios import example_scenario
from repro.scenarios.example import ExampleParameters


def small_scenario(seed: int):
    return example_scenario(
        ExampleParameters(
            albums=60,
            multi_artist_albums=15,
            detached_artists=5,
            target_records=15,
            seed=seed,
        )
    )


@pytest.fixture
def env_fault_plan(monkeypatch):
    """Arm a fault plan via the environment (so worker processes,
    which re-resolve ``$REPRO_FAULT_PLAN`` on startup, inherit it)."""

    def arm(plan: dict) -> None:
        monkeypatch.setenv("REPRO_FAULT_PLAN", json.dumps(plan))
        reset_fault_plan()

    yield arm
    monkeypatch.undo()
    reset_fault_plan()


def serial_oracle(seeds):
    runtime = Runtime(backend="serial")
    efes = Efes(default_modules(), runtime=runtime)
    return {
        seed: dumps(
            reports_to_dict(
                efes.run(
                    small_scenario(seed), ResultQuality.HIGH_QUALITY
                ).reports
            )
        )
        for seed in seeds
    }


class TestConcurrentAssessments:
    SEEDS = (1, 2, 3, 4)

    def test_crash_injected_workers_never_corrupt_results(
        self, tmp_path, env_fault_plan
    ):
        oracle = serial_oracle(self.SEEDS)
        # Each worker process crashes its first task: FaultError at the
        # process.worker site, once per worker ("times" budgets are
        # process-local), exactly like a worker dying mid-dispatch.
        env_fault_plan(
            {
                "name": "worker-crash",
                "points": [
                    {"site": "process.worker", "action": "raise", "times": 1}
                ],
            }
        )
        spool = ScenarioSpool(tmp_path)
        runtime = Runtime(backend="process", max_workers=2, spool=spool)
        efes = Efes(default_modules(), runtime=runtime)

        def assess(seed):
            outcome = efes.run(
                small_scenario(seed), ResultQuality.HIGH_QUALITY
            )
            return seed, outcome

        with ThreadPoolExecutor(max_workers=len(self.SEEDS)) as pool:
            outcomes = list(pool.map(assess, self.SEEDS))
        for seed, outcome in outcomes:
            assert outcome.degradations == []
            assert dumps(reports_to_dict(outcome.reports)) == oracle[seed]
        # The injection must actually have bitten at least once —
        # otherwise this test exercised nothing.
        assert runtime.metrics.counter("process_fallbacks") >= 1
        runtime.close()

    def test_shared_spool_entries_are_complete(self, tmp_path):
        spool = ScenarioSpool(tmp_path)
        runtime = Runtime(backend="process", max_workers=2, spool=spool)
        efes = Efes(default_modules(), runtime=runtime)
        with ThreadPoolExecutor(max_workers=3) as pool:
            list(
                pool.map(
                    lambda seed: efes.run(
                        small_scenario(seed), ResultQuality.HIGH_QUALITY
                    ),
                    self.SEEDS[:3],
                )
            )
        runtime.close()
        # Every spooled file must parse and pass its checksum.
        entries = sorted(tmp_path.glob("*.json"))
        assert entries, "assessments should have spooled scenarios"
        for path in entries:
            kind, fingerprint = path.stem.split("-", 1)
            clear_rehydration_memo()
            if kind == "scn":
                spool.get_scenario(fingerprint)
            else:
                spool.get_database(fingerprint)


class TestTornReads:
    def test_concurrent_rewrites_never_tear_reads(self, tmp_path):
        spool = ScenarioSpool(tmp_path)
        scenario = small_scenario(7)
        fingerprint = spool.put_scenario(scenario)
        stop = threading.Event()
        corruption: list[Exception] = []

        def rewriter():
            while not stop.is_set():
                spool.put_scenario(scenario, force=True)

        def reader():
            while not stop.is_set():
                clear_rehydration_memo()
                try:
                    spool.get_scenario(fingerprint)
                except SpoolCorruptionError as exc:
                    corruption.append(exc)
                    stop.set()
                    return

        threads = [
            threading.Thread(target=rewriter),
            threading.Thread(target=rewriter),
            threading.Thread(target=reader),
            threading.Thread(target=reader),
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.6)
        stop.set()
        for thread in threads:
            thread.join()
        assert corruption == []

    def test_corrupted_entry_detected_not_trusted(self, tmp_path):
        spool = ScenarioSpool(tmp_path)
        fingerprint = spool.put_scenario(small_scenario(5))
        path = spool._path("scn", fingerprint)
        text = path.read_text(encoding="utf-8")
        path.write_text(text[:-40] + "garbage", encoding="utf-8")
        clear_rehydration_memo()
        with pytest.raises(SpoolCorruptionError):
            spool.get_scenario(fingerprint)


class TestDegradedFallback:
    def test_module_failure_in_worker_degrades_like_serial(
        self, env_fault_plan
    ):
        env_fault_plan(
            {
                "name": "mapping-down",
                "points": [
                    {
                        "site": "detector",
                        "action": "raise",
                        "match": {"name": "mapping"},
                    }
                ],
            }
        )
        runtime = Runtime(backend="process", max_workers=2)
        outcome = Efes(default_modules(), runtime=runtime).run(
            small_scenario(11), ResultQuality.HIGH_QUALITY
        )
        runtime.close()
        assert [d.module for d in outcome.degradations] == ["mapping"]
        tombstone = outcome.degradations[0]
        assert isinstance(tombstone, DegradedResult)
        assert tombstone.phase == "assess"
        # Exactly like the serial path: the failed module is split out of
        # the report dict; the surviving modules' reports are intact.
        assert set(outcome.reports) == {"structure", "values"}
