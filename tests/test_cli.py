"""Tests for the ``efes`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_estimate_defaults(self):
        args = build_parser().parse_args(["estimate", "example"])
        assert args.quality == "high"
        assert args.seed == 1

    def test_seed_flag(self):
        args = build_parser().parse_args(["--seed", "7", "list"])
        assert args.seed == 7


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "example" in out and "s1-s2" in out and "d1-d2" in out

    def test_assess_example(self, capsys):
        assert main(["assess", "example"]) == 0
        out = capsys.readouterr().out
        assert "Mapping complexity report" in out
        assert "503" in out and "102" in out  # Table 3 counts

    def test_estimate_example_high(self, capsys):
        assert main(["estimate", "example", "--quality", "high"]) == 0
        out = capsys.readouterr().out
        assert "Merge values" in out
        assert "Total" in out

    def test_estimate_example_low(self, capsys):
        assert main(["estimate", "example", "--quality", "low"]) == 0
        out = capsys.readouterr().out
        assert "Keep any value" in out

    def test_measure_small_scenario(self, capsys):
        assert main(["measure", "s4-s4", "--quality", "low"]) == 0
        out = capsys.readouterr().out
        assert "write mapping query" in out

    def test_curve_example(self, capsys):
        assert main(["curve", "s4-s4"]) == 0
        out = capsys.readouterr().out
        assert "Cost-benefit curve" in out
        assert "100.0%" in out

    def test_save_then_assess_directory(self, tmp_path, capsys):
        directory = tmp_path / "exported"
        assert main(["save", "s4-s4", str(directory)]) == 0
        assert (directory / "scenario.json").exists()
        assert (directory / "s4" / "schema.sql").exists()
        capsys.readouterr()
        assert main(["assess", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "Mapping complexity report" in out

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            main(["assess", "not-a-scenario"])
