"""Tests for the ``efes`` command-line interface."""

import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_estimate_defaults(self):
        args = build_parser().parse_args(["estimate", "example"])
        assert args.quality == "high"
        assert args.seed == 1

    def test_seed_flag(self):
        args = build_parser().parse_args(["--seed", "7", "list"])
        assert args.seed == 7

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8765
        assert args.spool is None
        assert args.job_workers == 2

    def test_submit_defaults(self):
        args = build_parser().parse_args(["submit", "s1-s2"])
        assert args.kind == "estimate"
        assert args.quality == "high"
        assert args.url is None


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "example" in out and "s1-s2" in out and "d1-d2" in out

    def test_assess_example(self, capsys):
        assert main(["assess", "example"]) == 0
        out = capsys.readouterr().out
        assert "Mapping complexity report" in out
        assert "503" in out and "102" in out  # Table 3 counts

    def test_estimate_example_high(self, capsys):
        assert main(["estimate", "example", "--quality", "high"]) == 0
        out = capsys.readouterr().out
        assert "Merge values" in out
        assert "Total" in out

    def test_estimate_example_low(self, capsys):
        assert main(["estimate", "example", "--quality", "low"]) == 0
        out = capsys.readouterr().out
        assert "Keep any value" in out

    def test_measure_small_scenario(self, capsys):
        assert main(["measure", "s4-s4", "--quality", "low"]) == 0
        out = capsys.readouterr().out
        assert "write mapping query" in out

    def test_curve_example(self, capsys):
        assert main(["curve", "s4-s4"]) == 0
        out = capsys.readouterr().out
        assert "Cost-benefit curve" in out
        assert "100.0%" in out

    def test_save_then_assess_directory(self, tmp_path, capsys):
        directory = tmp_path / "exported"
        assert main(["save", "s4-s4", str(directory)]) == 0
        assert (directory / "scenario.json").exists()
        assert (directory / "s4" / "schema.sql").exists()
        capsys.readouterr()
        assert main(["assess", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "Mapping complexity report" in out

    def test_unknown_scenario_exits_with_one_line_error(self, capsys):
        for command in ("assess", "estimate"):
            assert main([command, "not-a-scenario"]) == 2
            captured = capsys.readouterr()
            assert captured.out == ""
            assert captured.err.count("\n") == 1
            assert "unknown scenario 'not-a-scenario'" in captured.err
            assert "Traceback" not in captured.err


class TestServiceCommands:
    def test_serve_and_submit_round_trip(self, capsys, monkeypatch):
        from repro.service import JobScheduler, make_server

        scheduler = JobScheduler(workers=1, max_queue=8)
        server = make_server(scheduler, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            monkeypatch.setenv("REPRO_SERVICE_URL", server.url)
            assert main(["submit", "s4-s4", "--quality", "high"]) == 0
            out = capsys.readouterr().out
            assert "estimate for s4-s4" in out
            assert "min across" in out

            assert main(["submit", "s4-s4", "--kind", "assess"]) == 0
            assert "assessed s4-s4" in capsys.readouterr().out
        finally:
            server.shutdown()
            server.server_close()
            scheduler.close(wait=True, timeout=5.0)
            thread.join(timeout=5.0)

    def test_submit_unknown_scenario_fails_cleanly(self, capsys, monkeypatch):
        from repro.service import JobScheduler, make_server

        scheduler = JobScheduler(workers=1)
        server = make_server(scheduler, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            monkeypatch.setenv("REPRO_SERVICE_URL", server.url)
            assert main(["submit", "not-a-scenario"]) == 1
            err = capsys.readouterr().err
            assert "unknown scenario" in err
        finally:
            server.shutdown()
            server.server_close()
            scheduler.close(wait=True, timeout=5.0)
            thread.join(timeout=5.0)


class TestMainModule:
    def test_python_dash_m_repro(self):
        repo_root = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo_root / "src")
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
            env=env,
            cwd=repo_root,
            timeout=120,
        )
        assert completed.returncode == 0
        assert "example" in completed.stdout
