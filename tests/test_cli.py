"""Tests for the ``efes`` command-line interface."""

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_estimate_defaults(self):
        args = build_parser().parse_args(["estimate", "example"])
        assert args.quality == "high"
        assert args.seed == 1

    def test_seed_flag(self):
        args = build_parser().parse_args(["--seed", "7", "list"])
        assert args.seed == 7

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8765
        assert args.spool is None
        assert args.job_workers == 2

    def test_submit_defaults(self):
        args = build_parser().parse_args(["submit", "s1-s2"])
        assert args.kind == "estimate"
        assert args.quality == "high"
        assert args.url is None


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "example" in out and "s1-s2" in out and "d1-d2" in out

    def test_assess_example(self, capsys):
        assert main(["assess", "example"]) == 0
        out = capsys.readouterr().out
        assert "Mapping complexity report" in out
        assert "503" in out and "102" in out  # Table 3 counts

    def test_estimate_example_high(self, capsys):
        assert main(["estimate", "example", "--quality", "high"]) == 0
        out = capsys.readouterr().out
        assert "Merge values" in out
        assert "Total" in out

    def test_estimate_example_low(self, capsys):
        assert main(["estimate", "example", "--quality", "low"]) == 0
        out = capsys.readouterr().out
        assert "Keep any value" in out

    def test_measure_small_scenario(self, capsys):
        assert main(["measure", "s4-s4", "--quality", "low"]) == 0
        out = capsys.readouterr().out
        assert "write mapping query" in out

    def test_curve_example(self, capsys):
        assert main(["curve", "s4-s4"]) == 0
        out = capsys.readouterr().out
        assert "Cost-benefit curve" in out
        assert "100.0%" in out

    def test_save_then_assess_directory(self, tmp_path, capsys):
        directory = tmp_path / "exported"
        assert main(["save", "s4-s4", str(directory)]) == 0
        assert (directory / "scenario.json").exists()
        assert (directory / "s4" / "schema.sql").exists()
        capsys.readouterr()
        assert main(["assess", str(directory)]) == 0
        out = capsys.readouterr().out
        assert "Mapping complexity report" in out

    def test_unknown_scenario_exits_with_one_line_error(self, capsys):
        for command in ("assess", "estimate"):
            assert main([command, "not-a-scenario"]) == 2
            captured = capsys.readouterr()
            assert captured.out == ""
            assert captured.err.count("\n") == 1
            assert "unknown scenario 'not-a-scenario'" in captured.err
            assert "Traceback" not in captured.err


class TestServiceCommands:
    def test_serve_and_submit_round_trip(self, capsys, monkeypatch):
        from repro.service import JobScheduler, make_server

        scheduler = JobScheduler(workers=1, max_queue=8)
        server = make_server(scheduler, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            monkeypatch.setenv("REPRO_SERVICE_URL", server.url)
            assert main(["submit", "s4-s4", "--quality", "high"]) == 0
            out = capsys.readouterr().out
            assert "estimate for s4-s4" in out
            assert "min across" in out

            assert main(["submit", "s4-s4", "--kind", "assess"]) == 0
            assert "assessed s4-s4" in capsys.readouterr().out
        finally:
            server.shutdown()
            server.server_close()
            scheduler.close(wait=True, timeout=5.0)
            thread.join(timeout=5.0)

    def test_submit_unknown_scenario_fails_cleanly(self, capsys, monkeypatch):
        from repro.service import JobScheduler, make_server

        scheduler = JobScheduler(workers=1)
        server = make_server(scheduler, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            monkeypatch.setenv("REPRO_SERVICE_URL", server.url)
            assert main(["submit", "not-a-scenario"]) == 1
            err = capsys.readouterr().err
            assert "unknown scenario" in err
        finally:
            server.shutdown()
            server.server_close()
            scheduler.close(wait=True, timeout=5.0)
            thread.join(timeout=5.0)


class TestMainModule:
    def test_python_dash_m_repro(self):
        repo_root = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo_root / "src")
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True,
            text=True,
            env=env,
            cwd=repo_root,
            timeout=120,
        )
        assert completed.returncode == 0
        assert "example" in completed.stdout


class TestFleetCommands:
    def test_fleet_serve_parser_defaults(self):
        args = build_parser().parse_args(["fleet", "serve"])
        assert args.fleet_command == "serve"
        assert args.fleet_workers == 2
        assert args.fleet_dir == "fleet"
        assert args.heartbeat_interval == 0.5
        # The global runtime --workers must survive the subparser.
        assert args.workers is None

    def test_fleet_status_against_live_fleet(self, tmp_path, capsys):
        import time

        from repro.fleet import FleetSupervisor, make_fleet_server

        from .sim.fleet_harness import SimWorkerBackend

        backend = SimWorkerBackend(tmp_path / "fleet")
        supervisor = FleetSupervisor(
            tmp_path / "fleet",
            workers=2,
            backend=backend,
            heartbeat_interval=0.04,
            liveness_deadline=0.5,
            startup_grace=5.0,
            restart_dead=False,
        )
        supervisor.start()
        deadline = time.monotonic() + 10.0
        while supervisor.status()["live"] < 2:
            assert time.monotonic() < deadline, supervisor.status()
            time.sleep(0.01)
        server = make_fleet_server(supervisor)
        thread = threading.Thread(
            target=lambda: server.serve_forever(poll_interval=0.02),
            daemon=True,
        )
        thread.start()
        try:
            assert main(["fleet", "status", "--url", server.url]) == 0
            out = capsys.readouterr().out
            assert "2/2 live" in out
            assert "w0" in out and "w1" in out
            assert "health: healthy" in out

            assert (
                main(["fleet", "status", "--url", server.url, "--json"]) == 0
            )
            doc = json.loads(capsys.readouterr().out)
            assert doc["size"] == 2 and doc["live"] == 2

            # Degraded fleet: same table, exit 3 (the slo convention).
            backend.current["w0"].kill9()
            supervisor.failover("w0", reason="test")
            assert main(["fleet", "status", "--url", server.url]) == 3
            out = capsys.readouterr().out
            assert "1/2 live" in out
        finally:
            server.shutdown()
            server.server_close()
            supervisor.close()
            backend.close_all()
            thread.join(timeout=5.0)

    def test_fleet_status_unreachable_fails_cleanly(self, capsys):
        assert (
            main(["fleet", "status", "--url", "http://127.0.0.1:1"]) == 1
        )
        err = capsys.readouterr().err
        assert "cannot fetch fleet status" in err
        assert "Traceback" not in err

    def test_recover_fleet_combined_unsettled_table(self, tmp_path, capsys):
        from repro.durability import JobJournal
        from repro.service import ReportStore

        fleet_dir = tmp_path / "fleet"
        store = ReportStore(directory=fleet_dir / "spool")
        store.put("warm-key", {"kind": "estimate"})

        # w0: a live journal with one settled and one dispatched job.
        w0 = JobJournal(fleet_dir / "workers" / "w0" / "journal")
        w0.append(
            {
                "type": "submitted",
                "job_id": "j-done",
                "scenario": "example",
                "kind": "estimate",
                "idempotency_key": "k-done",
            }
        )
        w0.append({"type": "settled", "job_id": "j-done", "state": "done"})
        w0.append(
            {
                "type": "submitted",
                "job_id": "j-open",
                "scenario": "s1-s2",
                "kind": "estimate",
                "idempotency_key": "k-open",
                "store_key": "warm-key",
            }
        )
        w0.append({"type": "dispatched", "job_id": "j-open"})
        w0.close()
        # w1: a fenced journal (the crashed epoch) with a queued job.
        w1 = JobJournal(fleet_dir / "workers" / "w1" / "journal-fenced-1")
        w1.append(
            {
                "type": "submitted",
                "job_id": "j-lost",
                "scenario": "d1-d2",
                "kind": "assess",
                "idempotency_key": "k-lost",
                "store_key": "cold-key",
            }
        )
        w1.close()

        assert main(["recover", "--fleet", str(fleet_dir)]) == 0
        out = capsys.readouterr().out
        assert "j-open" in out and "j-lost" in out
        assert "j-done" not in out  # settled jobs are not listed
        assert "journal-fenced-1" in out
        assert "dispatched" in out and "queued" in out
        # Store evidence: j-open's result is already spooled, j-lost's
        # is not.
        open_line = next(line for line in out.splitlines() if "j-open" in line)
        lost_line = next(line for line in out.splitlines() if "j-lost" in line)
        assert "yes" in open_line
        assert "no" in lost_line
        # Read-only: no checkpoint segments were written anywhere.
        assert (fleet_dir / "workers" / "w1" / "journal-fenced-1").is_dir()

    def test_recover_fleet_rejects_non_fleet_dir(self, tmp_path, capsys):
        assert main(["recover", "--fleet", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "not a fleet directory" in err
