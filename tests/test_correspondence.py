"""Unit tests for correspondences and correspondence sets."""

import pytest

from repro.matching import (
    Correspondence,
    CorrespondenceSet,
    attribute_correspondence,
    relation_correspondence,
)
from repro.scenarios.example import correspondences, source_schema, target_schema


class TestCorrespondence:
    def test_attribute_level(self):
        c = attribute_correspondence("albums.name", "records.title")
        assert c.is_attribute_level
        assert c.source == "albums.name" and c.target == "records.title"

    def test_relation_level(self):
        c = relation_correspondence("albums", "records")
        assert not c.is_attribute_level
        assert c.source == "albums"

    def test_mixed_levels_rejected(self):
        with pytest.raises(ValueError):
            Correspondence("albums", "name", "records", None)

    def test_confidence_range_enforced(self):
        with pytest.raises(ValueError):
            Correspondence("a", None, "b", None, confidence=1.5)


class TestCorrespondenceSet:
    @pytest.fixture
    def cset(self):
        return correspondences()

    def test_length(self, cset):
        assert len(cset) == 7

    def test_attribute_correspondences(self, cset):
        assert len(cset.attribute_correspondences()) == 5

    def test_explicit_relation_correspondences(self, cset):
        explicit = cset.explicit_relation_correspondences()
        assert {(c.source_relation, c.target_relation) for c in explicit} == {
            ("albums", "records"),
            ("songs", "tracks"),
        }

    def test_implied_relation_correspondences(self, cset):
        implied = cset.relation_correspondences()
        pairs = {(c.source_relation, c.target_relation) for c in implied}
        assert ("artist_credits", "records") in pairs

    def test_identity_sources_prefer_explicit(self, cset):
        assert cset.identity_sources_of_relation("records") == ("albums",)

    def test_identity_sources_fallback_to_implied(self):
        cset = CorrespondenceSet(
            [attribute_correspondence("articles.authors", "persons.name")]
        )
        assert cset.identity_sources_of_relation("persons") == ("articles",)

    def test_sources_of_attribute(self, cset):
        sources = cset.sources_of_attribute("records", "artist")
        assert [c.source for c in sources] == ["artist_credits.artist"]

    def test_target_relations_stable_order(self, cset):
        assert cset.target_relations() == ("records", "tracks")

    def test_mapped_target_attributes(self, cset):
        assert cset.mapped_target_attributes("tracks") == (
            "title",
            "duration",
            "record",
        )

    def test_validate_against_passes(self, cset):
        cset.validate_against(source_schema(), target_schema())

    def test_validate_against_rejects_unknown(self):
        cset = CorrespondenceSet(
            [attribute_correspondence("albums.nope", "records.title")]
        )
        with pytest.raises(Exception):
            cset.validate_against(source_schema(), target_schema())
