"""Integration tests for the Section 6 experiment harness (Figures 6/7)."""

import pytest

from repro.core import ResultQuality
from repro.experiments import (
    Cell,
    calibrate_counting_rate,
    calibrate_efes_scale,
    cross_validated_results,
    evaluate_domain,
    run_experiments,
)
from repro.scenarios import bibliographic_scenarios


@pytest.fixture(scope="module")
def report():
    return run_experiments(seed=1)


class TestEvaluateDomain:
    @pytest.fixture(scope="class")
    def cells(self):
        return evaluate_domain(bibliographic_scenarios(seed=1))

    def test_eight_cells(self, cells):
        assert len(cells) == 8  # 4 scenarios × 2 qualities

    def test_cells_carry_positive_measurements(self, cells):
        assert all(cell.measured_total > 0 for cell in cells)

    def test_breakdowns_sum(self, cells):
        for cell in cells:
            assert sum(cell.measured_breakdown.values()) == pytest.approx(
                cell.measured_total
            )
            assert sum(cell.efes_breakdown.values()) == pytest.approx(
                cell.efes_total
            )


class TestCrossValidation:
    def test_calibrations_are_positive(self):
        cells = evaluate_domain(bibliographic_scenarios(seed=1))
        assert calibrate_efes_scale(cells) > 0
        assert calibrate_counting_rate(cells) > 0

    def test_training_excludes_own_domain(self):
        cells_a = evaluate_domain(bibliographic_scenarios(seed=1))
        cells_b = evaluate_domain(bibliographic_scenarios(seed=2))
        results = cross_validated_results({"a": cells_a, "b": cells_b})
        assert {result.domain for result in results} == {"a", "b"}

    def test_single_domain_self_calibrates(self):
        cells = evaluate_domain(bibliographic_scenarios(seed=1))
        results = cross_validated_results({"only": cells})
        assert len(results) == 1


class TestHeadlineResults:
    """The paper's headline claims, as shapes (see DESIGN.md §3)."""

    def test_efes_beats_counting_in_both_domains(self, report):
        assert report.bibliographic.efes_rmse < report.bibliographic.counting_rmse
        assert report.music.efes_rmse < report.music.counting_rmse

    def test_overall_improvement_at_least_2x(self, report):
        """§6.2: overall rmse 0.84 vs 1.70 — a factor of two; we require the
        same magnitude of advantage."""
        assert report.overall_improvement >= 2.0

    def test_bibliographic_improvement_is_large(self, report):
        """Figure 6: "an improvement in the effort estimation by a factor
        of four" — we require at least 2.5× in this domain."""
        assert report.bibliographic.improvement_factor >= 2.5

    def test_identity_scenarios_show_countings_blind_spot(self, report):
        """§6.2: in s4-s4 "there are no heterogeneities to deal with.
        While we can detect this, the counting approach estimates
        considerable cleaning effort."""
        for domain, name in (
            (report.bibliographic, "s4-s4"),
            (report.music, "d1-d2"),
        ):
            rows = [row for row in domain.rows if row.scenario_name == name]
            assert rows
            for row in rows:
                efes_error = abs(
                    row.efes.total_minutes - row.measured.total_minutes
                )
                counting_error = abs(
                    row.counting.total_minutes - row.measured.total_minutes
                )
                assert efes_error < counting_error

    def test_efes_tracks_quality_levels(self, report):
        """EFES distinguishes low-effort from high-quality cells; the
        counting baseline cannot."""
        for domain in (report.bibliographic, report.music):
            by_cell = {
                (row.scenario_name, row.quality_label): row
                for row in domain.rows
            }
            for name in {row.scenario_name for row in domain.rows}:
                counting_low = by_cell[(name, "low eff.")].counting.total_minutes
                counting_high = by_cell[(name, "high qual.")].counting.total_minutes
                assert counting_low == pytest.approx(counting_high)

    def test_rows_cover_all_cells(self, report):
        assert len(report.bibliographic.rows) == 8
        assert len(report.music.rows) == 8

    def test_efes_breakdown_matches_measured_shape(self, report):
        """Where measured effort is mapping-dominated, so is the estimate."""
        for row in report.music.rows:
            if row.scenario_name == "d1-d2":
                assert row.efes.breakdown["Mapping"] == pytest.approx(
                    row.efes.total_minutes
                )


class TestDeterminism:
    def test_same_seed_same_numbers(self, report):
        again = run_experiments(seed=1)
        assert again.overall_efes_rmse == report.overall_efes_rmse
        assert again.overall_counting_rmse == report.overall_counting_rmse

    def test_headline_shape_is_seed_robust(self):
        """The EFES-beats-counting conclusion must not hinge on the
        default seed (guards against accidental cherry-picking)."""
        for seed in (2, 5):
            other = run_experiments(seed=seed)
            assert other.overall_efes_rmse < other.overall_counting_rmse
            assert other.overall_improvement >= 1.5, seed
