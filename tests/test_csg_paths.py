"""Unit tests for CSG path search and conciseness-based matching."""

import pytest

from repro.csg import (
    ANY,
    AT_LEAST_ONE,
    AT_MOST_ONE,
    EXACTLY_ONE,
    MatchedPath,
    find_paths,
    infer_path_cardinality,
    match_endpoints,
    most_concise,
    schema_to_csg,
)
from repro.scenarios.example import source_schema


@pytest.fixture(scope="module")
def graph():
    return schema_to_csg(source_schema())


class TestFindPaths:
    def test_direct_path(self, graph):
        paths = find_paths(graph, graph.node("albums"), graph.node("albums.name"))
        assert len(paths) == 1 and len(paths[0]) == 1

    def test_multi_hop_paths(self, graph):
        paths = find_paths(
            graph, graph.node("albums"), graph.node("artist_credits.artist")
        )
        # Via artist_lists directly, and the long way around via songs.
        assert len(paths) == 2
        assert min(len(path) for path in paths) == 5

    def test_paths_are_node_simple(self, graph):
        paths = find_paths(
            graph, graph.node("albums"), graph.node("artist_credits.artist")
        )
        for path in paths:
            nodes = [path[0].start.name] + [rel.end.name for rel in path]
            assert len(nodes) == len(set(nodes))

    def test_max_length_prunes(self, graph):
        paths = find_paths(
            graph,
            graph.node("albums"),
            graph.node("artist_credits.artist"),
            max_length=4,
        )
        assert paths == []

    def test_same_node_gives_no_paths(self, graph):
        node = graph.node("albums")
        assert find_paths(graph, node, node) == []

    def test_shortest_first_order(self, graph):
        paths = find_paths(
            graph, graph.node("albums"), graph.node("artist_credits.artist")
        )
        lengths = [len(path) for path in paths]
        assert lengths == sorted(lengths)


class TestInferPathCardinality:
    def test_paper_path(self, graph):
        paths = find_paths(
            graph, graph.node("albums"), graph.node("artist_credits.artist")
        )
        shortest = min(paths, key=len)
        assert infer_path_cardinality(shortest) == ANY

    def test_single_edge(self, graph):
        paths = find_paths(graph, graph.node("albums"), graph.node("albums.name"))
        assert infer_path_cardinality(paths[0]) == EXACTLY_ONE

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            infer_path_cardinality(())


class TestMostConcise:
    def _candidate(self, graph, cardinality, length):
        base = find_paths(
            graph, graph.node("albums"), graph.node("albums.name")
        )[0]
        # fabricate a candidate of the requested nominal length by reusing
        # the same relationship object (only length and κ matter here).
        return MatchedPath(tuple(base) * length, cardinality)

    def test_proper_subset_wins(self, graph):
        tight = self._candidate(graph, EXACTLY_ONE, 3)
        loose = self._candidate(graph, ANY, 1)
        assert most_concise([loose, tight]) is tight

    def test_tie_broken_by_length(self, graph):
        short = self._candidate(graph, ANY, 1)
        long = self._candidate(graph, ANY, 2)
        assert most_concise([long, short]) is short

    def test_incomparable_falls_back_to_length(self, graph):
        a = self._candidate(graph, AT_MOST_ONE, 2)
        b = self._candidate(graph, AT_LEAST_ONE, 1)
        assert most_concise([a, b]) is b

    def test_conciseness_can_be_disabled(self, graph):
        tight = self._candidate(graph, EXACTLY_ONE, 3)
        loose = self._candidate(graph, ANY, 1)
        assert most_concise([loose, tight], use_conciseness=False) is loose

    def test_empty_candidates(self):
        assert most_concise([]) is None


class TestMatchEndpoints:
    def test_example_match(self, graph):
        matched = match_endpoints(graph, ["albums"], ["artist_credits.artist"])
        assert matched is not None
        assert matched.cardinality == ANY
        assert matched.length == 5

    def test_describe_names_the_route(self, graph):
        matched = match_endpoints(graph, ["albums"], ["artist_credits.artist"])
        assert matched.describe().startswith("albums ->")
        assert matched.describe().endswith("artist_credits.artist")

    def test_unknown_nodes_skipped(self, graph):
        assert match_endpoints(graph, ["nope"], ["albums.name"]) is None

    def test_multiple_start_candidates(self, graph):
        matched = match_endpoints(
            graph, ["albums", "songs"], ["artist_credits.artist"]
        )
        assert matched is not None
