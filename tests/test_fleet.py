"""Unit and integration tests for the supervised worker fleet.

Covers the pieces the chaos matrix (:mod:`tests.sim.test_fleet_chaos`)
exercises only in aggregate: the consistent-hash ring's movement
guarantees, the control-plane wire protocol's damage containment, the
supervisor's failover/fencing/shedding decisions, and the fleet front
end's HTTP contract — all against in-process sim workers, no
subprocesses.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.fleet import (
    FleetShedError,
    FleetSupervisor,
    HashRing,
    NoWorkersError,
    make_fleet_server,
)
from repro.fleet.protocol import (
    MessageReader,
    heartbeat_message,
    hello_message,
    send_message,
)
from repro.service import ServiceClient, SubmitEnvelope
from repro.service.client import BackpressureError, ServiceUnavailableError

from .sim.fleet_harness import SimWorkerBackend

HEARTBEAT = 0.04


@pytest.fixture()
def fleet(tmp_path):
    """A live 2-worker sim fleet + front end + client."""
    backend = SimWorkerBackend(tmp_path / "fleet")
    supervisor = FleetSupervisor(
        tmp_path / "fleet",
        workers=2,
        backend=backend,
        heartbeat_interval=HEARTBEAT,
        liveness_deadline=0.5,
        startup_grace=5.0,
        restart_dead=True,
    )
    supervisor.start()
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        if supervisor.status()["live"] == 2:
            break
        time.sleep(0.01)
    else:
        raise AssertionError(f"fleet never came up: {supervisor.status()}")
    server = make_fleet_server(supervisor)
    threading.Thread(
        target=lambda: server.serve_forever(poll_interval=0.02), daemon=True
    ).start()
    client = ServiceClient(server.url, timeout=30.0)
    yield supervisor, backend, server, client
    server.shutdown()
    server.server_close()
    supervisor.close()
    backend.close_all()


# -- hash ring -------------------------------------------------------------


def test_ring_assignment_is_deterministic():
    a = HashRing(["w0", "w1", "w2"])
    b = HashRing(["w2", "w0", "w1"])  # insertion order must not matter
    for index in range(200):
        key = f"key-{index}"
        assert a.assign(key) == b.assign(key)


def test_ring_spreads_keys_roughly_evenly():
    ring = HashRing(["w0", "w1", "w2"])
    counts = {"w0": 0, "w1": 0, "w2": 0}
    for index in range(3000):
        counts[ring.assign(f"key-{index}")] += 1
    for worker, count in counts.items():
        assert 600 < count < 1700, (worker, counts)


def test_ring_removal_moves_only_the_dead_workers_keys():
    ring = HashRing(["w0", "w1", "w2"])
    before = {f"key-{i}": ring.assign(f"key-{i}") for i in range(500)}
    ring.remove("w1")
    for key, owner in before.items():
        after = ring.assign(key)
        if owner == "w1":
            assert after in ("w0", "w2")
        else:
            assert after == owner, key


def test_ring_exclude_walks_to_successor():
    ring = HashRing(["w0", "w1"])
    for index in range(50):
        key = f"key-{index}"
        owner = ring.assign(key)
        other = ring.assign(key, exclude={owner})
        assert other is not None
        assert other != owner


def test_ring_empty_and_all_excluded():
    assert HashRing().assign("anything") is None
    ring = HashRing(["w0"])
    assert ring.assign("key", exclude={"w0"}) is None


# -- wire protocol ---------------------------------------------------------


def _pipe():
    left, right = socket.socketpair()
    return left, right


def test_reader_frames_messages_across_chunks():
    left, right = _pipe()
    try:
        message = heartbeat_message("w0", 1, 7, status={"queue_depth": 3})
        line = (json.dumps(message) + "\n").encode()
        # Dribble the frame in two pieces; the reader must reassemble.
        left.sendall(line[:10])
        reader = MessageReader(right)
        right.settimeout(5.0)
        left.sendall(line[10:])
        decoded = reader.read()
        assert decoded["type"] == "heartbeat"
        assert decoded["seq"] == 7
        assert decoded["status"] == {"queue_depth": 3}
    finally:
        left.close()
        right.close()


def test_reader_drops_malformed_lines_and_resyncs():
    left, right = _pipe()
    try:
        left.sendall(b"this is not json\n")
        left.sendall(b'{"type": "martian"}\n')  # unknown type
        send_message(left, hello_message("w1", 2, 123, 8080))
        reader = MessageReader(right)
        right.settimeout(5.0)
        decoded = reader.read()
        assert decoded["type"] == "hello"
        assert decoded["worker_id"] == "w1"
        assert reader.malformed == 2
    finally:
        left.close()
        right.close()


def test_reader_returns_none_on_eof():
    left, right = _pipe()
    left.close()
    try:
        assert MessageReader(right).read() is None
    finally:
        right.close()


# -- submit envelopes (satellite: resubmission carries the envelope) -------


def test_envelope_body_always_carries_priority():
    bare = SubmitEnvelope(scenario="example")
    assert bare.body()["priority"] == 0
    eager = SubmitEnvelope(scenario="example", priority=7)
    assert eager.body()["priority"] == 7


def test_envelope_round_trips_through_dict():
    envelope = SubmitEnvelope(
        scenario="s1-s2",
        kind="estimate",
        quality="low",
        priority=3,
        timeout=12.5,
        seed=9,
        correlation_id="corr-1",
        idempotency_key="key-1",
    )
    assert SubmitEnvelope.from_dict(envelope.to_dict()) == envelope


def test_client_resubmit_replays_the_original_envelope():
    """A resubmit after 503 must carry the original priority, not the
    call-site defaults (the regression this satellite fixes)."""
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    captured: list[tuple[dict, str]] = []

    class Capture(BaseHTTPRequestHandler):
        def log_message(self, *args):
            pass

        def do_POST(self):
            length = int(self.headers.get("Content-Length") or 0)
            body = json.loads(self.rfile.read(length))
            captured.append((body, self.headers.get("Idempotency-Key")))
            payload = json.dumps(
                {"job": {"id": "j-1", "state": "queued"}}
            ).encode()
            self.send_response(202)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

    server = ThreadingHTTPServer(("127.0.0.1", 0), Capture)
    threading.Thread(
        target=lambda: server.serve_forever(poll_interval=0.02), daemon=True
    ).start()
    try:
        client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
        client.submit(
            "example", quality="high", priority=5, idempotency_key="k-prio"
        )
        client.resubmit("k-prio")
        assert len(captured) == 2
        assert captured[0][0] == captured[1][0], "resubmit body diverged"
        assert captured[1][0]["priority"] == 5
        assert captured[0][1] == captured[1][1] == "k-prio"
        with pytest.raises(KeyError):
            client.resubmit("never-seen")
    finally:
        server.shutdown()
        server.server_close()


# -- supervisor + frontend -------------------------------------------------


def test_fleet_runs_jobs_and_reports_health(fleet):
    supervisor, _backend, _server, client = fleet
    job = client.submit("example", quality="high", idempotency_key="basic-1")
    result = client.result(job["id"], deadline=30.0)
    assert result["kind"] == "estimate"
    assert result["scenario"] == "example"

    healthz = client.healthz()
    assert healthz["status"] == "ok"
    assert healthz["fleet"]["size"] == 2
    assert healthz["fleet"]["live"] == 2
    states = {worker["state"] for worker in healthz["workers"]}
    assert states == {"live"}

    status = client._request("GET", "/fleet/status")[1]
    assert status["jobs"]["routed"] >= 1
    assert status["control_port"] == supervisor.control_port


def test_duplicate_idempotency_key_returns_original_route(fleet):
    _supervisor, _backend, _server, client = fleet
    first = client.submit("s1-s2", quality="low", idempotency_key="dup-1")
    second = client.submit("s1-s2", quality="low", idempotency_key="dup-1")
    assert first["id"] == second["id"]


def test_warm_store_serves_across_workers(fleet):
    supervisor, _backend, _server, client = fleet
    first = client.submit("s1-s3", quality="low", idempotency_key="warm-a")
    client.result(first["id"], deadline=30.0)
    # Same content, different key: the supervisor must answer from the
    # shared spool without routing to any worker.
    second = client.submit("s1-s3", quality="low", idempotency_key="warm-b")
    route = supervisor.route_for_key("warm-b")
    assert route is not None
    assert route.settled is not None and route.settled.get("from_store")
    result = client.result(second["id"], deadline=10.0)
    assert result["scenario"] == "s1-s3"


def test_failover_respawns_at_the_next_epoch(fleet):
    supervisor, backend, _server, client = fleet
    job = client.submit("m1-d2", quality="low", idempotency_key="fo-1")
    client.result(job["id"], deadline=30.0)
    summary = supervisor.failover("w0", reason="test")
    assert summary["worker_id"] == "w0"
    assert "skipped" not in summary

    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        status = supervisor.status()
        w0 = next(w for w in status["workers"] if w["worker_id"] == "w0")
        if w0["state"] == "live" and w0["epoch"] == 2:
            break
        time.sleep(0.02)
    else:
        raise AssertionError(f"w0 never respawned: {supervisor.status()}")
    assert supervisor.failovers_total == 1


def test_failover_redispatches_unsettled_jobs_exactly_once(tmp_path):
    backend = SimWorkerBackend(tmp_path / "fleet")
    supervisor = FleetSupervisor(
        tmp_path / "fleet",
        workers=2,
        backend=backend,
        heartbeat_interval=HEARTBEAT,
        liveness_deadline=0.5,
        startup_grace=5.0,
        restart_dead=False,  # keep the survivor set stable for asserts
    )
    supervisor.start()
    deadline = time.monotonic() + 10.0
    while supervisor.status()["live"] < 2:
        assert time.monotonic() < deadline
        time.sleep(0.01)
    server = make_fleet_server(supervisor)
    threading.Thread(
        target=lambda: server.serve_forever(poll_interval=0.02), daemon=True
    ).start()
    client = ServiceClient(server.url, timeout=30.0)
    try:
        acked = {}
        for index in range(6):
            key = f"redis-{index}"
            job = client.submit(
                "example", quality="high", priority=3, idempotency_key=key
            )
            acked[key] = job["id"]
        # Kill whichever worker owns at least one route, before results
        # are polled — some of its jobs are likely still unsettled.
        owners = {
            route.worker_id
            for route in supervisor.routes()
            if route.worker_id is not None
        }
        victim = sorted(owners)[0]
        backend.current[victim].kill9()
        supervisor.failover(victim, reason="test")
        # With restart_dead=False the victim stays dead, so a repeat
        # failover of the same epoch must be a recognised no-op.
        again = supervisor.failover(victim, reason="test")
        assert again.get("skipped") is True
        for key, job_id in acked.items():
            result = client.result(job_id, deadline=30.0)
            assert result["scenario"] == "example", key
        # No route may have settled more than once: every route is
        # either supervisor-settled or terminal on exactly one worker.
        for route in supervisor.routes():
            if route.settled is not None:
                assert route.worker_id is None
    finally:
        server.shutdown()
        server.server_close()
        supervisor.close()
        backend.close_all()


def test_degraded_fleet_sheds_low_priority_with_retry_after(tmp_path):
    backend = SimWorkerBackend(tmp_path / "fleet")
    supervisor = FleetSupervisor(
        tmp_path / "fleet",
        workers=2,
        backend=backend,
        heartbeat_interval=HEARTBEAT,
        liveness_deadline=0.5,
        startup_grace=5.0,
        restart_dead=False,
    )
    supervisor.start()
    deadline = time.monotonic() + 10.0
    while supervisor.status()["live"] < 2:
        assert time.monotonic() < deadline
        time.sleep(0.01)
    server = make_fleet_server(supervisor)
    threading.Thread(
        target=lambda: server.serve_forever(poll_interval=0.02), daemon=True
    ).start()
    client = ServiceClient(server.url, timeout=30.0)
    try:
        backend.current["w0"].kill9()
        supervisor.failover("w0", reason="test")

        # Degraded by one worker: priority 0 is shed with an explicit
        # retry hint; priority >= missing rides through to the survivor.
        with pytest.raises(BackpressureError) as excinfo:
            client.submit("s1-s2", quality="low", idempotency_key="shed-0")
        assert excinfo.value.retry_after > 0

        job = client.submit(
            "s1-s2",
            quality="low",
            priority=1,
            idempotency_key="shed-1",
        )
        result = client.result(job["id"], deadline=30.0)
        assert result["scenario"] == "s1-s2"

        healthz = client.healthz()
        assert healthz["status"] == "degraded"
        assert healthz["health"]["state"] == "fleet-degraded"
        assert healthz["health"]["fleet_degraded"] is True

        # Kill the survivor too: nothing can accept work at any
        # priority — 503 without a body retry_after (not backpressure).
        # A no-retry client, or the default policy would sleep out the
        # Retry-After hint three times before surfacing.
        backend.current["w1"].kill9()
        supervisor.failover("w1", reason="test")
        from repro.resilience import RetryPolicy

        impatient = ServiceClient(
            server.url,
            timeout=30.0,
            retry_policy=RetryPolicy(max_attempts=1),
        )
        # "d1-d2" was never computed, so the warm shared store cannot
        # answer and dispatch must hit the (empty) live set.
        with pytest.raises(ServiceUnavailableError):
            impatient.submit(
                "d1-d2", quality="low", priority=9, idempotency_key="shed-2"
            )
    finally:
        server.shutdown()
        server.server_close()
        supervisor.close()
        backend.close_all()


def test_stale_epoch_hello_is_rejected(fleet):
    supervisor, _backend, _server, _client = fleet
    # A zombie from a fenced epoch dials home: the supervisor must
    # close the connection (the order to die), not re-admit it.
    zombie = socket.create_connection(
        ("127.0.0.1", supervisor.control_port), timeout=5.0
    )
    try:
        send_message(zombie, hello_message("w0", 0, 999, 1))  # epoch 0 < 1
        zombie.settimeout(5.0)
        assert zombie.recv(1) == b"", "stale-epoch zombie was not closed"
    finally:
        zombie.close()


def test_unknown_scenario_and_unknown_job(fleet):
    _supervisor, _backend, _server, client = fleet
    from repro.service.client import ServiceError

    with pytest.raises(ServiceError) as excinfo:
        client.submit("no-such-scenario", idempotency_key="nope")
    assert excinfo.value.status == 404
    with pytest.raises(ServiceError) as status_excinfo:
        client.status("never-issued")
    assert status_excinfo.value.status == 404
    # /jobs/<id>/result for an unknown id is also 404.
    with pytest.raises(ServiceError) as result_excinfo:
        client.result("never-issued", wait=False)
    assert result_excinfo.value.status == 404


def test_merged_metrics_labels_workers(fleet):
    supervisor, _backend, _server, client = fleet
    job = client.submit("d1-d2", quality="low", idempotency_key="metrics-1")
    client.result(job["id"], deadline=30.0)
    # Inject a telemetry blob shaped like a worker heartbeat's.
    from repro.runtime import RuntimeMetrics

    worker_metrics = RuntimeMetrics()
    worker_metrics.increment("jobs_submitted", 3)
    with supervisor._lock:
        record = supervisor._records["w0"]
        record.telemetry = {
            "pid": 4242,
            "metrics": worker_metrics.snapshot().to_dict(),
        }
        supervisor._records["w1"].telemetry = {"pid": 1, "metrics": "torn"}
    merged = supervisor.merged_metrics()
    snapshot = merged.snapshot()
    assert snapshot.gauge("fleet_worker_jobs_submitted", worker="w0") == 3.0
    assert snapshot.counter("worker_telemetry_dropped") == 1
    # The merged view is also what /metrics serves.
    doc = client.metrics()
    assert "fleet" in doc
    text = client.metrics_text()
    assert "fleet_size" in text
    assert "fleet_live" in text


def test_supervisor_rejects_nonpositive_worker_count(tmp_path):
    with pytest.raises(ValueError):
        FleetSupervisor(tmp_path, workers=0)


def test_no_workers_error_is_503_shape():
    error = NoWorkersError()
    assert error.retry_after > 0
    shed = FleetShedError(priority=0, missing=2, retry_after=7.5)
    assert shed.priority == 0
    assert shed.missing == 2
    assert "priority-0" in str(shed)


# -- failover budget accounting --------------------------------------------


class _Ticker:
    """A hand-advanced supervisor clock for deterministic budget math."""

    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now


class _CapturingWorkerClient:
    """Stands in for a ring survivor's HTTP client at re-dispatch."""

    def __init__(self) -> None:
        self.envelopes = []

    def submit_envelope(self, envelope):
        self.envelopes.append(envelope)
        return {"id": f"remote-{len(self.envelopes)}"}


@pytest.fixture()
def budget_supervisor(tmp_path):
    """An unstarted supervisor with an injectable clock (no workers)."""
    ticker = _Ticker()
    supervisor = FleetSupervisor(
        tmp_path / "fleet",
        workers=1,
        backend=SimWorkerBackend(tmp_path / "fleet"),
        clock=ticker,
    )
    yield supervisor, ticker


def _budget_route(timeout, admitted_at, job_id="j1"):
    from repro.fleet.supervisor import JobRoute

    return JobRoute(
        job_id=job_id,
        worker_id="w0",
        remote_id=job_id,
        envelope=SubmitEnvelope(
            scenario="example", timeout=timeout, idempotency_key=job_id
        ),
        store_key=f"key-{job_id}",
        admitted_at=admitted_at,
    )


def test_remaining_budget_subtracts_time_on_the_dead_worker(
    budget_supervisor,
):
    supervisor, ticker = budget_supervisor
    route = _budget_route(timeout=10.0, admitted_at=ticker.now)
    ticker.now += 8.0
    assert supervisor._remaining_budget(route) == pytest.approx(2.0)


def test_unbounded_route_has_no_budget(budget_supervisor):
    supervisor, ticker = budget_supervisor
    route = _budget_route(timeout=None, admitted_at=ticker.now)
    ticker.now += 1000.0
    assert supervisor._remaining_budget(route) is None


def test_redispatch_ships_the_remaining_budget(
    budget_supervisor, monkeypatch
):
    # A job that burned 4s of a 10s budget on a dead worker gets 6s on
    # the ring successor — and the route keeps the pristine envelope so
    # a second failover subtracts from the same admission anchor.
    supervisor, ticker = budget_supervisor
    worker_client = _CapturingWorkerClient()
    monkeypatch.setattr(
        supervisor, "_assign", lambda store_key, exclude: "w1"
    )
    monkeypatch.setattr(supervisor, "_client", lambda worker_id: worker_client)
    route = _budget_route(timeout=10.0, admitted_at=ticker.now)
    ticker.now += 4.0
    assert supervisor._redispatch(route, exclude={"w0"}) is True
    assert worker_client.envelopes[0].timeout == pytest.approx(6.0)
    assert route.envelope.timeout == pytest.approx(10.0)
    assert route.worker_id == "w1"
    assert route.redispatches == 1


def test_exhausted_budget_fails_the_route_instead_of_redispatching(
    budget_supervisor, monkeypatch
):
    supervisor, ticker = budget_supervisor
    worker_client = _CapturingWorkerClient()
    monkeypatch.setattr(
        supervisor, "_assign", lambda store_key, exclude: "w1"
    )
    monkeypatch.setattr(supervisor, "_client", lambda worker_id: worker_client)
    route = _budget_route(timeout=10.0, admitted_at=ticker.now)
    ticker.now += 11.0
    assert supervisor._redispatch(route, exclude={"w0"}) is False
    assert worker_client.envelopes == []
    assert route.settled is not None
    assert route.settled["state"] == "failed"
    assert "budget exhausted across failover" in route.settled["error"]
    counters = supervisor.metrics.snapshot().counters
    assert counters["fleet_deadline_exhausted"] == 1


def test_drain_parked_skips_exhausted_routes_and_continues(
    budget_supervisor, monkeypatch
):
    # Budget can run out *while parked*; the drain must fail that route
    # and still re-dispatch the next parked job that has time left.
    supervisor, ticker = budget_supervisor
    worker_client = _CapturingWorkerClient()
    monkeypatch.setattr(
        supervisor, "_assign", lambda store_key, exclude: "w1"
    )
    monkeypatch.setattr(supervisor, "_client", lambda worker_id: worker_client)
    monkeypatch.setattr(supervisor, "_live_ids", lambda: {"w1"})
    spent = _budget_route(timeout=5.0, admitted_at=ticker.now, job_id="spent")
    fresh = _budget_route(
        timeout=60.0, admitted_at=ticker.now, job_id="fresh"
    )
    for route in (spent, fresh):
        route.worker_id = None
        route.parked = True
        supervisor._routes[route.job_id] = route
        supervisor._parked.append(route.job_id)
    ticker.now += 10.0
    supervisor._drain_parked()
    assert spent.settled is not None
    assert "budget exhausted across failover" in spent.settled["error"]
    assert fresh.settled is None
    assert fresh.worker_id == "w1"
    assert [env.idempotency_key for env in worker_client.envelopes] == [
        "fresh"
    ]
