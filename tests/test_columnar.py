"""Property tests for the typed-array column codec and the columnar
instance layout.

Two contracts underpin the process backend's bit-equivalence claim:

* the codec is **lossless** — any column of post-cast values (None /
  bool / int / float / str, any mix, any width, any unicode) round-trips
  exactly through encode → decode, including via the base64 JSON form
  the spool writes, and
* the row view and the column view of an instance are the **same data**
  — every profiling statistic computed from one equals the statistic
  computed from the other.
"""

import json
import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.profiling import compute_column_profile
from repro.relational import Database, DataType, Schema, relation
from repro.relational.columnar import (
    ColumnCodecError,
    block_from_doc,
    block_to_doc,
    decode_column,
    encode_column,
)

#: Post-cast value universe: what RelationInstance columns actually hold.
column_values = st.lists(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(),  # unbounded — exercises the >64-bit object path
        st.floats(allow_nan=False),
        st.text(),  # full unicode, including astral + control chars
    ),
    max_size=60,
)


def typed_view(values):
    """Equality that distinguishes 1 / 1.0 / True (list == does not)."""
    return [(type(v).__name__, v) for v in values]


class TestCodecRoundTrip:
    @settings(max_examples=200)
    @given(column_values)
    def test_encode_decode_is_identity(self, values):
        block = encode_column(values)
        assert typed_view(decode_column(block)) == typed_view(values)

    @settings(max_examples=100)
    @given(column_values)
    def test_json_doc_form_round_trips(self, values):
        doc = json.loads(json.dumps(block_to_doc(encode_column(values))))
        assert typed_view(decode_column(block_from_doc(doc))) == typed_view(
            values
        )

    @settings(max_examples=100)
    @given(column_values)
    def test_canonical_bytes_deterministic(self, values):
        assert (
            encode_column(values).canonical_bytes()
            == encode_column(list(values)).canonical_bytes()
        )

    @settings(max_examples=100)
    @given(column_values, column_values)
    def test_distinct_values_distinct_bytes(self, first, second):
        if typed_view(first) == typed_view(second):
            return
        assert (
            encode_column(first).canonical_bytes()
            != encode_column(second).canonical_bytes()
        )

    def test_special_floats_round_trip(self):
        values = [float("inf"), float("-inf"), -0.0, 5e-324, 1.5]
        decoded = decode_column(encode_column(values))
        assert decoded == values
        assert math.copysign(1.0, decoded[2]) == -1.0
        nan_decoded = decode_column(encode_column([float("nan"), None]))
        assert math.isnan(nan_decoded[0]) and nan_decoded[1] is None


class TestCodecKinds:
    @pytest.mark.parametrize(
        "values, kind",
        [
            ([], "empty"),
            ([1, None, -(2**63)], "int64"),
            ([2**63], "object"),  # one past int64 → tagged object form
            ([0.5, None], "float64"),
            ([True, False, None], "bool"),
            (["a", "", None, "é\U0001f600"], "text"),
            ([1, "a"], "object"),
            ([True, 1], "object"),  # bool is not an int here
            ([None, None], "int64"),  # all-null: cheapest physical form
        ],
    )
    def test_classification(self, values, kind):
        block = encode_column(values)
        assert block.kind == kind
        assert typed_view(decode_column(block)) == typed_view(values)

    def test_numeric_lookalikes_encode_distinctly(self):
        # 1 == 1.0 == True in Python, but they are different typed
        # columns and must produce different canonical bytes — this is
        # what keeps ProfileCache keys honest about datatypes.
        variants = [[1], [1.0], [True]]
        blocks = [encode_column(v).canonical_bytes() for v in variants]
        assert len(set(blocks)) == len(variants)

    def test_unencodable_type_raises(self):
        with pytest.raises(ColumnCodecError):
            encode_column([object()])

    def test_corrupt_payload_raises(self):
        block = encode_column([1, 2, 3])
        clipped = block_from_doc(
            {
                "kind": block.kind,
                "count": block.count,
                "nulls": block_to_doc(block)["nulls"],
                "data": "",
            }
        )
        with pytest.raises(ColumnCodecError):
            decode_column(clipped)


def seeded_database(seed: int) -> Database:
    rng = random.Random(seed)
    datatypes = [
        DataType.INTEGER,
        DataType.STRING,
        DataType.FLOAT,
        DataType.BOOLEAN,
    ]
    relations = []
    for index in range(rng.randint(1, 3)):
        attributes = [
            (f"a{position}", rng.choice(datatypes))
            for position in range(rng.randint(1, 4))
        ]
        relations.append(relation(f"r{index}", attributes))
    schema = Schema(f"cols{seed}", relations=relations)
    database = Database(schema)
    for rel in schema.relations:
        for _ in range(rng.randint(0, 30)):
            row = []
            for attribute in rel.attributes:
                if rng.random() < 0.2:
                    row.append(None)
                elif attribute.datatype is DataType.INTEGER:
                    row.append(rng.randint(-5, 5))
                elif attribute.datatype is DataType.FLOAT:
                    row.append(round(rng.uniform(-2, 2), 3))
                elif attribute.datatype is DataType.BOOLEAN:
                    row.append(rng.random() < 0.5)
                else:
                    row.append(rng.choice(["x", "yy", "z 3", "émile", ""]))
            database.insert(rel.name, row)
    return database


class TestRowColumnAgreement:
    """The row view and column view describe the same tuples."""

    @pytest.mark.parametrize("seed", range(10))
    def test_views_are_transposes(self, seed):
        database = seeded_database(seed)
        for rel in database.schema.relations:
            instance = database.table(rel.name)
            rows = instance.rows
            for position, name in enumerate(rel.attribute_names):
                assert instance.column(name) == [
                    row[position] for row in rows
                ]

    @pytest.mark.parametrize("seed", range(10))
    def test_statistics_agree_across_views(self, seed):
        # Rebuild each relation from its *row* view and require every
        # profiling statistic to match the column-stored original.
        database = seeded_database(seed)
        rebuilt = Database(database.schema)
        for rel in database.schema.relations:
            for row in database.table(rel.name).rows:
                rebuilt.insert(rel.name, row)
        for rel in database.schema.relations:
            for attribute in rel.attributes:
                original = compute_column_profile(
                    database, rel.name, attribute.name
                )
                from_rows = compute_column_profile(
                    rebuilt, rel.name, attribute.name
                )
                assert original == from_rows

    @pytest.mark.parametrize("seed", range(10))
    def test_encoded_columns_round_trip_instances(self, seed):
        database = seeded_database(seed)
        for rel in database.schema.relations:
            instance = database.table(rel.name)
            decoded = [
                decode_column(block)
                for block in instance.encoded_columns()
            ]
            assert decoded == instance.columns()

    def test_mutation_invalidates_encoded_memo(self):
        schema = Schema(
            "m", relations=[relation("t", [("v", DataType.INTEGER)])]
        )
        database = Database(schema)
        database.insert("t", (1,))
        instance = database.table("t")
        before = instance.encoded_columns()[0].canonical_bytes()
        assert instance.encoded_columns()[0].canonical_bytes() == before
        database.insert("t", (2,))
        assert instance.encoded_columns()[0].canonical_bytes() != before
