"""Unit tests for the structure module: detector, planner, loop detection."""

import pytest

from repro.core import ResultQuality
from repro.core.modules.structure import (
    InfiniteCleaningLoopError,
    StructureConflictDetector,
    StructureModule,
    StructureRepairPlanner,
    VirtualRelationship,
)
from repro.core.reports import StructureViolation
from repro.core.tasks import StructuralConflict, TaskType
from repro.csg.cardinality import Cardinality
from repro.matching import CorrespondenceSet, attribute_correspondence, relation_correspondence
from repro.relational import (
    Database,
    DataType,
    NotNull,
    Schema,
    Unique,
    primary_key,
    relation,
)
from repro.scenarios.scenario import IntegrationScenario


class TestTable3Detector:
    """The running example must yield exactly the Table 3 report."""

    @pytest.fixture(scope="class")
    def violations(self, example):
        source = example.sources[0]
        cset = example.correspondences[source.name]
        return StructureConflictDetector().detect(source, example.target, cset)

    def test_exactly_two_rows(self, violations):
        assert len(violations) == 2

    def test_multi_artist_row(self, violations):
        row = next(
            v
            for v in violations
            if v.conflict is StructuralConflict.MULTIPLE_ATTRIBUTE_VALUES
        )
        assert row.violation_count == 503
        assert row.target_relationship == "records->records.artist"
        assert row.prescribed == "1"
        assert row.inferred == "0..*"

    def test_detached_artist_row(self, violations):
        row = next(
            v
            for v in violations
            if v.conflict is StructuralConflict.VALUE_WITHOUT_ENCLOSING_TUPLE
        )
        assert row.violation_count == 102
        assert row.target_relationship == "records.artist->records"
        assert row.prescribed == "1..*"

    def test_scope_covers_all_elements(self, violations):
        multi = next(
            v
            for v in violations
            if v.conflict is StructuralConflict.MULTIPLE_ATTRIBUTE_VALUES
        )
        assert multi.scope == 2000  # all albums


def tiny_scenario(source_rows, target_constraints=(), source_constraints=()):
    """One-table source and target with a single mapped attribute."""
    source_schema = Schema(
        "src",
        relations=[relation("s", [("k", DataType.INTEGER), "v"])],
        constraints=list(source_constraints),
    )
    target_schema = Schema(
        "tgt",
        relations=[relation("t", [("k", DataType.INTEGER), "v"])],
        constraints=list(target_constraints),
    )
    source = Database(source_schema)
    source.insert_all("s", source_rows)
    target = Database(target_schema)
    cset = CorrespondenceSet(
        [
            relation_correspondence("s", "t"),
            attribute_correspondence("s.k", "t.k"),
            attribute_correspondence("s.v", "t.v"),
        ]
    )
    return IntegrationScenario("tiny", source, target, cset)


class TestDetectorConflictClasses:
    def test_not_null_violation(self):
        scenario = tiny_scenario(
            [(1, "a"), (2, None)], target_constraints=[NotNull("t", "v")]
        )
        module = StructureModule()
        report = module.assess(scenario)
        conflicts = {v.conflict for v in report.violations}
        assert StructuralConflict.NOT_NULL_VIOLATED in conflicts

    def test_unique_violation(self):
        scenario = tiny_scenario(
            [(1, "a"), (2, "a")], target_constraints=[Unique("t", ("v",))]
        )
        report = StructureModule().assess(scenario)
        unique_rows = [
            v
            for v in report.violations
            if v.conflict is StructuralConflict.UNIQUE_VIOLATED
        ]
        assert unique_rows and unique_rows[0].violation_count == 1

    def test_clean_source_no_violations(self):
        scenario = tiny_scenario(
            [(1, "a"), (2, "b")],
            target_constraints=[NotNull("t", "v"), Unique("t", ("v",))],
            source_constraints=[
                NotNull("s", "v"),
                Unique("s", ("v",)),
            ],
        )
        report = StructureModule().assess(scenario)
        assert report.is_empty()

    def test_conciseness_ablation_changes_nothing_on_example(self, example):
        """On the running example the shortest path is also the most
        concise, so disabling conciseness must not change the report."""
        source = example.sources[0]
        cset = example.correspondences[source.name]
        with_rule = StructureConflictDetector(use_conciseness=True).detect(
            source, example.target, cset
        )
        without_rule = StructureConflictDetector(use_conciseness=False).detect(
            source, example.target, cset
        )
        assert [(v.target_relationship, v.violation_count) for v in with_rule] == [
            (v.target_relationship, v.violation_count) for v in without_rule
        ]


class TestTable5Planner:
    """The high-quality repair plan of the running example (Table 5)."""

    @pytest.fixture(scope="class")
    def tasks(self, example, efes):
        module = next(m for m in efes.modules if m.name == "structure")
        report = module.assess(example)
        return module.plan(example, report, ResultQuality.HIGH_QUALITY)

    def test_three_tasks(self, tasks):
        assert len(tasks) == 3

    def test_task_types_match_table5(self, tasks):
        types = [task.type for task in tasks]
        assert TaskType.ADD_TUPLES in types
        assert TaskType.MERGE_VALUES in types
        assert TaskType.ADD_MISSING_VALUES in types

    def test_repetition_counts_match_table5(self, tasks):
        by_type = {task.type: task for task in tasks}
        assert by_type[TaskType.ADD_TUPLES].repetitions == 102
        assert by_type[TaskType.MERGE_VALUES].repetitions == 503
        assert by_type[TaskType.ADD_MISSING_VALUES].parameter("values") == 102

    def test_causal_ordering(self, tasks):
        """Add tuples (the cause) precedes Add missing values (the fix)."""
        types = [task.type for task in tasks]
        assert types.index(TaskType.ADD_TUPLES) < types.index(
            TaskType.ADD_MISSING_VALUES
        )

    def test_table5_total_effort(self, tasks, efes):
        from repro.core.effort import price_tasks

        estimate = price_tasks(
            "example", ResultQuality.HIGH_QUALITY, tasks, efes.settings
        )
        assert estimate.total_minutes == 224.0  # 5 + 204 + 15

    def test_low_effort_plan_is_cheaper(self, example, efes):
        from repro.core.effort import price_tasks

        module = next(m for m in efes.modules if m.name == "structure")
        report = module.assess(example)
        low = module.plan(example, report, ResultQuality.LOW_EFFORT)
        estimate = price_tasks(
            "example", ResultQuality.LOW_EFFORT, low, efes.settings
        )
        assert estimate.total_minutes < 224.0
        types = {task.type for task in low}
        assert TaskType.DROP_DETACHED_VALUES in types
        assert TaskType.KEEP_ANY_VALUE in types


class TestVirtualSimulation:
    def test_side_effect_cascade(self):
        """SET_VALUES_TO_NULL on a unique attr breaks NOT NULL → two tasks."""
        scenario = tiny_scenario(
            [(1, "a"), (2, "a"), (3, "b")],
            target_constraints=[Unique("t", ("v",)), NotNull("t", "v")],
            source_constraints=[NotNull("s", "v")],
        )
        module = StructureModule()
        report = module.assess(scenario)
        tasks = module.plan(scenario, report, ResultQuality.LOW_EFFORT)
        types = [task.type for task in tasks]
        assert TaskType.SET_VALUES_TO_NULL in types
        assert TaskType.REJECT_TUPLES in types
        assert types.index(TaskType.SET_VALUES_TO_NULL) < types.index(
            TaskType.REJECT_TUPLES
        )

    def test_high_quality_aggregation_has_no_null_cascade(self):
        scenario = tiny_scenario(
            [(1, "a"), (2, "a"), (3, "b")],
            target_constraints=[Unique("t", ("v",)), NotNull("t", "v")],
            source_constraints=[NotNull("s", "v")],
        )
        module = StructureModule()
        report = module.assess(scenario)
        tasks = module.plan(scenario, report, ResultQuality.HIGH_QUALITY)
        types = [task.type for task in tasks]
        assert TaskType.AGGREGATE_TUPLES in types
        assert TaskType.REJECT_TUPLES not in types

    def test_infinite_loop_detected(self, example):
        """Re-violating an already-fixed relationship must raise."""
        planner = StructureRepairPlanner()
        source = example.sources[0]
        cset = example.correspondences[source.name]
        violations = [
            StructureViolation(
                source_database=source.name,
                target_relationship="records->records.artist",
                conflict=StructuralConflict.NOT_NULL_VIOLATED,
                prescribed="1",
                inferred="0..1",
                violation_count=5,
                scope=10,
                target_relation="records",
                target_attribute="artist",
            )
        ]

        class EvilPlanner(StructureRepairPlanner):
            def _apply(self, states, state, side, task_type):
                state.below = 5  # the "fix" never fixes anything

        with pytest.raises(InfiniteCleaningLoopError):
            EvilPlanner().plan(
                example, cset, violations, ResultQuality.HIGH_QUALITY
            )

    def test_virtual_relationship_narrowing(self):
        state = VirtualRelationship(
            relation="t",
            attribute="v",
            direction="forward",
            prescribed=Cardinality.of(1),
            actual=Cardinality.of(0, None),
            below=3,
            above=2,
        )
        state.narrow_to_prescribed()
        assert not state.is_violated
        assert state.actual.is_subset(state.prescribed)

    def test_widen_low(self):
        state = VirtualRelationship(
            relation="t",
            attribute="v",
            direction="forward",
            prescribed=Cardinality.of(1),
            actual=Cardinality.of(1),
        )
        state.widen_low(7)
        assert state.below == 7
        assert state.actual.contains(0)
