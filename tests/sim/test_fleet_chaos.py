"""The fleet chaos matrix: exactly-once settlement under fleet faults.

Each seed drives :func:`tests.sim.fleet_harness.run_fleet_chaos` — a
real supervisor + control plane over in-process workers — through a
seeded schedule of kills, hangs, and heartbeat drops, asserting that
every acknowledged submission settles exactly once with bytes identical
to a serial execution.  The matrix width defaults to a tier-1-friendly
subset and scales with ``$REPRO_FLEET_SIM_SEEDS`` (the CI fleet job
runs 120 to clear the ≥100-schedule acceptance floor); a failing seed
reproduces locally with ``run_fleet_chaos(seed, tmp_path)``.
"""

from __future__ import annotations

import os

import pytest

from .fleet_harness import (
    FleetChaosSchedule,
    ensure_oracle,
    run_fleet_chaos,
)

SEED_COUNT = int(os.environ.get("REPRO_FLEET_SIM_SEEDS", "10"))


@pytest.fixture(scope="module")
def oracle_cache():
    """One serial-oracle result set shared by every seed in the run."""
    return {}


@pytest.mark.parametrize("seed", range(SEED_COUNT))
def test_fleet_chaos_exactly_once(seed, tmp_path, oracle_cache):
    result = run_fleet_chaos(seed, tmp_path, oracle=oracle_cache)
    # The harness asserts the invariants internally; sanity-check the
    # evidence shape so a silently-empty run cannot pass.
    assert result.acked, f"seed {seed}: no submission was acknowledged"
    assert result.workers >= 2
    assert result.faults, f"seed {seed}: schedule planned no faults"


def test_schedule_is_deterministic():
    a, b = FleetChaosSchedule(4242), FleetChaosSchedule(4242)
    assert a.workers == b.workers
    assert a.jobs == b.jobs
    assert a.faults == b.faults
    assert a.duplicate_of == b.duplicate_of
    assert a.flush_policy == b.flush_policy


def test_schedules_cover_every_fault_kind():
    # The generator weights kills but must still produce hangs and
    # drops somewhere in the acceptance matrix's seed range.
    kinds = {
        fault.kind
        for seed in range(120)
        for fault in FleetChaosSchedule(seed).faults
    }
    assert kinds == {"kill9", "hang", "drop"}


def test_oracle_cache_fills_once():
    schedule = FleetChaosSchedule(0)
    cache = {}
    ensure_oracle(cache, set(schedule.jobs))
    before = dict(cache)
    ensure_oracle(cache, set(schedule.jobs))  # second call: all hits
    assert cache == before
