"""The crash-sim seed matrix: exactly-once settlement under kills.

Each seed drives :func:`tests.sim.harness.run_crash_sim` — a full
crash–restart lifetime sequence over a real scheduler + journal — and
asserts that every acknowledged job settles exactly once.  The matrix
width defaults to the acceptance floor (200 seeds) and scales with
``$REPRO_CRASH_SIM_SEEDS`` for deeper CI soaks; a failing seed is
reproduced locally with ``run_crash_sim(seed, tmp_path)``.
"""

from __future__ import annotations

import os

import pytest

from repro.runtime import Runtime

from .harness import CrashSchedule, VirtualClock, run_crash_sim

SEED_COUNT = int(os.environ.get("REPRO_CRASH_SIM_SEEDS", "200"))


@pytest.fixture(scope="module")
def shared_runtime():
    runtime = Runtime()
    yield runtime
    runtime.close()


@pytest.mark.parametrize("seed", range(SEED_COUNT))
def test_crash_matrix_exactly_once(seed, tmp_path, shared_runtime):
    result = run_crash_sim(seed, tmp_path, runtime=shared_runtime)
    # The harness asserts the invariant internally; sanity-check the
    # evidence shape here so a silently-empty run cannot pass.
    assert result.acked, f"seed {seed}: no job was ever acknowledged"
    assert result.epochs >= 1
    for key in result.acked:
        assert result.settled_by_key.get(key) == 1


def test_schedule_is_deterministic():
    a, b = CrashSchedule(1234, jobs=5), CrashSchedule(1234, jobs=5)
    assert a.points == b.points
    assert a.flush_policy == b.flush_policy
    assert a.segment_max_records == b.segment_max_records


def test_schedule_always_terminates():
    # Every schedule plans finitely many kills; the epoch after the last
    # planned point must run without a failpoint.
    schedule = CrashSchedule(7, jobs=4)
    assert schedule.failpoint_for_epoch(len(schedule.points)) is None


def test_virtual_clock_is_monotonic():
    clock = VirtualClock()
    assert clock() == 0.0
    clock.advance(1.5)
    assert clock() == 1.5
    with pytest.raises(ValueError):
        clock.advance(-1)


def test_torn_write_at_first_append(tmp_path, shared_runtime):
    """Directed case: the very first acked record is torn mid-line."""

    # Seed scan guarantees nothing about which boundary a random seed
    # hits, so pin the worst one explicitly via a handmade schedule.
    from . import harness

    class FirstAppendTorn(harness.CrashSchedule):
        def __init__(self):
            super().__init__(0, jobs=3)
            self.points = [
                harness.CrashPoint(
                    append_index=0, mode="torn", keep_fraction=0.5
                )
            ]

    original = harness.CrashSchedule
    harness.CrashSchedule = lambda seed, jobs: FirstAppendTorn()
    try:
        result = run_crash_sim(90001, tmp_path, runtime=shared_runtime)
    finally:
        harness.CrashSchedule = original
    assert result.acked
    for key in result.acked:
        assert result.settled_by_key.get(key) == 1
