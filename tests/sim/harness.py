"""Crash–restart simulation harness for the durable job scheduler.

One :func:`run_crash_sim` call is one simulated *process lifetime
sequence*: a seeded :class:`CrashSchedule` decides, per epoch, at which
journal append the "process" dies and whether the dying write reaches
the disk whole, torn, or not at all.  Each epoch runs a **real**
:class:`~repro.service.scheduler.JobScheduler` over a real
:class:`~repro.durability.JobJournal` in the same directory; the kill is
injected through the journal's ``failpoint`` hook, which poisons the
journal (:class:`~repro.durability.JournalCrashed`) so the abandoned
epoch's threads are fenced out exactly like a dead process.

The client model is a retrying submitter: every epoch it re-submits the
full workload under stable idempotency keys, exactly like a client whose
HTTP call failed mid-flight and who retries after the service restarts.
The invariant checked at the end — on the first epoch that survives
without a crash — is the headline durability claim:

    every acknowledged job is eventually settled exactly once.

"Acknowledged" means ``submit_callable`` returned (the write-ahead
``submitted`` record is on disk); "exactly once" means the post-mortem
journal replay shows exactly one settled terminal outcome for that key.
"""

from __future__ import annotations

import dataclasses
import random
from pathlib import Path

from repro.durability import (
    FlushPolicy,
    JobJournal,
    JournalError,
    RecoveryManager,
)
from repro.service.jobs import JobState
from repro.service.scheduler import JobScheduler
from repro.service.store import ReportStore

#: Upper bound on restarts per seed; a schedule that keeps crashing past
#: this is a harness bug, not a durability finding.
MAX_EPOCHS = 12

#: How long the final (crash-free) epoch may take to settle everything.
SETTLE_TIMEOUT = 30.0


class VirtualClock:
    """A monotonic clock the harness advances by hand.

    Driving the journal's batch-fsync timing from this instead of
    ``time.monotonic`` keeps every seed's fsync pattern deterministic:
    the clock moves only when :meth:`advance` is called.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError(f"cannot rewind a clock ({seconds})")
        self.now += seconds
        return self.now


@dataclasses.dataclass(frozen=True)
class CrashPoint:
    """Where and how one epoch dies.

    ``append_index`` counts the epoch's journal appends (0-based);
    ``mode`` is ``"crash"`` (nothing written) or ``"torn"`` (a durable
    prefix of ``keep_fraction`` of the line reaches the disk — a real
    ``kill -9`` mid-``write(2)``).
    """

    append_index: int
    mode: str
    keep_fraction: float = 0.0


class CrashSchedule:
    """The seeded plan: one optional :class:`CrashPoint` per epoch.

    Derived entirely from ``random.Random(seed)``, so a failing seed
    reproduces byte-for-byte.  The schedule always terminates: after
    ``crashes`` planned kills, every later epoch runs crash-free.
    """

    def __init__(self, seed: int, jobs: int) -> None:
        rng = random.Random(seed)
        self.seed = seed
        self.jobs = jobs
        # Up to 3 records per job (submitted/dispatched/settled) plus
        # recovery re-statements; spreading crash points across that
        # range hits every boundary class, including "crash during the
        # *recovery* of the previous crash".
        max_appends = max(3, 3 * jobs)
        self.points: list[CrashPoint] = []
        for _ in range(rng.randint(1, 3)):
            mode = rng.choice(("crash", "torn"))
            self.points.append(
                CrashPoint(
                    append_index=rng.randint(0, max_appends),
                    mode=mode,
                    keep_fraction=rng.random() if mode == "torn" else 0.0,
                )
            )
        self.flush_policy = rng.choice(
            (
                FlushPolicy.strict(),
                FlushPolicy.batched(records=2, seconds=None),
                FlushPolicy.batched(records=8, seconds=0.05),
            )
        )
        self.segment_max_records = rng.randint(2, 6)

    def failpoint_for_epoch(self, epoch: int):
        """The journal ``failpoint`` hook for this epoch (``None`` once
        the schedule is exhausted — that epoch must survive)."""
        if epoch >= len(self.points):
            return None
        point = self.points[epoch]

        def failpoint(append_index: int, line: str):
            if append_index != point.append_index:
                return ("ok", 0)
            if point.mode == "torn":
                return ("torn", int(point.keep_fraction * len(line)))
            return ("crash", 0)

        return failpoint


@dataclasses.dataclass
class SimResult:
    """What one seed's lifetime sequence did, for assertions/reporting."""

    seed: int
    epochs: int
    acked: set[str]
    executions: dict[str, int]
    torn_records: int
    resubmitted: int
    settled_by_key: dict[str, int]


def run_crash_sim(seed: int, directory: Path, runtime=None) -> SimResult:
    """Run one full crash–restart lifetime sequence; returns the
    evidence needed to assert exactly-once settlement.

    Raises :class:`AssertionError` with the seed in the message when the
    invariant is violated, so a matrix failure is immediately
    reproducible (``run_crash_sim(seed, tmp_path)``).
    """
    rng = random.Random(seed ^ 0x5EED)
    total_jobs = rng.randint(3, 7)
    schedule = CrashSchedule(seed, total_jobs)
    clock = VirtualClock()
    keys = [f"job-{seed}-{i}" for i in range(total_jobs)]

    executions: dict[str, int] = {}

    def make_payload(ref: str):
        def payload(job):
            executions[ref] = executions.get(ref, 0) + 1
            return {"ref": ref, "seed": seed}

        return payload

    def payload_resolver(ref: str, job):
        return make_payload(ref)

    acked: set[str] = set()
    torn_total = 0
    resubmitted_total = 0
    journal_dir = Path(directory) / "journal"

    epoch = 0
    while True:
        assert epoch < MAX_EPOCHS, (
            f"seed {seed}: schedule never produced a surviving epoch"
        )
        journal = JobJournal(
            journal_dir,
            flush=schedule.flush_policy,
            segment_max_records=schedule.segment_max_records,
            clock=clock,
            failpoint=schedule.failpoint_for_epoch(epoch),
        )
        store = ReportStore()
        try:
            scheduler = JobScheduler(
                runtime=runtime,
                store=store,
                workers=2,
                journal=journal,
                payload_resolver=payload_resolver,
                trace=False,
            )
        except JournalError:
            # Died during recovery itself — restart again.
            epoch += 1
            continue
        if scheduler.recovery_summary is not None:
            torn_total += scheduler.recovery_summary["torn_records"]
            resubmitted_total += scheduler.recovery_summary["resubmitted"]

        submitted: dict[str, object] = {}
        crashed = False
        for key in keys:
            clock.advance(rng.random() * 0.02)
            try:
                submitted[key] = scheduler.submit_callable(
                    make_payload(key),
                    name=key,
                    payload_ref=key,
                    idempotency_key=key,
                )
            except JournalError:
                crashed = True
                break
            # The write-ahead record is on disk: the submission is
            # acknowledged, and from here on it must settle.
            acked.add(key)

        if not crashed:
            for key, job in submitted.items():
                scheduler.wait(job.id, timeout=SETTLE_TIMEOUT)
            # An advisory append may have tripped the failpoint inside
            # the dispatcher thread: the journal is poisoned even though
            # every submit succeeded.  That, too, is a process death.
            crashed = journal.crashed

        if crashed:
            # Abandon the epoch: fenced journal, drained threads.  The
            # zombie may keep executing in memory — like the last
            # instants of a killed process — but nothing it does can
            # reach the journal.
            scheduler.close(wait=False, timeout=0.0)
            epoch += 1
            continue

        # The surviving epoch: assert the invariant and return.
        for key in acked:
            job = submitted[key]
            assert job.state is JobState.DONE, (
                f"seed {seed}: acked job {key} ended {job.state} "
                f"(error={job.error!r})"
            )
        scheduler.close(wait=True, timeout=SETTLE_TIMEOUT)

        # Post-mortem: the journal itself must agree — exactly one
        # settled terminal outcome per acknowledged key.
        post = JobJournal(journal_dir)
        replay = RecoveryManager(post).replay()
        post.close()
        settled_by_key: dict[str, int] = {}
        for state in replay.jobs.values():
            if state.is_settled and state.idempotency_key:
                settled_by_key[state.idempotency_key] = (
                    settled_by_key.get(state.idempotency_key, 0) + 1
                )
        for key in acked:
            count = settled_by_key.get(key, 0)
            assert count == 1, (
                f"seed {seed}: key {key} settled {count} times "
                f"(want exactly once)"
            )
        return SimResult(
            seed=seed,
            epochs=epoch + 1,
            acked=acked,
            executions=executions,
            torn_records=torn_total,
            resubmitted=resubmitted_total,
            settled_by_key=settled_by_key,
        )
