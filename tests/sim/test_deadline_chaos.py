"""The slow-fault chaos matrix: deadlines hold under injected stalls.

Each seed drives :func:`tests.sim.deadline_harness.run_deadline_sim` —
a delay armed at the ``deadline.checkpoint`` site, a victim job with a
budget smaller than the stall, and a sibling queued on the same slot —
and asserts the tentpole invariants: settle within deadline + grace, a
marked partial with tombstones, nothing leaked into the report store,
and the timed-out slot reclaimed.  The matrix width scales with
``$REPRO_DEADLINE_SIM_SEEDS`` (CI runs ≥100 across the backends); a
failing seed replays locally via ``DeadlinePlan.from_seed(seed)``.

The process backend gets its own legs: cooperative self-abort (the plan
rides ``$REPRO_FAULT_PLAN`` across the fork) and the hard-kill reaper
for runaway workers that never reach a checkpoint.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.runtime import (
    CancelScope,
    Deadline,
    Runtime,
    WorkerReapedError,
)

from .deadline_harness import (
    DeadlinePlan,
    run_deadline_sim,
    run_deadline_sim_process,
    sleeper_task,
)

SEED_COUNT = int(os.environ.get("REPRO_DEADLINE_SIM_SEEDS", "8"))

#: The process legs spawn a pool per episode, so they run a slice of
#: the matrix; CI widens both through the same environment knob.
PROCESS_SEED_COUNT = max(2, SEED_COUNT // 4)


@pytest.fixture(scope="module", params=["serial", "threads"])
def backend_runtime(request):
    runtime = Runtime(backend=request.param, max_workers=2)
    yield runtime
    runtime.close()


@pytest.mark.parametrize("seed", range(SEED_COUNT))
def test_deadline_matrix(seed, small_example, backend_runtime):
    result = run_deadline_sim(seed, small_example, backend_runtime)
    # The harness asserts the invariants; sanity-check the evidence
    # shape so a silently-empty episode cannot pass.
    assert result.victim_state == "done"
    assert result.victim_partial
    assert result.counters.get("jobs_deadline_exceeded", 0) >= 1


def test_plan_is_deterministic():
    assert DeadlinePlan.from_seed(42) == DeadlinePlan.from_seed(42)


def test_plan_orders_budget_delay_grace():
    for seed in range(50):
        plan = DeadlinePlan.from_seed(seed)
        assert plan.budget < plan.delay < plan.grace


@pytest.mark.parametrize("seed", range(1000, 1000 + PROCESS_SEED_COUNT))
def test_deadline_matrix_process_backend(seed, small_example):
    result = run_deadline_sim_process(seed, small_example)
    assert result.victim_partial
    assert result.sibling_state == "done"


class TestRunawayWorkerReclamation:
    @pytest.fixture(scope="class")
    def process_runtime(self):
        runtime = Runtime(backend="process", max_workers=2)
        yield runtime
        runtime.close()

    @pytest.mark.parametrize("seed", range(PROCESS_SEED_COUNT))
    def test_runaway_worker_is_reaped_and_pool_recovers(
        self, seed, process_runtime
    ):
        # A task that never checkpoints cannot self-abort; the executor
        # must SIGKILL the pool once deadline + grace passes, raise the
        # reap, and rebuild a working pool for the next dispatch.
        executor = process_runtime.executor
        reaps_before = executor.stats()["reaps"]
        budget, grace = 0.1 + 0.01 * (seed % 5), 0.2
        scope = CancelScope(deadline=Deadline.after(budget), grace=grace)
        started = time.monotonic()
        with scope.activated():
            with pytest.raises(WorkerReapedError):
                executor.run_tasks(sleeper_task, [(30.0,), (30.0,)])
        elapsed = time.monotonic() - started
        assert elapsed < budget + grace + 10.0, (
            f"seed {seed}: reap took {elapsed:.1f}s — the runaway worker "
            f"was not hard-killed"
        )
        stats = executor.stats()
        assert stats["reaps"] == reaps_before + 1
        assert stats["reaped_workers"] >= 1
        # Sibling work after the reap lands on a replacement pool.
        assert executor.run_tasks(sleeper_task, [(0.0,), (0.0,)]) == [
            (0.0,),
            (0.0,),
        ]

    def test_unbounded_runs_never_engage_the_reaper(self, process_runtime):
        executor = process_runtime.executor
        reaps_before = executor.stats()["reaps"]
        assert executor.run_tasks(sleeper_task, [(0.0,), (0.0,)]) == [
            (0.0,),
            (0.0,),
        ]
        assert executor.stats()["reaps"] == reaps_before
