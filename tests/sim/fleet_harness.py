"""Fleet-level chaos harness: kill, hang, and mute a live fleet.

One :func:`run_fleet_chaos` call is one seeded fleet lifetime: a real
:class:`~repro.fleet.FleetSupervisor` (TCP control plane, liveness
monitor, failover machinery — nothing stubbed) over **in-process**
simulated workers.  Each sim worker is the same stack a worker process
runs — a journalled :class:`~repro.service.JobScheduler` behind a real
HTTP server, dialling the supervisor's control socket and heartbeating
— but lives on threads, so a schedule finishes in seconds instead of
paying process fork+import tax per worker.

Death is simulated with the fidelity the exactly-once claim needs.
``SIGKILL`` cannot be delivered to a thread, so :meth:`SimWorker.kill9`
makes the worker *as dead as the journal can see*: the journal is
poisoned (appends raise :class:`~repro.durability.JournalCrashed` —
the same fencing the crash-sim harness uses), the shared-store handle
is poisoned (a dead process cannot spool results either), and the HTTP
server stops accepting.  Abandoned scheduler threads may keep running
— exactly like the last scheduled instants of a killed process — but
nothing they do can reach disk.  By the time ``kill9`` returns the
:class:`~repro.fleet.supervisor.WorkerBackend.kill` contract holds:
the worker can no longer write its journal, so the supervisor's
fence-rename is safe.

The invariant asserted per seed is the fleet's headline claim:

    every acknowledged submission settles **exactly once** — exactly
    one durable settled record across every journal in the fleet
    (fenced and live), or exactly one supervisor completion from the
    shared store, never both — and the served result is byte-identical
    to a serial, single-scheduler execution of the same job.

"Acknowledged" means the front end returned 202.  Shed (503) and
dead-worker-window submissions are retried with the *same* idempotency
key, exactly like a real client.
"""

from __future__ import annotations

import dataclasses
import json
import random
import socket
import threading
import time
from collections import Counter
from pathlib import Path

from repro.durability import FlushPolicy, JobJournal, RecoveryManager
from repro.fleet import FleetSupervisor, make_fleet_server, worker_dirs
from repro.fleet.protocol import (
    MessageReader,
    goodbye_message,
    heartbeat_message,
    hello_message,
    send_message,
)
from repro.fleet.supervisor import WorkerBackend
from repro.scenarios import resolve_scenario
from repro.service import JobScheduler, ReportStore, ServiceClient, make_server
from repro.service.client import BackpressureError, ServiceUnavailableError

#: Scenarios cheap enough to run dozens of times per schedule.
SCENARIO_POOL = ("example", "s1-s2", "s1-s3", "m1-d2", "d1-d2")

#: How long one schedule may take to settle everything (wall clock;
#: generous because CI machines stall).
SETTLE_TIMEOUT = 60.0

#: Sim heartbeat cadence and liveness deadline: fast enough that a
#: failover costs tenths of a second, slow enough that a GC pause is
#: not a spurious death.
HEARTBEAT_INTERVAL = 0.04
LIVENESS_DEADLINE = 0.5


class PoisonableStore(ReportStore):
    """A shared-store handle that dies with its worker.

    A SIGKILLed process cannot spool results after death; in-process
    zombie threads could.  Poisoning ``put`` restores the real
    semantics (the scheduler treats a failing spool as best-effort, so
    the zombie shrugs and the supervisor sees an absent result —
    the re-dispatch path, not a phantom completion).
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.dead = False

    def put(self, key: str, doc: dict) -> None:
        if self.dead:
            raise OSError("worker killed (simulated)")
        super().put(key, doc)


class SimWorker:
    """One in-process worker: real scheduler, journal, HTTP, heartbeat."""

    def __init__(
        self,
        worker_id: str,
        epoch: int,
        fleet_dir: Path,
        control_port: int,
        *,
        flush_policy: FlushPolicy,
        job_workers: int = 2,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
    ) -> None:
        self.worker_id = worker_id
        self.epoch = epoch
        self.heartbeat_interval = heartbeat_interval
        journal_dir, spool_dir = worker_dirs(fleet_dir, worker_id)
        self.store = PoisonableStore(directory=spool_dir)
        self.journal = JobJournal(journal_dir, flush=flush_policy)
        self.scheduler = JobScheduler(
            store=self.store,
            workers=job_workers,
            journal=self.journal,
            trace=False,
        )
        self.server = make_server(self.scheduler, host="127.0.0.1", port=0)
        self.http_port = self.server.server_address[1]
        self.alive = True
        #: Chaos switches (the supervisor never sees these directly).
        self.mute = False
        self._drop_remaining = 0
        self._stop = threading.Event()
        self._lifecycle = threading.Lock()
        self._beats = 0
        self._sock = socket.create_connection(
            ("127.0.0.1", control_port), timeout=10.0
        )
        self._threads = [
            threading.Thread(
                # Tight poll so kill9's shutdown() costs milliseconds,
                # not the stdlib's half-second default.
                target=lambda: self.server.serve_forever(poll_interval=0.02),
                name=f"sim-{worker_id}-http",
                daemon=True,
            ),
            threading.Thread(
                target=self._heartbeat_loop,
                name=f"sim-{worker_id}-beat",
                daemon=True,
            ),
        ]
        send_message(
            self._sock,
            hello_message(worker_id, epoch, 0, self.http_port),
        )
        for thread in self._threads:
            thread.start()

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            self._beats += 1
            if self._drop_remaining > 0:
                self._drop_remaining -= 1
                continue
            if self.mute:
                continue
            try:
                send_message(
                    self._sock,
                    heartbeat_message(
                        self.worker_id, self.epoch, self._beats
                    ),
                )
            except OSError:
                return  # connection closed: fenced or supervisor gone

    def drop_beats(self, count: int) -> None:
        """Chaos: go silent for the next ``count`` beats, then resume."""
        self._drop_remaining = count

    def kill9(self) -> None:
        """Make the worker dead enough to fence.  Idempotent.

        Order matters: poison the journal and store *first* (no append
        or spool write can succeed from this line on), then stop the
        control plane and HTTP ingress, then abandon the scheduler.
        """
        with self._lifecycle:
            if not self.alive:
                return
            self.alive = False
        self.journal.crashed = True
        self.store.dead = True
        self._stop.set()
        try:
            self._sock.close()
        except OSError:
            pass
        self.server.shutdown()
        self.server.server_close()
        self.scheduler.close(wait=False, timeout=0.0)

    def graceful_stop(self) -> None:
        """Drain like SIGTERM: goodbye, stop ingress, settle the queue."""
        with self._lifecycle:
            if not self.alive:
                return
            self.alive = False
        self._stop.set()
        try:
            send_message(
                self._sock, goodbye_message(self.worker_id, self.epoch)
            )
            self._sock.close()
        except OSError:
            pass
        self.server.shutdown()
        self.server.server_close()
        self.scheduler.close(wait=True, timeout=10.0)


class SimWorkerBackend(WorkerBackend):
    """In-process workers behind the real supervisor control plane."""

    def __init__(
        self,
        fleet_dir: Path,
        *,
        flush_policy: FlushPolicy | None = None,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
    ) -> None:
        self.fleet_dir = Path(fleet_dir)
        self.flush_policy = (
            flush_policy if flush_policy is not None else FlushPolicy.strict()
        )
        self.heartbeat_interval = heartbeat_interval
        #: Latest handle per worker id (chaos targets the current epoch).
        self.current: dict[str, SimWorker] = {}
        self.spawned: list[SimWorker] = []

    def spawn(self, worker_id: str, epoch: int, control_port: int):
        handle = SimWorker(
            worker_id,
            epoch,
            self.fleet_dir,
            control_port,
            flush_policy=self.flush_policy,
            heartbeat_interval=self.heartbeat_interval,
        )
        self.current[worker_id] = handle
        self.spawned.append(handle)
        return handle

    def kill(self, handle) -> None:
        if handle is not None:
            handle.kill9()

    def terminate(self, handle) -> None:
        if handle is not None:
            handle.graceful_stop()

    def is_alive(self, handle) -> bool:
        return handle is not None and handle.alive

    def close_all(self) -> None:
        for handle in self.spawned:
            handle.kill9()


@dataclasses.dataclass(frozen=True)
class FleetFault:
    """One chaos action, injected after ``after_jobs`` submissions."""

    kind: str  # "kill9" | "hang" | "drop"
    worker_index: int
    after_jobs: int
    drop_beats: int = 0


@dataclasses.dataclass(frozen=True)
class JobSpec:
    scenario: str
    kind: str
    quality: str | None
    priority: int


class FleetChaosSchedule:
    """The seeded plan: fleet size, workload, and fault injections.

    Derived entirely from ``random.Random(seed)`` so a failing seed
    reproduces exactly.  Kills dominate (they exercise fence + replay +
    re-dispatch); hangs exercise the liveness deadline against a worker
    that is still executing; drops exercise deadline tolerance.
    """

    def __init__(self, seed: int) -> None:
        rng = random.Random(seed)
        self.seed = seed
        self.workers = rng.randint(2, 3)
        total = rng.randint(4, 7)
        self.jobs = [
            JobSpec(
                scenario=rng.choice(SCENARIO_POOL),
                kind="estimate" if rng.random() < 0.8 else "assess",
                quality=rng.choice(("low", "high", None)),
                priority=rng.randint(0, 3),
            )
            for _ in range(total)
        ]
        #: Index of a job re-submitted under its original key (dedup).
        self.duplicate_of = (
            rng.randrange(total) if rng.random() < 0.5 else None
        )
        self.faults = sorted(
            (
                FleetFault(
                    kind=rng.choice(("kill9", "kill9", "kill9", "hang", "drop")),
                    worker_index=rng.randrange(self.workers),
                    after_jobs=rng.randint(1, total),
                    drop_beats=rng.randint(1, 3),
                )
                for _ in range(rng.randint(1, 2))
            ),
            key=lambda fault: fault.after_jobs,
        )
        self.flush_policy = rng.choice(
            (
                FlushPolicy.strict(),
                FlushPolicy.batched(records=4, seconds=None),
            )
        )


@dataclasses.dataclass
class FleetSimResult:
    """What one seed did, for assertions and reporting."""

    seed: int
    workers: int
    acked: dict[str, str]
    failovers: int
    redispatched: int
    completed_from_store: int
    settled_by_key: dict[str, int]
    faults: tuple[FleetFault, ...]


def _submit_with_retry(
    client: ServiceClient, spec: JobSpec, key: str, deadline: float
) -> dict:
    """Submit like a real client: same idempotency key on every retry.

    Shed (503 + retry_after) and dead-worker-window failures both
    resolve by resubmitting the identical envelope once capacity
    returns — the fleet either dedups onto the original route or admits
    it fresh, never both.
    """
    limit = time.monotonic() + deadline
    first = True
    while True:
        try:
            if first:
                return client.submit(
                    spec.scenario,
                    kind=spec.kind,
                    quality=spec.quality,
                    priority=spec.priority,
                    idempotency_key=key,
                )
            return client.resubmit(key)
        except (BackpressureError, ServiceUnavailableError):
            first = False
            if time.monotonic() >= limit:
                raise
            time.sleep(0.05)


def _await_live(supervisor: FleetSupervisor, count: int, deadline: float):
    limit = time.monotonic() + deadline
    while time.monotonic() < limit:
        if supervisor.status()["live"] >= count:
            return
        time.sleep(0.01)
    raise AssertionError(
        f"fleet never reached {count} live workers: {supervisor.status()}"
    )


def _serial_oracle(specs: set[JobSpec]) -> dict[JobSpec, str]:
    """Canonical bytes per job spec from one serial scheduler."""
    store = ReportStore()
    scheduler = JobScheduler(store=store, workers=1, trace=False)
    oracle: dict[JobSpec, str] = {}
    try:
        for spec in specs:
            scenario = resolve_scenario(spec.scenario, 1)
            job = scheduler.submit(
                scenario, kind=spec.kind, quality=spec.quality
            )
            scheduler.wait(job.id, timeout=SETTLE_TIMEOUT)
            assert job.state.value == "done", (
                f"oracle job {spec} ended {job.state}: {job.error}"
            )
            oracle[spec] = json.dumps(job.result, sort_keys=True)
    finally:
        scheduler.close(wait=True, timeout=5.0)
    return oracle


def ensure_oracle(
    cache: dict[JobSpec, str], specs: set[JobSpec]
) -> dict[JobSpec, str]:
    """Fill ``cache`` with any missing serial-oracle results.

    The matrix shares one cache across seeds: scenario content is
    deterministic, so each distinct (scenario, kind, quality) costs one
    serial execution for the whole run.
    """
    missing = specs - cache.keys()
    if missing:
        cache.update(_serial_oracle(missing))
    return cache


def _journal_settles(fleet_dir: Path) -> Counter:
    """Durable settled records per idempotency key, across every
    journal in the fleet — live and fenced alike."""
    settles: Counter = Counter()
    workers_root = fleet_dir / "workers"
    if not workers_root.is_dir():
        return settles
    for journal_dir in sorted(workers_root.glob("*/journal*")):
        journal = JobJournal(journal_dir)  # opening never writes
        try:
            replay = RecoveryManager(journal).replay()
        finally:
            journal.close()
        for state in replay.jobs.values():
            if state.is_settled and state.idempotency_key:
                settles[state.idempotency_key] += 1
    return settles


def run_fleet_chaos(
    seed: int, directory: Path, *, oracle: dict | None = None
) -> FleetSimResult:
    """Run one seeded fleet chaos schedule and assert the invariants.

    ``oracle`` optionally carries pre-computed serial results keyed by
    :class:`JobSpec` (the test matrix shares one across seeds).
    """
    schedule = FleetChaosSchedule(seed)
    fleet_dir = Path(directory) / f"fleet-{seed}"
    backend = SimWorkerBackend(
        fleet_dir, flush_policy=schedule.flush_policy
    )
    supervisor = FleetSupervisor(
        fleet_dir,
        workers=schedule.workers,
        backend=backend,
        heartbeat_interval=HEARTBEAT_INTERVAL,
        liveness_deadline=LIVENESS_DEADLINE,
        startup_grace=5.0,
        restart_dead=True,
    )
    server = None
    try:
        supervisor.start()
        _await_live(supervisor, schedule.workers, deadline=10.0)
        server = make_fleet_server(supervisor)
        threading.Thread(
            target=lambda: server.serve_forever(poll_interval=0.02),
            name="fleet-frontend",
            daemon=True,
        ).start()
        client = ServiceClient(server.url, timeout=30.0)

        faults = list(schedule.faults)
        acked: dict[str, str] = {}
        key_by_index: dict[int, str] = {}
        for index, spec in enumerate(schedule.jobs):
            while faults and faults[0].after_jobs <= index:
                _inject(backend, faults.pop(0))
            key = f"fleet-{seed}-{index}"
            job = _submit_with_retry(client, spec, key, deadline=30.0)
            acked[key] = job["id"]
            key_by_index[index] = key
        for fault in faults:
            _inject(backend, fault)
        if schedule.duplicate_of is not None:
            # A client retry after an ambiguous ack: same key, same
            # envelope — must resolve to the original route.
            index = schedule.duplicate_of
            duplicate = _submit_with_retry(
                client,
                schedule.jobs[index],
                key_by_index[index],
                deadline=30.0,
            )
            assert duplicate["id"] == acked[key_by_index[index]], (
                f"seed {seed}: duplicate key "
                f"{key_by_index[index]} got a new route "
                f"({duplicate['id']} != {acked[key_by_index[index]]})"
            )

        # Every acknowledged job must settle DONE with the right bytes.
        oracle = ensure_oracle(
            oracle if oracle is not None else {}, set(schedule.jobs)
        )
        for index, spec in enumerate(schedule.jobs):
            key = key_by_index[index]
            result = client.result(
                acked[key], deadline=SETTLE_TIMEOUT, poll_interval=0.03
            )
            served = json.dumps(result, sort_keys=True)
            assert served == oracle[spec], (
                f"seed {seed}: job {key} ({spec}) served bytes differ "
                f"from the serial oracle"
            )
    finally:
        if server is not None:
            server.shutdown()
            server.server_close()
        supervisor.close()
        backend.close_all()

    # Post-mortem: exactly-once settlement, from the journals' own
    # testimony.  Each acknowledged key has **at most one** settlement
    # authority — a durable settled record somewhere in the fleet's
    # journals (fenced or live), or a supervisor completion from the
    # shared store — never two.  A key with *no* trace is legitimate in
    # exactly one case: the job was served straight off the warm shared
    # store (the scheduler's read-through hit journals nothing because
    # there is nothing to recover) — in which case the store must
    # actually hold the job's content key.
    settles = _journal_settles(fleet_dir)
    for key in acked:
        route = supervisor.route_for_key(key)
        assert route is not None, f"seed {seed}: no route for acked {key}"
        from_store = bool(
            route.settled is not None and route.settled.get("from_store")
        )
        journal_count = settles.get(key, 0)
        total = journal_count + (1 if from_store else 0)
        assert total <= 1, (
            f"seed {seed}: key {key} settled {journal_count} time(s) in "
            f"journals and {'also' if from_store else 'not'} from the "
            f"store — duplicate settlement; faults={schedule.faults}"
        )
        if total == 0:
            assert supervisor.store.contains(route.store_key), (
                f"seed {seed}: key {key} has no settlement trace and the "
                f"shared store lacks {route.store_key} — the served "
                f"result came from nowhere; faults={schedule.faults}"
            )
    return FleetSimResult(
        seed=seed,
        workers=schedule.workers,
        acked=acked,
        failovers=supervisor.failovers_total,
        redispatched=supervisor.redispatched_total,
        completed_from_store=supervisor.completed_from_store_total,
        settled_by_key=dict(settles),
        faults=tuple(schedule.faults),
    )


def _inject(backend: SimWorkerBackend, fault: FleetFault) -> None:
    worker_id = f"w{fault.worker_index}"
    handle = backend.current.get(worker_id)
    if handle is None or not handle.alive:
        return  # a previous fault already took this worker down
    if fault.kind == "kill9":
        handle.kill9()
    elif fault.kind == "hang":
        handle.mute = True  # still executing, silent on the control plane
    elif fault.kind == "drop":
        handle.drop_beats(fault.drop_beats)
    else:  # pragma: no cover - schedule generator bug
        raise ValueError(f"unknown fault kind {fault.kind!r}")
