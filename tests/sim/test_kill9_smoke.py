"""Real-process crash smoke: ``kill -9`` the service, restart, recover.

The seed matrix (:mod:`tests.sim.test_crash_matrix`) kills simulated
processes at exact append boundaries; this module complements it with
the blunt real thing — SIGKILL an actual ``efes serve`` process mid
workload, restart it over the same journal + spool, and check that
every job the dead process *acknowledged* is visible and settles in the
restarted one.  Also pins the graceful half: SIGTERM drains and exits 0.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request

import pytest

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _serve(port: int, journal_dir, spool) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            str(port),
            "--journal-dir",
            str(journal_dir),
            "--journal-fsync",
            "strict",
            "--spool",
            str(spool),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )


def _wait_healthy(port: int, deadline_seconds: float = 20.0) -> dict:
    deadline = time.monotonic() + deadline_seconds
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=1
            ) as response:
                return json.load(response)
        except (urllib.error.URLError, OSError):
            time.sleep(0.1)
    raise AssertionError("service never became healthy")


def _submit(port: int, key: str) -> dict:
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/jobs",
        data=json.dumps(
            {
                "kind": "estimate",
                "scenario": "example",
                "quality": "high_quality",
            }
        ).encode(),
        headers={
            "Content-Type": "application/json",
            "Idempotency-Key": key,
        },
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.load(response)["job"]


def _job(port: int, job_id: str) -> dict:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/jobs/{job_id}", timeout=5
    ) as response:
        return json.load(response)["job"]


def _wait_settled(port: int, job_id: str, deadline_seconds: float = 30.0):
    deadline = time.monotonic() + deadline_seconds
    while time.monotonic() < deadline:
        job = _job(port, job_id)
        if job["state"] in ("done", "failed", "cancelled"):
            return job
        time.sleep(0.1)
    raise AssertionError(f"job {job_id} never settled")


@pytest.mark.slow
def test_kill9_restart_recovers_acked_jobs(tmp_path):
    journal_dir = tmp_path / "journal"
    spool = tmp_path / "spool"
    port = _free_port()
    proc = _serve(port, journal_dir, spool)
    acked: dict[str, str] = {}
    try:
        _wait_healthy(port)
        for index in range(4):
            key = f"kill9-{index}"
            job = _submit(port, key)
            # The POST returned: the write-ahead record is fsynced.
            acked[key] = job["id"]
    finally:
        proc.kill()  # SIGKILL: no drain, no flush, no goodbye
        proc.wait(timeout=10)
    assert proc.returncode == -signal.SIGKILL
    assert acked, "no job was acknowledged before the kill"

    port2 = _free_port()
    proc2 = _serve(port2, journal_dir, spool)
    try:
        health = _wait_healthy(port2)
        recovery = health.get("recovery")
        assert recovery is not None
        assert recovery["jobs_seen"] >= len(acked)
        for key, job_id in acked.items():
            job = _wait_settled(port2, job_id)
            assert job["state"] == "done", (key, job)
            # Retrying the original submit must dedup onto the same
            # job, not run it a second time.
            again = _submit(port2, key)
            assert again["id"] == job_id
    finally:
        proc2.send_signal(signal.SIGTERM)
        try:
            proc2.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc2.kill()
            proc2.wait(timeout=10)
    output = proc2.stdout.read()
    assert proc2.returncode == 0, output
    assert "journal recovery:" in output


@pytest.mark.slow
def test_sigterm_drains_and_exits_zero(tmp_path):
    port = _free_port()
    proc = _serve(port, tmp_path / "journal", tmp_path / "spool")
    try:
        _wait_healthy(port)
        job = _submit(port, "sigterm-drain")
        assert job["id"]
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=20)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)
    output = proc.stdout.read()
    assert proc.returncode == 0, output
    assert "received SIGTERM; draining" in output
