"""Real-process fleet smokes: SIGKILL and SIGSTOP against live workers.

The chaos matrix (:mod:`tests.sim.test_fleet_chaos`) drives failover
through in-process workers; these smokes complement it with the blunt
real thing — actual ``python -m repro.fleet.worker`` processes getting
``kill -9``'d and ``SIGSTOP``'d mid-workload — asserting the same
contract: every acknowledged job settles exactly once, the fleet heals
(dead worker respawned at the next epoch), and nothing is served that
a serial execution would not have produced.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time

import pytest

from repro.fleet import FleetSupervisor, make_fleet_server
from repro.service import ServiceClient

from .fleet_harness import _journal_settles

pytestmark = pytest.mark.slow


def _start_fleet(tmp_path, workers=2):
    supervisor = FleetSupervisor(
        tmp_path / "fleet",
        workers=workers,
        heartbeat_interval=0.25,
        startup_grace=30.0,
    )
    supervisor.start()
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if supervisor.status()["live"] == workers:
            break
        time.sleep(0.1)
    else:
        raise AssertionError(
            f"fleet never came up: {supervisor.status()}"
        )
    server = make_fleet_server(supervisor)
    threading.Thread(
        target=lambda: server.serve_forever(poll_interval=0.05), daemon=True
    ).start()
    return supervisor, server


def _await_healed(supervisor, workers, deadline_seconds=30.0):
    deadline = time.monotonic() + deadline_seconds
    while time.monotonic() < deadline:
        if supervisor.status()["live"] == workers:
            return
        time.sleep(0.1)
    raise AssertionError(f"fleet never healed: {supervisor.status()}")


def _assert_exactly_once(supervisor, fleet_dir, acked):
    settles = _journal_settles(fleet_dir)
    for key in acked:
        route = supervisor.route_for_key(key)
        assert route is not None, f"no route for acked key {key}"
        from_store = bool(
            route.settled is not None and route.settled.get("from_store")
        )
        total = settles.get(key, 0) + (1 if from_store else 0)
        assert total <= 1, f"key {key} settled {total} times"
        if total == 0:
            assert supervisor.store.contains(route.store_key)


def test_sigkill_worker_failover_exactly_once(tmp_path):
    supervisor, server = _start_fleet(tmp_path)
    try:
        client = ServiceClient(server.url, timeout=30.0)
        acked = {}
        for index in range(4):
            key = f"sigkill-{index}"
            job = client.submit(
                "example" if index % 2 else "s1-s2",
                quality="high",
                priority=3,  # never shed while the fleet is degraded
                idempotency_key=key,
            )
            acked[key] = job["id"]
        victim = supervisor.status()["workers"][0]
        assert victim["pid"], victim
        os.kill(victim["pid"], signal.SIGKILL)

        results = {
            key: client.result(job_id, deadline=60.0)
            for key, job_id in acked.items()
        }
        for key, result in results.items():
            assert result["kind"] in ("estimate", "assess"), (key, result)
        assert supervisor.failovers_total >= 1
        _await_healed(supervisor, workers=2)
        status = supervisor.status()
        respawned = next(
            worker
            for worker in status["workers"]
            if worker["worker_id"] == victim["worker_id"]
        )
        assert respawned["epoch"] == victim["epoch"] + 1
        assert respawned["state"] == "live"
        _assert_exactly_once(supervisor, supervisor.fleet_dir, acked)
        # Determinism across the fleet: resubmitting a settled key
        # returns the original route, and the served bytes are stable.
        again = client.resubmit("sigkill-0")
        assert again["id"] == acked["sigkill-0"]
        stable = client.result(acked["sigkill-0"], deadline=30.0)
        assert json.dumps(stable, sort_keys=True) == json.dumps(
            results["sigkill-0"], sort_keys=True
        )
    finally:
        server.shutdown()
        server.server_close()
        supervisor.close()


def test_sigstop_hung_worker_is_fenced_and_replaced(tmp_path):
    supervisor, server = _start_fleet(tmp_path)
    try:
        client = ServiceClient(server.url, timeout=30.0)
        acked = {}
        for index in range(3):
            key = f"sigstop-{index}"
            job = client.submit(
                "s1-s3", quality="low", priority=3, idempotency_key=key
            )
            acked[key] = job["id"]
        victim = supervisor.status()["workers"][1]
        assert victim["pid"], victim
        # SIGSTOP: the process is alive but silent — exactly the case
        # the liveness deadline (not process exit) must catch.
        os.kill(victim["pid"], signal.SIGSTOP)

        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if supervisor.failovers_total >= 1:
                break
            time.sleep(0.1)
        assert supervisor.failovers_total >= 1, supervisor.status()

        for key, job_id in acked.items():
            result = client.result(job_id, deadline=60.0)
            assert result["scenario"] == "s1-s3", (key, result)
        _await_healed(supervisor, workers=2)
        healthz = client.healthz()
        assert healthz["fleet"]["live"] == 2
        assert healthz["fleet"]["failovers"] >= 1
        _assert_exactly_once(supervisor, supervisor.fleet_dir, acked)
    finally:
        server.shutdown()
        server.server_close()
        supervisor.close()
