"""Deterministic crash–restart simulation for the durable job journal.

The harness (:mod:`tests.sim.harness`) runs a real
:class:`~repro.service.scheduler.JobScheduler` + :class:`JobJournal`
in-process, kills it at seeded append boundaries (including mid-append
torn writes), restarts it against the same journal directory, and
asserts the headline durability invariant: **every acknowledged job is
eventually settled exactly once**, across hundreds of seeds.
"""
