"""Slow-fault chaos harness for end-to-end deadline enforcement.

One :func:`run_deadline_sim` call is one seeded *slow-fault episode*: a
delay rule armed at the ``deadline.checkpoint`` fault site stalls the
assessment exactly where cancellation is supposed to be noticed, the
victim job is admitted with a budget smaller than the stall, and the
harness measures what the scheduler does about it.  The invariants are
the tentpole's acceptance shape:

* the victim **settles within deadline + grace** — the slow fault never
  turns into an unbounded hang,
* the settlement is a **marked partial** (``deadline_exceeded`` with
  degradation tombstones for the unrun stages), not a crash,
* the partial is **never written to the report store** (partials are
  budget-dependent; the content address must keep serving full-budget
  results only),
* the victim's **worker slot is reclaimed at fire time**: a sibling job
  queued behind it completes while the stalled payload is still
  draining.

The delay plan is installed in-context for the serial/threads backends
and through ``$REPRO_FAULT_PLAN`` for the process backend (pool workers
resolve the environment plan on their side of the fork, so the stall
lands inside the worker that must self-abort).
"""

from __future__ import annotations

import dataclasses
import json
import os
import random
import time

from repro.resilience.faults import (
    FAULT_PLAN_ENV_VAR,
    FaultPlan,
    FaultPoint,
    injected_faults,
    reset_fault_plan,
)
from repro.service import JobScheduler, JobState

#: Wall-clock slack on top of deadline + grace: scheduler wakeups, slow
#: CI boxes, and the post-checkpoint tombstoning work.
SETTLE_MARGIN = 2.0


def sleeper_task(task) -> tuple:
    """A module-level *non-cooperative* pool task: no checkpoints, just
    wall-clock.  Used to force the executor's hard-kill reaper."""
    time.sleep(task[0])
    return task


@dataclasses.dataclass(frozen=True)
class DeadlinePlan:
    """The seeded episode parameters, reproducible from the seed."""

    seed: int
    budget: float  # the victim's execution deadline
    delay: float  # injected stall at the checkpoint (> budget)
    grace: float  # scheduler grace window (> delay: partial must win)
    kind: str  # victim job kind: assess | estimate
    stalls: int  # how many checkpoints the plan delays

    @classmethod
    def from_seed(cls, seed: int) -> "DeadlinePlan":
        rng = random.Random(seed)
        budget = 0.08 + rng.random() * 0.12
        delay = budget + 0.25 + rng.random() * 0.25
        return cls(
            seed=seed,
            budget=budget,
            delay=delay,
            # The stalled payload must reach its next checkpoint and
            # settle its partial before the grace reaper gives up on it.
            grace=delay + 1.0,
            kind=rng.choice(("assess", "estimate")),
            stalls=rng.randint(1, 2),
        )

    def fault_plan(self) -> FaultPlan:
        return FaultPlan(
            [
                FaultPoint(
                    site="deadline.checkpoint",
                    action="delay",
                    delay_seconds=self.delay,
                    times=self.stalls,
                )
            ],
            seed=self.seed,
            name=f"deadline-sim-{self.seed}",
        )

    def plan_doc(self) -> dict:
        """The same plan as ``$REPRO_FAULT_PLAN`` JSON (process leg)."""
        return {
            "seed": self.seed,
            "name": f"deadline-sim-{self.seed}",
            "points": [
                {
                    "site": "deadline.checkpoint",
                    "action": "delay",
                    "delay_seconds": self.delay,
                    "times": self.stalls,
                }
            ],
        }

    @property
    def settle_bound(self) -> float:
        return self.budget + self.grace + SETTLE_MARGIN


@dataclasses.dataclass
class DeadlineSimResult:
    """One episode's evidence, for the matrix assertions."""

    seed: int
    plan: DeadlinePlan
    victim_state: str
    victim_partial: bool
    victim_degradations: int
    victim_settle_seconds: float
    sibling_state: str
    sibling_settle_seconds: float
    stored_partial: bool
    counters: dict


def _run_episode(plan: DeadlinePlan, scenario, runtime) -> DeadlineSimResult:
    """One victim + one sibling through a 1-slot scheduler, measured."""
    with JobScheduler(
        runtime=runtime, workers=1, deadline_grace=plan.grace, trace=False
    ) as sched:
        started = time.monotonic()
        victim = sched.submit(
            scenario,
            plan.kind,
            "high" if plan.kind == "estimate" else None,
            timeout=plan.budget,
        )
        # Queued behind the victim on the only slot: it can only finish
        # inside the bound if the fired deadline reclaimed the slot.
        sibling = sched.submit_callable(
            lambda job: {"sibling": plan.seed}, name=f"sibling-{plan.seed}"
        )
        victim = sched.wait(victim.id, timeout=plan.settle_bound + 5.0)
        victim_settled = time.monotonic() - started
        sibling = sched.wait(sibling.id, timeout=plan.settle_bound + 5.0)
        sibling_settled = time.monotonic() - started
        result = victim.result or {}
        return DeadlineSimResult(
            seed=plan.seed,
            plan=plan,
            victim_state=victim.state.value,
            victim_partial=bool(result.get("deadline_exceeded")),
            victim_degradations=len(result.get("degradations", ())),
            victim_settle_seconds=victim_settled,
            sibling_state=sibling.state.value,
            sibling_settle_seconds=sibling_settled,
            stored_partial=(
                victim.store_key is not None
                and sched.store.get(victim.store_key) is not None
            ),
            counters=dict(sched.metrics.snapshot().counters),
        )


def assert_episode_invariants(result: DeadlineSimResult) -> None:
    """The acceptance shape; failures carry the seed for replay."""
    seed, plan = result.seed, result.plan
    assert result.victim_settle_seconds <= plan.settle_bound, (
        f"seed {seed}: victim settled after {result.victim_settle_seconds:.2f}s"
        f" (bound {plan.settle_bound:.2f}s) — the slow fault hung the job"
    )
    assert result.victim_state == JobState.DONE.value, (
        f"seed {seed}: cooperative victim ended {result.victim_state} "
        f"instead of a partial DONE"
    )
    assert result.victim_partial, (
        f"seed {seed}: settled result is not marked deadline_exceeded"
    )
    assert result.victim_degradations >= 1, (
        f"seed {seed}: no degradation tombstones for the unrun stages"
    )
    assert not result.stored_partial, (
        f"seed {seed}: budget-dependent partial leaked into the store"
    )
    assert result.sibling_state == JobState.DONE.value, (
        f"seed {seed}: sibling ended {result.sibling_state}"
    )
    assert result.sibling_settle_seconds <= plan.settle_bound, (
        f"seed {seed}: sibling took {result.sibling_settle_seconds:.2f}s — "
        f"the timed-out slot was not reclaimed"
    )
    assert result.counters.get("jobs_deadline_exceeded", 0) >= 1, (
        f"seed {seed}: the deadline never fired"
    )
    assert result.counters.get("jobs_deadline_partial", 0) >= 1, (
        f"seed {seed}: no partial settlement was counted"
    )


def run_deadline_sim(seed: int, scenario, runtime) -> DeadlineSimResult:
    """One in-context episode (serial/threads backends)."""
    plan = DeadlinePlan.from_seed(seed)
    with injected_faults(plan.fault_plan()):
        result = _run_episode(plan, scenario, runtime)
    assert_episode_invariants(result)
    return result


def run_deadline_sim_process(seed: int, scenario) -> DeadlineSimResult:
    """One episode on the process backend, plan shipped via the
    environment so pool workers stall (and self-abort) on their side of
    the fork.  Builds a fresh runtime per episode: the pool must be
    spawned *after* the plan lands in ``os.environ``."""
    from repro.runtime import Runtime

    plan = DeadlinePlan.from_seed(seed)
    previous = os.environ.get(FAULT_PLAN_ENV_VAR)
    os.environ[FAULT_PLAN_ENV_VAR] = json.dumps(plan.plan_doc())
    reset_fault_plan()
    runtime = Runtime(backend="process", max_workers=2)
    try:
        result = _run_episode(plan, scenario, runtime)
    finally:
        runtime.close()
        if previous is None:
            os.environ.pop(FAULT_PLAN_ENV_VAR, None)
        else:
            os.environ[FAULT_PLAN_ENV_VAR] = previous
        reset_fault_plan()
    assert_episode_invariants(result)
    return result
