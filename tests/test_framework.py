"""Unit tests for the EFES framework shell (modularity, extensibility)."""

import pytest

from repro.core import (
    Efes,
    EstimationModule,
    ResultQuality,
    default_efes,
    default_execution_settings,
    default_modules,
)
from repro.core.effort import constant
from repro.core.reports import ComplexityReport
from repro.core.tasks import Task, TaskType
from repro.core.modules.values import make_drop_instead_of_add


class FakeReport(ComplexityReport):
    module = "fake"

    def __init__(self, issues):
        self.issues = issues

    def is_empty(self):
        return not self.issues


class FakeModule(EstimationModule):
    """A deduplication-style custom module (extensibility check)."""

    name = "fake"

    def assess(self, scenario):
        return FakeReport(["dup"] * 3)

    def plan(self, scenario, report, quality):
        return [
            Task(
                type=TaskType.AGGREGATE_TUPLES,
                quality=quality,
                subject="dup",
                parameters={"repetitions": len(report.issues)},
                module=self.name,
            )
        ]


class TestEfesAssembly:
    def test_default_modules(self):
        names = [module.name for module in default_modules()]
        assert names == ["mapping", "structure", "values"]

    def test_duplicate_module_names_rejected(self):
        with pytest.raises(ValueError):
            Efes([FakeModule(), FakeModule()])

    def test_custom_module_pluggable(self, small_example):
        efes = Efes([FakeModule()])
        reports = efes.assess(small_example)
        assert set(reports) == {"fake"}
        estimate = efes.estimate(small_example, ResultQuality.HIGH_QUALITY)
        assert estimate.total_minutes == 5.0

    def test_mixed_modules(self, small_example):
        efes = Efes(default_modules() + [FakeModule()])
        reports = efes.assess(small_example)
        assert "fake" in reports and "structure" in reports

    def test_with_settings(self, small_example):
        settings = default_execution_settings().with_scale(10.0)
        efes = Efes([FakeModule()]).with_settings(settings)
        estimate = efes.estimate(small_example, ResultQuality.LOW_EFFORT)
        assert estimate.total_minutes == 50.0


class TestPipeline:
    def test_plan_reuses_reports(self, small_example):
        efes = default_efes()
        reports = efes.assess(small_example)
        tasks_a = efes.plan(small_example, ResultQuality.HIGH_QUALITY, reports)
        tasks_b = efes.plan(small_example, ResultQuality.HIGH_QUALITY)
        assert [t.describe() for t in tasks_a] == [t.describe() for t in tasks_b]

    def test_quality_changes_plan(self, small_example):
        efes = default_efes()
        low = efes.plan(small_example, ResultQuality.LOW_EFFORT)
        high = efes.plan(small_example, ResultQuality.HIGH_QUALITY)
        assert {t.type for t in low} != {t.type for t in high}

    def test_tasks_carry_module_provenance(self, small_example):
        efes = default_efes()
        tasks = efes.plan(small_example, ResultQuality.HIGH_QUALITY)
        assert {t.module for t in tasks} <= {"mapping", "structure", "values"}
        assert any(t.module == "mapping" for t in tasks)

    def test_estimate_totals_are_consistent(self, small_example):
        efes = default_efes()
        estimate = efes.estimate(small_example, ResultQuality.HIGH_QUALITY)
        assert estimate.total_minutes == pytest.approx(
            sum(entry.minutes for entry in estimate.entries)
        )


class TestTaskAdjustments:
    def test_drop_instead_of_add(self, small_example):
        """The Section 6.1 revision: un-providable values get rejected."""
        efes = default_efes()
        adjustment = make_drop_instead_of_add("records.title")
        adjusted = efes.estimate(
            small_example, ResultQuality.HIGH_QUALITY, adjustments=[adjustment]
        )
        plain = efes.estimate(small_example, ResultQuality.HIGH_QUALITY)
        assert adjusted.total_minutes < plain.total_minutes
        assert not any(
            entry.task.type == TaskType.ADD_MISSING_VALUES
            and "records.title" in entry.task.subject
            for entry in adjusted.entries
        )

    def test_adjustment_preserves_other_tasks(self, small_example):
        efes = default_efes()
        adjustment = make_drop_instead_of_add("no.such.subject")
        adjusted = efes.estimate(
            small_example, ResultQuality.HIGH_QUALITY, adjustments=[adjustment]
        )
        plain = efes.estimate(small_example, ResultQuality.HIGH_QUALITY)
        assert adjusted.total_minutes == plain.total_minutes
