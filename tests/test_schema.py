"""Unit tests for repro.relational.schema and constraints wiring."""

import pytest

from repro.relational import (
    Attribute,
    DataType,
    NotNull,
    Relation,
    Schema,
    SchemaError,
    UnknownAttributeError,
    UnknownRelationError,
    foreign_key,
    primary_key,
    relation,
    unique,
)


@pytest.fixture
def schema():
    built = Schema(
        "test",
        relations=[
            relation("records", [("id", DataType.INTEGER), "title", "artist"]),
            relation("tracks", [("record", DataType.INTEGER), "title"]),
        ],
    )
    built.add_constraint(primary_key("records", "id"))
    built.add_constraint(NotNull("records", "title"))
    built.add_constraint(foreign_key("tracks", "record", "records", "id"))
    return built


class TestRelation:
    def test_attribute_lookup(self, schema):
        attribute = schema.relation("records").attribute("title")
        assert attribute.datatype == DataType.STRING

    def test_unknown_attribute_raises(self, schema):
        with pytest.raises(UnknownAttributeError):
            schema.relation("records").attribute("nope")

    def test_index_of(self, schema):
        assert schema.relation("records").index_of("artist") == 2

    def test_arity(self, schema):
        assert schema.relation("records").arity() == 3

    def test_duplicate_attribute_names_rejected(self):
        with pytest.raises(SchemaError):
            Relation("r", [Attribute("a"), Attribute("a")])

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Relation("", [Attribute("a")])


class TestSchema:
    def test_unknown_relation_raises(self, schema):
        with pytest.raises(UnknownRelationError):
            schema.relation("nope")

    def test_duplicate_relation_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.add_relation(relation("records", ["x"]))

    def test_attribute_count(self, schema):
        assert schema.attribute_count() == 5

    def test_constraint_referencing_unknown_relation_rejected(self, schema):
        with pytest.raises(UnknownRelationError):
            schema.add_constraint(NotNull("nope", "title"))

    def test_constraint_referencing_unknown_attribute_rejected(self, schema):
        with pytest.raises(UnknownAttributeError):
            schema.add_constraint(NotNull("records", "nope"))

    def test_fk_referencing_unknown_target_rejected(self, schema):
        with pytest.raises(UnknownRelationError):
            schema.add_constraint(foreign_key("tracks", "record", "nope", "id"))


class TestConstraintIntrospection:
    def test_primary_key_of(self, schema):
        pk = schema.primary_key_of("records")
        assert pk is not None and pk.attributes == ("id",)

    def test_primary_key_of_missing(self, schema):
        assert schema.primary_key_of("tracks") is None

    def test_foreign_keys_of(self, schema):
        fks = schema.foreign_keys_of("tracks")
        assert len(fks) == 1 and fks[0].referenced == "records"

    def test_is_not_null_direct(self, schema):
        assert schema.is_not_null("records", "title")

    def test_is_not_null_via_primary_key(self, schema):
        assert schema.is_not_null("records", "id")

    def test_is_not_null_false(self, schema):
        assert not schema.is_not_null("records", "artist")

    def test_is_unique_via_primary_key(self, schema):
        assert schema.is_unique("records", "id")

    def test_is_unique_via_unique_constraint(self, schema):
        schema.add_constraint(unique("records", "title"))
        assert schema.is_unique("records", "title")

    def test_is_unique_false(self, schema):
        assert not schema.is_unique("records", "artist")

    def test_constraints_on(self, schema):
        assert {c.kind for c in schema.constraints_on("records")} == {
            "primary_key",
            "not_null",
        }


class TestConstraintValidation:
    def test_empty_primary_key_rejected(self):
        from repro.relational.constraints import PrimaryKey
        from repro.relational.errors import ConstraintError

        with pytest.raises(ConstraintError):
            PrimaryKey("r", ())

    def test_duplicate_pk_attribute_rejected(self):
        from repro.relational.constraints import PrimaryKey
        from repro.relational.errors import ConstraintError

        with pytest.raises(ConstraintError):
            PrimaryKey("r", ("a", "a"))

    def test_fk_arity_mismatch_rejected(self):
        from repro.relational.errors import ConstraintError

        with pytest.raises(ConstraintError):
            foreign_key("r", ("a", "b"), "s", "c")

    def test_primary_key_implies_unique_and_not_null(self):
        pk = primary_key("r", ("a", "b"))
        implied = pk.implied_constraints()
        kinds = sorted(c.kind for c in implied)
        assert kinds == ["not_null", "not_null", "unique"]

    def test_describe_renders(self, schema):
        descriptions = [c.describe() for c in schema.constraints]
        assert "PRIMARY KEY records(id)" in descriptions
        assert "NOT NULL records.title" in descriptions
        assert (
            "FOREIGN KEY tracks(record) REFERENCES records(id)" in descriptions
        )
