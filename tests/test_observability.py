"""Tracing, histograms, event logs, and their exporters."""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.core import ResultQuality, default_efes
from repro.core.serialize import (
    SerializationError,
    span_from_dict,
    span_to_dict,
)
from repro.observability import (
    CRITICAL_BURN_RATE,
    EventLog,
    Histogram,
    ResourceSampler,
    SLOMonitor,
    SLOSpec,
    SpanContext,
    Tracer,
    WorkerTelemetry,
    correlation_scope,
    current_correlation_id,
    escape_label_value,
    merge_worker_telemetry,
    prometheus_text,
    publish_worker_resources,
    render_span_tree,
    sample_resources,
    span,
    telemetry_session,
)
from repro.observability.context import NOOP_TELEMETRY_SESSION
from repro.observability.slo import RollingCounter
from repro.runtime import Runtime, RuntimeMetrics


# ----------------------------------------------------------------------
# Spans and tracers
# ----------------------------------------------------------------------


class TestTracing:
    def test_disabled_by_default_returns_shared_noop(self):
        first = span("anything")
        second = span("anything else")
        assert first is second
        assert not first.is_recording
        with first as handle:
            handle.set_attribute("ignored", True)  # must not raise

    def test_span_tree_nesting(self):
        tracer = Tracer()
        with tracer.activated():
            with span("root"):
                with span("child-a"):
                    with span("grandchild"):
                        pass
                with span("child-b"):
                    pass
        root = tracer.root
        assert root.name == "root"
        assert [child.name for child in root.children] == [
            "child-a",
            "child-b",
        ]
        assert root.children[0].children[0].name == "grandchild"
        assert all(
            node.duration_seconds is not None for node in root.walk()
        )
        assert all(
            node.trace_id == root.trace_id for node in root.walk()
        )

    def test_spans_opened_on_worker_threads_attach_to_submitter(self):
        """The threaded executor copies the context, so a span opened on
        a worker becomes a child of the span that submitted the work."""
        runtime = Runtime(backend="threads", max_workers=4)
        tracer = Tracer()

        def work(index):
            with span(f"task-{index}"):
                time.sleep(0.001)
            return index

        try:
            with tracer.activated(), span("fan-out"):
                results = runtime.executor.map_ordered(work, range(8))
        finally:
            runtime.close()
        assert results == list(range(8))
        root = tracer.root
        assert root.name == "fan-out"
        assert sorted(child.name for child in root.children) == sorted(
            f"task-{index}" for index in range(8)
        )
        assert all(
            child.parent_id == root.span_id for child in root.children
        )

    def test_exception_recorded_as_error_attribute(self):
        tracer = Tracer()
        with tracer.activated():
            with pytest.raises(ValueError):
                with span("doomed"):
                    raise ValueError("boom")
        assert tracer.root.attributes["error"] == "ValueError: boom"

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.activated():
            with span("invisible"):
                pass
        assert tracer.root is None


class TestRunTraced:
    def test_untraced_run_has_no_trace(self, small_example):
        outcome = default_efes().run(
            small_example, ResultQuality.HIGH_QUALITY
        )
        assert outcome.trace is None

    def test_traced_run_covers_the_pipeline_once(self, small_example):
        started = time.perf_counter()
        outcome = default_efes().run(
            small_example, ResultQuality.HIGH_QUALITY, trace=True
        )
        wall = time.perf_counter() - started
        root = outcome.trace
        assert root is not None
        assert root.name == f"run:{small_example.name}"
        # The root total approximates the observed wall-clock (5% plus a
        # small absolute allowance for interpreter noise on tiny runs).
        assert abs(root.total_seconds - wall) <= 0.05 * wall + 0.010
        names = [node.name for node in root.walk()]
        for stage in (
            "assess",
            "estimate",
            "plan",
            "price",
            "detector:mapping",
            "detector:structure",
            "detector:values",
            "planner:mapping",
            "planner:structure",
            "planner:values",
        ):
            assert names.count(stage) == 1, stage

    def test_profile_spans_annotate_cache_hits(self, small_example):
        runtime = Runtime(backend="serial")
        efes = default_efes(runtime=runtime)
        try:
            cold = efes.run(
                small_example, ResultQuality.HIGH_QUALITY, trace=True
            )
            warm = efes.run(
                small_example, ResultQuality.HIGH_QUALITY, trace=True
            )
        finally:
            runtime.close()
        cold_profiles = cold.trace.find("profile")
        warm_profiles = warm.trace.find("profile")
        assert cold_profiles and warm_profiles
        assert not any(
            node.attributes["cache_hit"] for node in cold_profiles
        )
        assert all(node.attributes["cache_hit"] for node in warm_profiles)


# ----------------------------------------------------------------------
# Span serialisation + rendering
# ----------------------------------------------------------------------


class TestSpanCodec:
    def test_round_trip_through_core_serialize(self, small_example):
        outcome = default_efes().run(
            small_example, ResultQuality.HIGH_QUALITY, trace=True
        )
        doc = span_to_dict(outcome.trace)
        json.dumps(doc)  # JSON-compatible all the way down
        restored = span_from_dict(doc)
        assert span_to_dict(restored) == doc
        assert [node.name for node in restored.walk()] == [
            node.name for node in outcome.trace.walk()
        ]

    def test_malformed_document_raises_serialization_error(self):
        with pytest.raises(SerializationError):
            span_from_dict({"name": "orphan"})  # missing ids/duration

    def test_render_span_tree_alignment_and_annotations(self):
        tracer = Tracer()
        with tracer.activated():
            with span("root"):
                with span("hit", cache_hit=True):
                    pass
                with span("miss", cache_hit=False):
                    pass
        text = render_span_tree(tracer.root)
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert "├─ hit" in lines[1] and "[cache hit]" in lines[1]
        assert "└─ miss" in lines[2] and "[cache hit]" not in lines[2]
        # Every row carries aligned total/self columns.
        columns = {line.index("total ") for line in lines}
        assert len(columns) == 1


# ----------------------------------------------------------------------
# Histograms
# ----------------------------------------------------------------------


class TestHistograms:
    def test_quantiles_bracket_the_data(self):
        histogram = Histogram("latency_seconds")
        for value in (0.001, 0.002, 0.004, 0.008, 0.100):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot.count == 5
        assert snapshot.min == 0.001
        assert snapshot.max == 0.100
        assert snapshot.p50 <= snapshot.p95 <= snapshot.p99
        assert 0.001 <= snapshot.p50 <= 0.100
        assert snapshot.quantile(1.0) == pytest.approx(0.100)

    def test_cumulative_buckets_are_monotone_and_end_at_count(self):
        histogram = Histogram("latency_seconds")
        for exponent in range(12):
            histogram.observe(1e-6 * (3**exponent % 97))
        pairs = histogram.snapshot().cumulative_buckets()
        counts = [cumulative for _, cumulative in pairs]
        assert counts == sorted(counts)
        assert pairs[-1][0] == float("inf")
        assert pairs[-1][1] == 12

    def test_labelled_series_are_distinct(self):
        metrics = RuntimeMetrics()
        metrics.observe("detector_seconds", 0.1, detector="mapping")
        metrics.observe("detector_seconds", 0.2, detector="values")
        metrics.observe("detector_seconds", 0.3, detector="values")
        mapping = metrics.histogram("detector_seconds", detector="mapping")
        values = metrics.histogram("detector_seconds", detector="values")
        assert mapping.count == 1
        assert values.count == 2
        assert metrics.histogram("detector_seconds", detector="nope") is None

    def test_to_dict_reports_quantiles_and_sparse_buckets(self):
        histogram = Histogram("x", labels=(("stage", "assess"),))
        histogram.observe(0.5)
        doc = histogram.snapshot().to_dict()
        assert doc["labels"] == {"stage": "assess"}
        assert doc["count"] == 1
        assert set(doc["quantiles"]) == {"p50", "p95", "p99"}
        assert len(doc["buckets"]) == 1  # only the non-empty bucket


# ----------------------------------------------------------------------
# Stage timings: work vs wall vs max
# ----------------------------------------------------------------------


class TestStageTimings:
    def test_wall_clock_below_summed_work_under_concurrency(self):
        metrics = RuntimeMetrics()

        def busy():
            with metrics.time_stage("overlap"):
                time.sleep(0.05)

        threads = [threading.Thread(target=busy) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        timing = metrics.stage("overlap")
        assert timing.calls == 4
        assert timing.seconds >= 0.9 * 4 * 0.05  # summed work
        assert timing.wall_seconds < timing.seconds  # overlapped latency
        assert timing.max_seconds <= timing.seconds
        assert timing.mean_seconds == pytest.approx(
            timing.seconds / 4
        )

    def test_snapshot_to_dict_includes_mean_and_timestamp(self):
        metrics = RuntimeMetrics()
        metrics.record_stage("assess", 2.0)
        metrics.record_stage("assess", 4.0)
        before = time.time()
        doc = metrics.snapshot().to_dict()
        assert doc["stages"]["assess"]["mean_seconds"] == pytest.approx(3.0)
        assert doc["stages"]["assess"]["max_seconds"] == pytest.approx(4.0)
        assert before - 1.0 <= doc["timestamp"] <= time.time() + 1.0
        # record_stage feeds the stage_seconds histogram family too.
        assert any(
            h["name"] == "stage_seconds" and h["count"] == 2
            for h in doc["histograms"]
        )


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------


class TestPrometheusText:
    def test_label_values_are_escaped(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'
        metrics = RuntimeMetrics()
        metrics.observe("weird_seconds", 0.1, label='quo"te\nnl')
        text = prometheus_text(metrics.snapshot())
        assert 'label="quo\\"te\\nnl"' in text

    def test_histogram_exposition_is_valid(self):
        metrics = RuntimeMetrics()
        for value in (0.001, 0.010, 0.100):
            metrics.observe("stage_seconds", value, stage="assess")
        text = prometheus_text(metrics.snapshot())
        assert "# TYPE repro_stage_seconds histogram" in text
        bucket_lines = [
            line
            for line in text.splitlines()
            if line.startswith("repro_stage_seconds_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts)  # cumulative => monotone
        assert bucket_lines[-1].rsplit(" ", 1)[1] == "3"
        assert 'le="+Inf"' in bucket_lines[-1]
        assert 'repro_stage_seconds_count{stage="assess"} 3' in text
        assert "repro_stage_seconds_sum" in text
        assert 'quantile="0.5"' in text
        assert "repro_metrics_snapshot_timestamp_seconds" in text

    def test_counters_stages_and_extra_gauges(self):
        metrics = RuntimeMetrics()
        metrics.increment("cache_hits", 3)
        metrics.record_stage("assess", 1.5)
        text = prometheus_text(
            metrics.snapshot(), extra_gauges={"queue_depth": 2.0}
        )
        assert "repro_cache_hits_total 3" in text
        assert 'repro_stage_work_seconds{stage="assess"} 1.5' in text
        assert 'repro_stage_calls_total{stage="assess"} 1' in text
        assert "repro_queue_depth 2.0" in text


# ----------------------------------------------------------------------
# Event log + correlation IDs
# ----------------------------------------------------------------------


class TestEventLog:
    def test_emit_binds_the_context_correlation_id(self):
        log = EventLog()
        assert current_correlation_id() is None
        with correlation_scope("req-42"):
            assert current_correlation_id() == "req-42"
            log.emit("job.started", job_id="j1")
        log.emit("job.started", job_id="j2")
        records = log.records(correlation_id="req-42")
        assert len(records) == 1
        assert records[0]["job_id"] == "j1"
        assert records[0]["seq"] == 1

    def test_jsonl_file_sink(self, tmp_path):
        path = tmp_path / "events" / "service.jsonl"
        log = EventLog(path=path)
        log.emit("a", n=1)
        log.emit("b", n=2)
        lines = path.read_text(encoding="utf-8").splitlines()
        assert [json.loads(line)["event"] for line in lines] == ["a", "b"]

    def test_logging_adapter_routes_stdlib_records(self):
        import logging

        log = EventLog()
        logger = logging.getLogger("repro.test.observability")
        logger.setLevel(logging.INFO)
        handler = log.logging_handler()
        logger.addHandler(handler)
        try:
            with correlation_scope("req-log"):
                logger.info("hello %s", "world")
        finally:
            logger.removeHandler(handler)
        (record,) = log.records(event="log")
        assert record["message"] == "hello world"
        assert record["correlation_id"] == "req-log"

    def test_memory_ring_is_bounded(self):
        log = EventLog(max_memory_events=3)
        for index in range(10):
            log.emit("tick", index=index)
        records = log.records()
        assert len(records) == 3
        assert [record["index"] for record in records] == [7, 8, 9]


# ----------------------------------------------------------------------
# Service-level observability (HTTP -> scheduler -> event log)
# ----------------------------------------------------------------------


@pytest.fixture()
def service():
    from repro.service import JobScheduler, make_server

    scheduler = JobScheduler(workers=2, max_queue=8)
    server = make_server(scheduler, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, scheduler
    finally:
        server.shutdown()
        server.server_close()
        scheduler.close(wait=True, timeout=5.0)
        thread.join(timeout=5.0)


class TestServiceObservability:
    def test_correlation_id_flows_from_http_to_event_log(self, service):
        from repro.service import ServiceClient

        server, scheduler = service
        client = ServiceClient(server.url)
        job = client.submit(
            "s4-s4", kind="assess", correlation_id="req-e2e"
        )
        assert job["correlation_id"] == "req-e2e"
        client.result(job["id"], deadline=120)
        events = scheduler.events.records(correlation_id="req-e2e")
        kinds = [record["event"] for record in events]
        assert kinds[0] == "job.submitted"
        assert "job.started" in kinds
        assert kinds[-1] == "job.finished"
        assert all(
            record["correlation_id"] == "req-e2e" for record in events
        )

    def test_correlation_id_defaults_to_the_job_id(self, service):
        from repro.service import ServiceClient

        server, scheduler = service
        client = ServiceClient(server.url)
        job = client.submit("s4-s4", kind="assess", seed=2)
        assert job["correlation_id"] == job["id"]

    def test_trace_endpoint_returns_the_job_span_tree(self, service):
        from repro.service import ServiceClient

        server, _ = service
        client = ServiceClient(server.url)
        job = client.submit("s4-s4", kind="estimate", quality="low")
        client.result(job["id"], deadline=120)
        doc = client.trace(job["id"])
        root = span_from_dict(doc)
        assert root.name == f"service.job:{job['id']}"
        names = [node.name for node in root.walk()]
        assert "assess" in names
        assert "serialize" in names

    def test_trace_endpoint_unknown_job_is_404(self, service):
        from repro.service import ServiceClient, ServiceError

        server, _ = service
        client = ServiceClient(server.url)
        with pytest.raises(ServiceError) as excinfo:
            client.trace("nope")
        assert excinfo.value.status == 404

    def test_healthz_reports_workers_and_store(self, service):
        from repro.service import ServiceClient

        server, _ = service
        client = ServiceClient(server.url)
        doc = client.healthz()
        assert doc["workers"]["total"] == 2
        assert 0 <= doc["workers"]["busy"] <= 2
        assert 0.0 <= doc["workers"]["utilisation"] <= 1.0
        assert doc["store"] == {"entries": 0, "spooled": 0, "quarantined": 0}
        assert doc["health"]["state"] == "healthy"

    def test_metrics_content_negotiation(self, service):
        from repro.service import ServiceClient

        server, _ = service
        client = ServiceClient(server.url)
        job = client.submit("s4-s4", kind="assess", seed=3)
        client.result(job["id"], deadline=120)
        text = client.metrics_text()
        assert "# TYPE repro_job_phase_seconds histogram" in text
        assert 'phase="running"' in text
        assert "repro_queue_depth" in text
        assert "repro_workers_total 2.0" in text
        # The default JSON face carries the same snapshot.
        doc = client.metrics()
        assert doc["counters"]["jobs_completed"] >= 1
        assert any(
            h["name"] == "job_phase_seconds" for h in doc["histograms"]
        )


# ----------------------------------------------------------------------
# CLI surfacing
# ----------------------------------------------------------------------


class TestTraceCli:
    def test_trace_prints_span_tree_and_writes_json(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        output = tmp_path / "trace.json"
        assert main(["trace", "s4-s4", "--output", str(output)]) == 0
        out = capsys.readouterr().out
        assert "Trace of s4-s4" in out
        assert "run:s4-s4" in out
        for stage in ("assess", "estimate", "plan", "price"):
            assert stage in out
        for name in ("mapping", "structure", "values"):
            assert f"detector:{name}" in out
            assert f"planner:{name}" in out
        doc = json.loads(output.read_text(encoding="utf-8"))
        assert doc["name"] == "run:s4-s4"

    def test_trace_domain_alias_covers_every_scenario(self, capsys):
        from repro.cli import main
        from repro.scenarios import music_scenarios

        assert main(["trace", "music", "--quality", "low"]) == 0
        out = capsys.readouterr().out
        for scenario in music_scenarios(1):
            assert f"run:{scenario.name}" in out


class TestExperimentTraces:
    def test_evaluate_domain_writes_one_trace_file_per_scenario(
        self, tmp_path
    ):
        from repro.experiments import evaluate_domain
        from repro.scenarios import bibliographic_scenarios

        scenarios = bibliographic_scenarios(1)[:2]
        evaluate_domain(scenarios, trace_dir=tmp_path)
        for scenario in scenarios:
            path = tmp_path / f"{scenario.name}.trace.json"
            assert path.exists()
            root = span_from_dict(
                json.loads(path.read_text(encoding="utf-8"))
            )
            assert root.name == f"scenario:{scenario.name}"
            assert root.find("assess")


# ----------------------------------------------------------------------
# Cross-process trace propagation
# ----------------------------------------------------------------------


class TestSpanContext:
    def test_capture_is_none_without_a_tracer(self):
        assert SpanContext.capture() is None
        assert telemetry_session(None) is NOOP_TELEMETRY_SESSION

    def test_capture_snapshots_the_active_trace(self):
        tracer = Tracer()
        with tracer.activated(), correlation_scope("req-ctx"):
            with span("parent"):
                context = SpanContext.capture(backend="process")
        assert context.trace_id == tracer.trace_id
        assert context.parent_span_id == tracer.root.span_id
        assert context.correlation_id == "req-ctx"
        assert context.backend == "process"

    def test_round_trips_through_dict(self):
        tracer = Tracer()
        with tracer.activated():
            with span("parent"):
                context = SpanContext.capture()
        assert SpanContext.from_dict(context.to_dict()) == context

    def test_from_dict_rejects_malformed_documents(self):
        with pytest.raises(ValueError):
            SpanContext.from_dict({"nope": 1})


class TestWorkerTelemetrySession:
    def _context(self):
        tracer = Tracer()
        with tracer.activated():
            with span("assess"):
                return SpanContext.capture()

    def test_collects_spans_metrics_events_and_resources(self):
        context = self._context()
        metrics = RuntimeMetrics()
        session = telemetry_session(context, metrics=metrics)
        with session:
            session.emit("worker.task", stage="detector")
            metrics.increment("cache_misses")
            with span("detector:test", backend="process"):
                with span("profile"):
                    pass
        blob = session.telemetry
        assert blob.pid == os.getpid()
        assert [doc["name"] for doc in blob.spans] == ["detector:test"]
        assert blob.spans[0]["trace_id"] == context.trace_id
        assert blob.spans[0]["children"][0]["name"] == "profile"
        assert blob.metrics.counter("cache_misses") == 1
        assert [record["event"] for record in blob.events] == ["worker.task"]
        assert blob.resources["pid"] == os.getpid()

    def test_empty_worker_metrics_are_not_shipped(self):
        context = self._context()
        session = telemetry_session(context, metrics=RuntimeMetrics())
        with session:
            pass
        assert session.telemetry.metrics is None
        assert session.telemetry.spans == []

    def test_detaches_from_an_inherited_open_span(self):
        # Regression: a forked pool worker inherits the parent's
        # contextvars as of fork time, including the span that was open
        # when the pool spawned.  The session must detach, or worker
        # spans would attach to that stale copy and never register as
        # roots of the session tracer (shipping an empty span list).
        tracer = Tracer()
        with tracer.activated():
            with span("assess"):
                context = SpanContext.capture()
                session = telemetry_session(context)
                with session:
                    with span("detector:inner"):
                        pass
        assert [doc["name"] for doc in session.telemetry.spans] == [
            "detector:inner"
        ]
        # ... and the parent tree must not have absorbed the worker span.
        assert tracer.root.children == []


class TestTelemetryMerge:
    def _worker_blob(self, context):
        worker_metrics = RuntimeMetrics()
        session = telemetry_session(context, metrics=worker_metrics)
        with session:
            worker_metrics.increment("cache_hits")
            session.emit("worker.task", stage="detector")
            with span("detector:worker", backend="process", pid=1234):
                with span("profile"):
                    pass
        return session.telemetry

    def test_grafts_worker_spans_under_the_current_span(self):
        tracer = Tracer()
        metrics = RuntimeMetrics()
        events = EventLog()
        with tracer.activated():
            with span("assess"):
                context = SpanContext.capture()
                blob = self._worker_blob(context)
                assert (
                    merge_worker_telemetry(blob, metrics, events=events)
                    is True
                )
        root = tracer.root
        assert [child.name for child in root.children] == ["detector:worker"]
        detector = root.children[0]
        assert detector.attributes["backend"] == "process"
        assert detector.parent_id == root.span_id
        assert [child.name for child in detector.children] == ["profile"]
        # Grafting rewrites every shipped node onto the parent's trace.
        assert {node.trace_id for node in root.walk()} == {tracer.trace_id}
        assert metrics.counter("worker_telemetry_merged") == 1
        assert metrics.counter("cache_hits") == 1
        assert any(
            record["event"] == "worker.task" for record in events.records()
        )
        # The worker's resource sample lands as pid-labelled gauges.
        pid = str(blob.pid)
        assert metrics.gauge("worker_rss_bytes", pid=pid) > 0

    def test_none_telemetry_is_a_noop(self):
        metrics = RuntimeMetrics()
        assert merge_worker_telemetry(None, metrics) is False
        assert metrics.counter("worker_telemetry_merged") == 0

    def test_malformed_blob_is_dropped_whole(self):
        tracer = Tracer()
        metrics = RuntimeMetrics()
        with tracer.activated():
            with span("assess"):
                context = SpanContext.capture()
                garbage = WorkerTelemetry(
                    context=context,
                    pid=0,
                    spans=["not a span document"],
                )
                assert merge_worker_telemetry(garbage, metrics) is False
        # The torn blob never touched the parent tree and was counted.
        assert tracer.root.children == []
        assert metrics.counter("worker_telemetry_dropped") == 1
        assert metrics.counter("worker_telemetry_merged") == 0

    def test_side_channels_fold_even_without_a_recording_parent(self):
        tracer = Tracer()
        with tracer.activated():
            with span("assess"):
                context = SpanContext.capture()
        blob = self._worker_blob(context)
        metrics = RuntimeMetrics()
        # No span open here: spans cannot graft, but the worker's
        # metrics still fold into the parent's counters.
        assert merge_worker_telemetry(blob, metrics) is False
        assert metrics.counter("cache_hits") == 1
        assert metrics.counter("worker_telemetry_merged") == 1


class TestCrossProcessTracing:
    def test_process_run_yields_one_seamless_tree(self, small_example):
        runtime = Runtime(backend="process", max_workers=2)
        efes = default_efes(runtime=runtime)
        outcome = efes.run(
            small_example, ResultQuality.HIGH_QUALITY, trace=True
        )
        root = outcome.trace
        nodes = list(root.walk())
        # One trace id across the whole tree, parent and workers alike.
        assert {node.trace_id for node in nodes} == {root.trace_id}
        worker_spans = [
            node
            for node in nodes
            if node.attributes.get("backend") == "process"
            and node.attributes.get("pid")
        ]
        assert worker_spans, "no worker-side spans were merged"
        detectors = {
            node.name
            for node in worker_spans
            if node.name.startswith("detector:")
        }
        assert detectors == {
            "detector:mapping",
            "detector:structure",
            "detector:values",
        }
        # Worker detector spans hang under the parent's assess span.
        assess = root.find("assess")[0]
        for node in worker_spans:
            if node.name.startswith("detector:"):
                assert node.parent_id == assess.span_id
        assert runtime.metrics.counter("worker_telemetry_merged") >= 3
        assert runtime.metrics.counter("worker_telemetry_dropped") == 0
        assert runtime.metrics.counter("process_fallbacks") == 0
        runtime.close()


class TestFallbackReasons:
    def test_reason_classification(self):
        import pickle
        from concurrent.futures.process import BrokenProcessPool

        from repro.resilience.faults import FaultError
        from repro.runtime.spool import SpoolError

        reason = Runtime._fallback_reason
        assert reason(FaultError("injected")) == "fault"
        assert reason(BrokenProcessPool("worker died")) == "broken_pool"
        assert reason(SpoolError("torn read")) == "spool_io"
        assert reason(pickle.PicklingError("no")) == "codec"
        assert reason(AttributeError("lookup failed")) == "codec"
        assert reason(RuntimeError("anything else")) == "other"

    def test_fallback_increments_labelled_counter_and_emits_event(self):
        from repro.resilience.faults import FaultError

        runtime = Runtime(backend="process", max_workers=2)
        runtime.events = EventLog()
        runtime._note_process_fallback(FaultError("boom"), stage="detectors")
        assert (
            runtime.metrics.counter("process_fallbacks", reason="fault") == 1
        )
        # The unlabelled read still sums the family.
        assert runtime.metrics.counter("process_fallbacks") == 1
        record = runtime.events.records()[-1]
        assert record["event"] == "process.fallback"
        assert record["stage"] == "detectors"
        assert record["reason"] == "fault"
        assert "FaultError" in record["error"]
        runtime.close()


# ----------------------------------------------------------------------
# Resource telemetry
# ----------------------------------------------------------------------


class TestResourceTelemetry:
    def test_sample_resources_document(self):
        doc = sample_resources()
        assert doc["pid"] == os.getpid()
        assert doc["rss_bytes"] > 0
        assert doc["cpu_seconds"] >= 0.0
        assert doc["cpu_seconds"] == pytest.approx(
            doc["cpu_user_seconds"] + doc["cpu_system_seconds"]
        )
        for key in ("gc_gen0_collections", "spool_reads", "spool_bytes_read"):
            assert key in doc

    def test_resource_sampler_sets_process_gauges(self):
        metrics = RuntimeMetrics()
        sampler = ResourceSampler(metrics)
        doc = sampler.sample()
        assert metrics.gauge("process_rss_bytes") == float(doc["rss_bytes"])
        assert metrics.gauge("process_cpu_seconds") is not None
        summary = sampler.summary()
        assert summary["pid"] == os.getpid()
        assert summary["rss_bytes"] > 0
        assert sampler.samples_taken == 2

    def test_publish_worker_resources_labels_by_pid(self):
        metrics = RuntimeMetrics()
        publish_worker_resources(
            metrics, {"pid": 1234, "rss_bytes": 4096, "cpu_seconds": 1.5}
        )
        assert metrics.gauge("worker_rss_bytes", pid="1234") == 4096.0
        assert metrics.gauge("worker_cpu_seconds", pid="1234") == 1.5
        # The pid is a label, never a gauge of its own.
        assert metrics.gauge("worker_pid", pid="1234") is None


# ----------------------------------------------------------------------
# SLO burn-rate monitoring
# ----------------------------------------------------------------------


class TestRollingCounter:
    def test_totals_respect_the_window(self):
        now = [1000.0]
        counter = RollingCounter(
            3600.0, bucket_seconds=10.0, clock=lambda: now[0]
        )
        counter.record(True, 5)
        counter.record(False)
        now[0] += 400.0
        counter.record(True, 2)
        assert counter.totals(300.0) == (2, 0)
        assert counter.totals(3600.0) == (7, 1)
        # Past the horizon everything expires from the windows ...
        now[0] += 4000.0
        counter.record(True)
        assert counter.totals(3600.0) == (1, 0)
        # ... but lifetime totals never do.
        assert counter.total_good == 8
        assert counter.total_bad == 1

    def test_rejects_degenerate_geometry(self):
        with pytest.raises(ValueError):
            RollingCounter(5.0, bucket_seconds=10.0)


class TestSLOMonitor:
    def _monitor(self, now):
        return SLOMonitor(clock=lambda: now[0])

    def test_healthy_stream_is_ok(self):
        now = [5000.0]
        monitor = self._monitor(now)
        for _ in range(50):
            monitor.record_job(ok=True, duration_seconds=0.1)
        assert [status.state for status in monitor.evaluate()] == [
            "ok",
            "ok",
            "ok",
        ]
        assert monitor.worst_state() == "ok"

    def test_sustained_failures_burn_critical(self):
        now = [5000.0]
        monitor = self._monitor(now)
        for _ in range(10):
            monitor.record_job(ok=False)
        statuses = {status.name: status for status in monitor.evaluate()}
        availability = statuses["availability"]
        assert availability.state == "critical"
        assert availability.fast["burn_rate"] >= CRITICAL_BURN_RATE
        assert availability.slow["burn_rate"] >= CRITICAL_BURN_RATE
        # Failures never double-dip into the latency/degradation budgets.
        assert statuses["job_latency"].state == "ok"
        assert statuses["degradation"].state == "ok"
        assert monitor.worst_state() == "critical"

    def test_warning_band_requires_both_windows(self):
        now = [5000.0]
        monitor = self._monitor(now)
        # Error rate 5/1000 against a 0.1% budget: burn 5.0, inside the
        # warning band on both windows.
        monitor.record("availability", False, count=5)
        monitor.record("availability", True, count=995)
        status = {s.name: s for s in monitor.evaluate()}["availability"]
        assert status.state == "warning"
        assert 3.0 <= status.fast["burn_rate"] < CRITICAL_BURN_RATE
        # Age the burst out of the fast window: one hot window alone
        # must not hold the warning.
        now[0] += 600.0
        status = {s.name: s for s in monitor.evaluate()}["availability"]
        assert status.fast["events"] == 0
        assert status.state == "ok"

    def test_latency_and_degradation_judge_successful_jobs_only(self):
        now = [5000.0]
        monitor = self._monitor(now)
        monitor.record_job(ok=True, duration_seconds=45.0)
        monitor.record_job(ok=True, duration_seconds=1.0, degraded=True)
        statuses = {status.name: status for status in monitor.evaluate()}
        assert statuses["availability"].total_bad == 0
        assert statuses["job_latency"].total_bad == 1
        assert statuses["degradation"].total_bad == 1

    def test_spec_and_monitor_validation(self):
        with pytest.raises(ValueError):
            SLOSpec("bad", objective=1.5)
        with pytest.raises(ValueError):
            SLOMonitor((SLOSpec("dup", 0.9), SLOSpec("dup", 0.9)))

    def test_concurrent_settlement_and_evaluation_never_deadlock(self):
        """The ``JobScheduler.close()`` interleaving: worker threads are
        still settling (``record_job``) while health/status readers call
        ``worst_state()``/``to_dict()`` — both of which re-enter the
        monitor lock through ``evaluate``.  A non-reentrant lock hangs
        here; the join timeout turns that hang into a failure."""
        monitor = SLOMonitor()
        stop = threading.Event()
        errors: list[BaseException] = []

        def hammer(operation):
            try:
                while not stop.is_set():
                    operation()
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append(exc)

        threads = [
            threading.Thread(
                target=hammer,
                args=(
                    lambda: monitor.record_job(
                        ok=True, duration_seconds=0.01
                    ),
                ),
                daemon=True,
            )
            for _ in range(2)
        ] + [
            threading.Thread(
                target=hammer, args=(monitor.worst_state,), daemon=True
            ),
            threading.Thread(
                target=hammer, args=(monitor.to_dict,), daemon=True
            ),
        ]
        for thread in threads:
            thread.start()
        time.sleep(0.3)
        stop.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert not any(
            thread.is_alive() for thread in threads
        ), "SLO monitor deadlocked under concurrent settle + evaluate"
        assert not errors, errors
        assert monitor.worst_state() in ("ok", "warning", "critical")

    def test_to_dict_is_the_slo_document_body(self):
        now = [5000.0]
        monitor = self._monitor(now)
        monitor.record_job(ok=True, duration_seconds=0.5)
        doc = monitor.to_dict()
        assert doc["warn_burn_rate"] == 3.0
        assert doc["critical_burn_rate"] == CRITICAL_BURN_RATE
        names = [entry["name"] for entry in doc["slos"]]
        assert names == ["availability", "job_latency", "degradation"]
        availability = doc["slos"][0]
        assert availability["totals"] == {"good": 1, "bad": 0, "events": 1}
        assert set(availability["windows"]) == {"fast", "slow"}


# ----------------------------------------------------------------------
# Service-level SLOs, worker gauges, and the slo CLI
# ----------------------------------------------------------------------


class TestServiceSLO:
    def test_slo_endpoint_reports_burn_rates_and_health(self, service):
        from repro.service import ServiceClient

        server, _ = service
        client = ServiceClient(server.url)
        job = client.submit("s4-s4", kind="assess")
        client.result(job["id"], deadline=120)
        doc = client.slo()
        assert doc["state"] == "ok"
        assert doc["health"]["state"] == "healthy"
        availability = doc["slos"][0]
        assert availability["name"] == "availability"
        assert availability["state"] == "ok"
        assert availability["totals"]["good"] >= 1
        assert availability["windows"]["fast"]["burn_rate"] == 0.0

    def test_critical_burn_degrades_health(self, service):
        from repro.service import ServiceClient

        server, scheduler = service
        client = ServiceClient(server.url)
        for _ in range(5):
            scheduler.slo.record_job(ok=False)
        doc = client.slo()
        assert doc["state"] == "critical"
        assert doc["health"]["state"] == "degraded"
        assert "slo:availability" in doc["health"]["reasons"]
        health = client.healthz()
        assert health["health"]["slo"]["states"]["availability"] == "critical"

    def test_warning_burn_is_advisory_not_degrading(self, service):
        from repro.service import ServiceClient

        server, scheduler = service
        client = ServiceClient(server.url)
        scheduler.slo.record("availability", False, count=5)
        scheduler.slo.record("availability", True, count=995)
        doc = client.slo()
        assert doc["state"] == "warning"
        assert doc["health"]["state"] == "slo-warning"
        assert "slo:availability" in doc["health"]["warnings"]
        assert doc["health"]["reasons"] == []

    def test_healthz_embeds_slo_and_resource_summaries(self, service):
        from repro.service import ServiceClient

        server, _ = service
        client = ServiceClient(server.url)
        doc = client.healthz()
        assert doc["health"]["slo"]["state"] == "ok"
        assert set(doc["health"]["slo"]["states"]) == {
            "availability",
            "job_latency",
            "degradation",
        }
        resources = doc["health"]["resources"]
        assert resources["pid"] == os.getpid()
        assert resources["rss_bytes"] > 0

    def test_metrics_expose_resource_and_slo_gauges(self, service):
        from repro.service import ServiceClient

        server, _ = service
        client = ServiceClient(server.url)
        job = client.submit("s4-s4", kind="assess", seed=5)
        client.result(job["id"], deadline=120)
        text = client.metrics_text()
        assert "repro_process_rss_bytes" in text
        assert "repro_process_cpu_seconds" in text
        assert "repro_cache_hit_rate" in text
        assert "repro_scheduler_worker_utilisation" in text
        assert "repro_slo_burn_rate" in text
        assert 'slo="availability",window="fast"' in text

    def test_process_executor_stats_feed_the_gauges(self):
        runtime = Runtime(backend="process", max_workers=2)
        try:
            stats = runtime.executor.stats()
        finally:
            runtime.close()
        assert stats["max_workers"] == 2
        for key in (
            "dispatches",
            "pooled_tasks",
            "inline_tasks",
            "peak_inflight",
            "pool_live",
        ):
            assert key in stats


class TestSloCli:
    def test_slo_table_and_json(self, service, capsys):
        from repro.cli import main

        server, _ = service
        assert main(["slo", "--url", server.url]) == 0
        out = capsys.readouterr().out
        for name in ("availability", "job_latency", "degradation"):
            assert name in out
        assert "overall: ok (health: healthy)" in out
        assert main(["slo", "--url", server.url, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["state"] == "ok"

    def test_slo_exit_code_flags_critical_burn(self, service, capsys):
        from repro.cli import EXIT_DEGRADED, main

        server, scheduler = service
        for _ in range(5):
            scheduler.slo.record_job(ok=False)
        assert main(["slo", "--url", server.url]) == EXIT_DEGRADED
        out = capsys.readouterr().out
        assert "critical" in out

    def test_slo_unreachable_service_fails_cleanly(self, capsys):
        from repro.cli import main

        assert main(["slo", "--url", "http://127.0.0.1:1"]) == 1
        assert "cannot fetch SLOs" in capsys.readouterr().err


class TestTraceCliBackend:
    """``efes trace --backend`` — satellite of the propagation tentpole."""

    def _walk(self, doc):
        yield doc
        for child in doc.get("children", ()):
            yield from self._walk(child)

    def _worker_spans(self, path):
        doc = json.loads(path.read_text(encoding="utf-8"))
        return [
            node
            for node in self._walk(doc)
            if node.get("attributes", {}).get("backend") == "process"
        ]

    def test_backend_flag_selects_the_process_backend(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        output = tmp_path / "trace.json"
        assert (
            main(
                [
                    "trace",
                    "s4-s4",
                    "--backend",
                    "process",
                    "--workers",
                    "2",
                    "--output",
                    str(output),
                ]
            )
            == 0
        )
        workers = self._worker_spans(output)
        assert workers, "process run should merge worker-side spans"
        assert all(node["attributes"].get("pid") for node in workers)
        out = capsys.readouterr().out
        assert "run:s4-s4" in out

    def test_trace_honours_the_backend_env_var(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.cli import main
        from repro.runtime import BACKEND_ENV_VAR

        monkeypatch.setenv(BACKEND_ENV_VAR, "process")
        output = tmp_path / "trace.json"
        assert main(["trace", "s4-s4", "--output", str(output)]) == 0
        assert self._worker_spans(output)

    def test_explicit_flag_overrides_the_env_var(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.cli import main
        from repro.runtime import BACKEND_ENV_VAR

        monkeypatch.setenv(BACKEND_ENV_VAR, "process")
        output = tmp_path / "trace.json"
        assert (
            main(
                [
                    "trace",
                    "s4-s4",
                    "--backend",
                    "serial",
                    "--output",
                    str(output),
                ]
            )
            == 0
        )
        assert self._worker_spans(output) == []
