"""Tracing, histograms, event logs, and their exporters."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.core import ResultQuality, default_efes
from repro.core.serialize import (
    SerializationError,
    span_from_dict,
    span_to_dict,
)
from repro.observability import (
    EventLog,
    Histogram,
    Tracer,
    correlation_scope,
    current_correlation_id,
    escape_label_value,
    prometheus_text,
    render_span_tree,
    span,
)
from repro.runtime import Runtime, RuntimeMetrics


# ----------------------------------------------------------------------
# Spans and tracers
# ----------------------------------------------------------------------


class TestTracing:
    def test_disabled_by_default_returns_shared_noop(self):
        first = span("anything")
        second = span("anything else")
        assert first is second
        assert not first.is_recording
        with first as handle:
            handle.set_attribute("ignored", True)  # must not raise

    def test_span_tree_nesting(self):
        tracer = Tracer()
        with tracer.activated():
            with span("root"):
                with span("child-a"):
                    with span("grandchild"):
                        pass
                with span("child-b"):
                    pass
        root = tracer.root
        assert root.name == "root"
        assert [child.name for child in root.children] == [
            "child-a",
            "child-b",
        ]
        assert root.children[0].children[0].name == "grandchild"
        assert all(
            node.duration_seconds is not None for node in root.walk()
        )
        assert all(
            node.trace_id == root.trace_id for node in root.walk()
        )

    def test_spans_opened_on_worker_threads_attach_to_submitter(self):
        """The threaded executor copies the context, so a span opened on
        a worker becomes a child of the span that submitted the work."""
        runtime = Runtime(backend="threads", max_workers=4)
        tracer = Tracer()

        def work(index):
            with span(f"task-{index}"):
                time.sleep(0.001)
            return index

        try:
            with tracer.activated(), span("fan-out"):
                results = runtime.executor.map_ordered(work, range(8))
        finally:
            runtime.close()
        assert results == list(range(8))
        root = tracer.root
        assert root.name == "fan-out"
        assert sorted(child.name for child in root.children) == sorted(
            f"task-{index}" for index in range(8)
        )
        assert all(
            child.parent_id == root.span_id for child in root.children
        )

    def test_exception_recorded_as_error_attribute(self):
        tracer = Tracer()
        with tracer.activated():
            with pytest.raises(ValueError):
                with span("doomed"):
                    raise ValueError("boom")
        assert tracer.root.attributes["error"] == "ValueError: boom"

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.activated():
            with span("invisible"):
                pass
        assert tracer.root is None


class TestRunTraced:
    def test_untraced_run_has_no_trace(self, small_example):
        outcome = default_efes().run(
            small_example, ResultQuality.HIGH_QUALITY
        )
        assert outcome.trace is None

    def test_traced_run_covers_the_pipeline_once(self, small_example):
        started = time.perf_counter()
        outcome = default_efes().run(
            small_example, ResultQuality.HIGH_QUALITY, trace=True
        )
        wall = time.perf_counter() - started
        root = outcome.trace
        assert root is not None
        assert root.name == f"run:{small_example.name}"
        # The root total approximates the observed wall-clock (5% plus a
        # small absolute allowance for interpreter noise on tiny runs).
        assert abs(root.total_seconds - wall) <= 0.05 * wall + 0.010
        names = [node.name for node in root.walk()]
        for stage in (
            "assess",
            "estimate",
            "plan",
            "price",
            "detector:mapping",
            "detector:structure",
            "detector:values",
            "planner:mapping",
            "planner:structure",
            "planner:values",
        ):
            assert names.count(stage) == 1, stage

    def test_profile_spans_annotate_cache_hits(self, small_example):
        runtime = Runtime(backend="serial")
        efes = default_efes(runtime=runtime)
        try:
            cold = efes.run(
                small_example, ResultQuality.HIGH_QUALITY, trace=True
            )
            warm = efes.run(
                small_example, ResultQuality.HIGH_QUALITY, trace=True
            )
        finally:
            runtime.close()
        cold_profiles = cold.trace.find("profile")
        warm_profiles = warm.trace.find("profile")
        assert cold_profiles and warm_profiles
        assert not any(
            node.attributes["cache_hit"] for node in cold_profiles
        )
        assert all(node.attributes["cache_hit"] for node in warm_profiles)


# ----------------------------------------------------------------------
# Span serialisation + rendering
# ----------------------------------------------------------------------


class TestSpanCodec:
    def test_round_trip_through_core_serialize(self, small_example):
        outcome = default_efes().run(
            small_example, ResultQuality.HIGH_QUALITY, trace=True
        )
        doc = span_to_dict(outcome.trace)
        json.dumps(doc)  # JSON-compatible all the way down
        restored = span_from_dict(doc)
        assert span_to_dict(restored) == doc
        assert [node.name for node in restored.walk()] == [
            node.name for node in outcome.trace.walk()
        ]

    def test_malformed_document_raises_serialization_error(self):
        with pytest.raises(SerializationError):
            span_from_dict({"name": "orphan"})  # missing ids/duration

    def test_render_span_tree_alignment_and_annotations(self):
        tracer = Tracer()
        with tracer.activated():
            with span("root"):
                with span("hit", cache_hit=True):
                    pass
                with span("miss", cache_hit=False):
                    pass
        text = render_span_tree(tracer.root)
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert "├─ hit" in lines[1] and "[cache hit]" in lines[1]
        assert "└─ miss" in lines[2] and "[cache hit]" not in lines[2]
        # Every row carries aligned total/self columns.
        columns = {line.index("total ") for line in lines}
        assert len(columns) == 1


# ----------------------------------------------------------------------
# Histograms
# ----------------------------------------------------------------------


class TestHistograms:
    def test_quantiles_bracket_the_data(self):
        histogram = Histogram("latency_seconds")
        for value in (0.001, 0.002, 0.004, 0.008, 0.100):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot.count == 5
        assert snapshot.min == 0.001
        assert snapshot.max == 0.100
        assert snapshot.p50 <= snapshot.p95 <= snapshot.p99
        assert 0.001 <= snapshot.p50 <= 0.100
        assert snapshot.quantile(1.0) == pytest.approx(0.100)

    def test_cumulative_buckets_are_monotone_and_end_at_count(self):
        histogram = Histogram("latency_seconds")
        for exponent in range(12):
            histogram.observe(1e-6 * (3**exponent % 97))
        pairs = histogram.snapshot().cumulative_buckets()
        counts = [cumulative for _, cumulative in pairs]
        assert counts == sorted(counts)
        assert pairs[-1][0] == float("inf")
        assert pairs[-1][1] == 12

    def test_labelled_series_are_distinct(self):
        metrics = RuntimeMetrics()
        metrics.observe("detector_seconds", 0.1, detector="mapping")
        metrics.observe("detector_seconds", 0.2, detector="values")
        metrics.observe("detector_seconds", 0.3, detector="values")
        mapping = metrics.histogram("detector_seconds", detector="mapping")
        values = metrics.histogram("detector_seconds", detector="values")
        assert mapping.count == 1
        assert values.count == 2
        assert metrics.histogram("detector_seconds", detector="nope") is None

    def test_to_dict_reports_quantiles_and_sparse_buckets(self):
        histogram = Histogram("x", labels=(("stage", "assess"),))
        histogram.observe(0.5)
        doc = histogram.snapshot().to_dict()
        assert doc["labels"] == {"stage": "assess"}
        assert doc["count"] == 1
        assert set(doc["quantiles"]) == {"p50", "p95", "p99"}
        assert len(doc["buckets"]) == 1  # only the non-empty bucket


# ----------------------------------------------------------------------
# Stage timings: work vs wall vs max
# ----------------------------------------------------------------------


class TestStageTimings:
    def test_wall_clock_below_summed_work_under_concurrency(self):
        metrics = RuntimeMetrics()

        def busy():
            with metrics.time_stage("overlap"):
                time.sleep(0.05)

        threads = [threading.Thread(target=busy) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        timing = metrics.stage("overlap")
        assert timing.calls == 4
        assert timing.seconds >= 0.9 * 4 * 0.05  # summed work
        assert timing.wall_seconds < timing.seconds  # overlapped latency
        assert timing.max_seconds <= timing.seconds
        assert timing.mean_seconds == pytest.approx(
            timing.seconds / 4
        )

    def test_snapshot_to_dict_includes_mean_and_timestamp(self):
        metrics = RuntimeMetrics()
        metrics.record_stage("assess", 2.0)
        metrics.record_stage("assess", 4.0)
        before = time.time()
        doc = metrics.snapshot().to_dict()
        assert doc["stages"]["assess"]["mean_seconds"] == pytest.approx(3.0)
        assert doc["stages"]["assess"]["max_seconds"] == pytest.approx(4.0)
        assert before - 1.0 <= doc["timestamp"] <= time.time() + 1.0
        # record_stage feeds the stage_seconds histogram family too.
        assert any(
            h["name"] == "stage_seconds" and h["count"] == 2
            for h in doc["histograms"]
        )


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------


class TestPrometheusText:
    def test_label_values_are_escaped(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'
        metrics = RuntimeMetrics()
        metrics.observe("weird_seconds", 0.1, label='quo"te\nnl')
        text = prometheus_text(metrics.snapshot())
        assert 'label="quo\\"te\\nnl"' in text

    def test_histogram_exposition_is_valid(self):
        metrics = RuntimeMetrics()
        for value in (0.001, 0.010, 0.100):
            metrics.observe("stage_seconds", value, stage="assess")
        text = prometheus_text(metrics.snapshot())
        assert "# TYPE repro_stage_seconds histogram" in text
        bucket_lines = [
            line
            for line in text.splitlines()
            if line.startswith("repro_stage_seconds_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts)  # cumulative => monotone
        assert bucket_lines[-1].rsplit(" ", 1)[1] == "3"
        assert 'le="+Inf"' in bucket_lines[-1]
        assert 'repro_stage_seconds_count{stage="assess"} 3' in text
        assert "repro_stage_seconds_sum" in text
        assert 'quantile="0.5"' in text
        assert "repro_metrics_snapshot_timestamp_seconds" in text

    def test_counters_stages_and_extra_gauges(self):
        metrics = RuntimeMetrics()
        metrics.increment("cache_hits", 3)
        metrics.record_stage("assess", 1.5)
        text = prometheus_text(
            metrics.snapshot(), extra_gauges={"queue_depth": 2.0}
        )
        assert "repro_cache_hits_total 3" in text
        assert 'repro_stage_work_seconds{stage="assess"} 1.5' in text
        assert 'repro_stage_calls_total{stage="assess"} 1' in text
        assert "repro_queue_depth 2.0" in text


# ----------------------------------------------------------------------
# Event log + correlation IDs
# ----------------------------------------------------------------------


class TestEventLog:
    def test_emit_binds_the_context_correlation_id(self):
        log = EventLog()
        assert current_correlation_id() is None
        with correlation_scope("req-42"):
            assert current_correlation_id() == "req-42"
            log.emit("job.started", job_id="j1")
        log.emit("job.started", job_id="j2")
        records = log.records(correlation_id="req-42")
        assert len(records) == 1
        assert records[0]["job_id"] == "j1"
        assert records[0]["seq"] == 1

    def test_jsonl_file_sink(self, tmp_path):
        path = tmp_path / "events" / "service.jsonl"
        log = EventLog(path=path)
        log.emit("a", n=1)
        log.emit("b", n=2)
        lines = path.read_text(encoding="utf-8").splitlines()
        assert [json.loads(line)["event"] for line in lines] == ["a", "b"]

    def test_logging_adapter_routes_stdlib_records(self):
        import logging

        log = EventLog()
        logger = logging.getLogger("repro.test.observability")
        logger.setLevel(logging.INFO)
        handler = log.logging_handler()
        logger.addHandler(handler)
        try:
            with correlation_scope("req-log"):
                logger.info("hello %s", "world")
        finally:
            logger.removeHandler(handler)
        (record,) = log.records(event="log")
        assert record["message"] == "hello world"
        assert record["correlation_id"] == "req-log"

    def test_memory_ring_is_bounded(self):
        log = EventLog(max_memory_events=3)
        for index in range(10):
            log.emit("tick", index=index)
        records = log.records()
        assert len(records) == 3
        assert [record["index"] for record in records] == [7, 8, 9]


# ----------------------------------------------------------------------
# Service-level observability (HTTP -> scheduler -> event log)
# ----------------------------------------------------------------------


@pytest.fixture()
def service():
    from repro.service import JobScheduler, make_server

    scheduler = JobScheduler(workers=2, max_queue=8)
    server = make_server(scheduler, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, scheduler
    finally:
        server.shutdown()
        server.server_close()
        scheduler.close(wait=True, timeout=5.0)
        thread.join(timeout=5.0)


class TestServiceObservability:
    def test_correlation_id_flows_from_http_to_event_log(self, service):
        from repro.service import ServiceClient

        server, scheduler = service
        client = ServiceClient(server.url)
        job = client.submit(
            "s4-s4", kind="assess", correlation_id="req-e2e"
        )
        assert job["correlation_id"] == "req-e2e"
        client.result(job["id"], deadline=120)
        events = scheduler.events.records(correlation_id="req-e2e")
        kinds = [record["event"] for record in events]
        assert kinds[0] == "job.submitted"
        assert "job.started" in kinds
        assert kinds[-1] == "job.finished"
        assert all(
            record["correlation_id"] == "req-e2e" for record in events
        )

    def test_correlation_id_defaults_to_the_job_id(self, service):
        from repro.service import ServiceClient

        server, scheduler = service
        client = ServiceClient(server.url)
        job = client.submit("s4-s4", kind="assess", seed=2)
        assert job["correlation_id"] == job["id"]

    def test_trace_endpoint_returns_the_job_span_tree(self, service):
        from repro.service import ServiceClient

        server, _ = service
        client = ServiceClient(server.url)
        job = client.submit("s4-s4", kind="estimate", quality="low")
        client.result(job["id"], deadline=120)
        doc = client.trace(job["id"])
        root = span_from_dict(doc)
        assert root.name == f"service.job:{job['id']}"
        names = [node.name for node in root.walk()]
        assert "assess" in names
        assert "serialize" in names

    def test_trace_endpoint_unknown_job_is_404(self, service):
        from repro.service import ServiceClient, ServiceError

        server, _ = service
        client = ServiceClient(server.url)
        with pytest.raises(ServiceError) as excinfo:
            client.trace("nope")
        assert excinfo.value.status == 404

    def test_healthz_reports_workers_and_store(self, service):
        from repro.service import ServiceClient

        server, _ = service
        client = ServiceClient(server.url)
        doc = client.healthz()
        assert doc["workers"]["total"] == 2
        assert 0 <= doc["workers"]["busy"] <= 2
        assert 0.0 <= doc["workers"]["utilisation"] <= 1.0
        assert doc["store"] == {"entries": 0, "spooled": 0, "quarantined": 0}
        assert doc["health"]["state"] == "healthy"

    def test_metrics_content_negotiation(self, service):
        from repro.service import ServiceClient

        server, _ = service
        client = ServiceClient(server.url)
        job = client.submit("s4-s4", kind="assess", seed=3)
        client.result(job["id"], deadline=120)
        text = client.metrics_text()
        assert "# TYPE repro_job_phase_seconds histogram" in text
        assert 'phase="running"' in text
        assert "repro_queue_depth" in text
        assert "repro_workers_total 2.0" in text
        # The default JSON face carries the same snapshot.
        doc = client.metrics()
        assert doc["counters"]["jobs_completed"] >= 1
        assert any(
            h["name"] == "job_phase_seconds" for h in doc["histograms"]
        )


# ----------------------------------------------------------------------
# CLI surfacing
# ----------------------------------------------------------------------


class TestTraceCli:
    def test_trace_prints_span_tree_and_writes_json(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        output = tmp_path / "trace.json"
        assert main(["trace", "s4-s4", "--output", str(output)]) == 0
        out = capsys.readouterr().out
        assert "Trace of s4-s4" in out
        assert "run:s4-s4" in out
        for stage in ("assess", "estimate", "plan", "price"):
            assert stage in out
        for name in ("mapping", "structure", "values"):
            assert f"detector:{name}" in out
            assert f"planner:{name}" in out
        doc = json.loads(output.read_text(encoding="utf-8"))
        assert doc["name"] == "run:s4-s4"

    def test_trace_domain_alias_covers_every_scenario(self, capsys):
        from repro.cli import main
        from repro.scenarios import music_scenarios

        assert main(["trace", "music", "--quality", "low"]) == 0
        out = capsys.readouterr().out
        for scenario in music_scenarios(1):
            assert f"run:{scenario.name}" in out


class TestExperimentTraces:
    def test_evaluate_domain_writes_one_trace_file_per_scenario(
        self, tmp_path
    ):
        from repro.experiments import evaluate_domain
        from repro.scenarios import bibliographic_scenarios

        scenarios = bibliographic_scenarios(1)[:2]
        evaluate_domain(scenarios, trace_dir=tmp_path)
        for scenario in scenarios:
            path = tmp_path / f"{scenario.name}.trace.json"
            assert path.exists()
            root = span_from_dict(
                json.loads(path.read_text(encoding="utf-8"))
            )
            assert root.name == f"scenario:{scenario.name}"
            assert root.find("assess")
