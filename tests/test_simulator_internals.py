"""Unit tests for the practitioner simulator's internal machinery."""

import pytest

from repro.core import ResultQuality
from repro.practitioner import PractitionerSimulator
from repro.practitioner.simulator import _Entity
from repro.relational import (
    Database,
    DataType,
    Schema,
    foreign_key,
    primary_key,
    relation,
)
from repro.relational.datatypes import DataType as DT


class TestEntity:
    def test_empty_cell(self):
        entity = _Entity("key")
        assert entity.values("x") == []
        assert entity.first("x") is None

    def test_set_single(self):
        entity = _Entity("key")
        entity.set_single("x", 5)
        assert entity.values("x") == [5]
        entity.set_single("x", None)
        assert entity.values("x") == []

    def test_base_tracking(self):
        entity = _Entity("key", base="albums")
        assert entity.base == "albums"


class TestDependencyOrder:
    def _schema(self):
        schema = Schema(
            "tgt",
            relations=[
                relation("a", [("id", DataType.INTEGER)]),
                relation("b", [("id", DataType.INTEGER), ("a_ref", DataType.INTEGER)]),
                relation("c", [("b_ref", DataType.INTEGER)]),
            ],
            constraints=[
                primary_key("a", "id"),
                primary_key("b", "id"),
                foreign_key("b", "a_ref", "a", "id"),
                foreign_key("c", "b_ref", "b", "id"),
            ],
        )
        return schema

    def test_referenced_first(self):
        order = PractitionerSimulator._dependency_order(
            self._schema(), ["c", "b", "a"]
        )
        assert order.index("a") < order.index("b") < order.index("c")

    def test_subset_of_populated_tables(self):
        order = PractitionerSimulator._dependency_order(
            self._schema(), ["c", "a"]
        )
        # b is not populated, so c has no blocking dependency in the list.
        assert set(order) == {"a", "c"}

    def test_cycle_falls_back(self):
        schema = Schema(
            "tgt",
            relations=[
                relation("x", [("id", DataType.INTEGER), ("y_ref", DataType.INTEGER)]),
                relation("y", [("id", DataType.INTEGER), ("x_ref", DataType.INTEGER)]),
            ],
            constraints=[
                primary_key("x", "id"),
                primary_key("y", "id"),
                foreign_key("x", "y_ref", "y", "id"),
                foreign_key("y", "x_ref", "x", "id"),
            ],
        )
        order = PractitionerSimulator._dependency_order(schema, ["x", "y"])
        assert set(order) == {"x", "y"}  # no crash, both present


class TestPlaceholder:
    def test_numeric(self):
        assert PractitionerSimulator._placeholder(DT.INTEGER, 0) == 0
        assert PractitionerSimulator._placeholder(DT.FLOAT, 3) == 0

    def test_boolean(self):
        assert PractitionerSimulator._placeholder(DT.BOOLEAN, 0) is False

    def test_date(self):
        assert PractitionerSimulator._placeholder(DT.DATE, 0) == "1970-01-01"

    def test_string_offsets_stay_distinct(self):
        first = PractitionerSimulator._placeholder(DT.STRING, 0)
        second = PractitionerSimulator._placeholder(DT.STRING, 1)
        assert first != second


class TestPatternConflict:
    def _simulator(self):
        return PractitionerSimulator()

    def _target(self, values, datatype=DataType.STRING):
        schema = Schema(
            "tgt", relations=[relation("t", [("v", datatype)])]
        )
        database = Database(schema)
        database.insert_all("t", [(value,) for value in values])
        return database

    def test_textual_format_mismatch_detected(self):
        target = self._target(["4:43", "3:26", "5:01"])
        conflict = self._simulator()._pattern_conflict(
            target, "t", "v", DataType.STRING, ["215900", "238100"]
        )
        assert conflict

    def test_textual_same_format_accepted(self):
        target = self._target(["4:43", "3:26"])
        conflict = self._simulator()._pattern_conflict(
            target, "t", "v", DataType.STRING, ["9:59", "0:30"]
        )
        assert not conflict

    def test_numeric_magnitude_mismatch_detected(self):
        target = self._target([200, 250, 300], DataType.INTEGER)
        conflict = self._simulator()._pattern_conflict(
            target, "t", "v", DataType.INTEGER, [215900, 238100]
        )
        assert conflict

    def test_numeric_same_scale_accepted(self):
        target = self._target([200, 250, 300], DataType.INTEGER)
        conflict = self._simulator()._pattern_conflict(
            target, "t", "v", DataType.INTEGER, [210, 260]
        )
        assert not conflict

    def test_empty_target_never_conflicts(self):
        target = self._target([])
        conflict = self._simulator()._pattern_conflict(
            target, "t", "v", DataType.STRING, ["anything"]
        )
        assert not conflict


class TestRejectedRowAccounting:
    def test_low_effort_rejections_counted(self, small_example):
        simulator = PractitionerSimulator()
        result = simulator.integrate(small_example, ResultQuality.LOW_EFFORT)
        # The multi-artist albums survive (keep-any), nothing else needs
        # rejecting in the running example at low effort.
        assert result.rejected_rows == 0

    def test_breakdown_keys_are_stable(self, small_example):
        simulator = PractitionerSimulator()
        result = simulator.integrate(small_example, ResultQuality.HIGH_QUALITY)
        assert list(result.breakdown()) == [
            "Mapping",
            "Cleaning (Structure)",
            "Cleaning (Values)",
        ]
