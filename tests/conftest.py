"""Shared fixtures: scenario builders are expensive enough to cache."""

from __future__ import annotations

import pytest

from repro.core import default_efes
from repro.scenarios import example_scenario
from repro.scenarios.example import ExampleParameters


@pytest.fixture(scope="session")
def example():
    """The paper's running example (Figure 2), full size."""
    return example_scenario()


@pytest.fixture(scope="session")
def small_example():
    """A small variant of the running example for fast planner tests."""
    return example_scenario(
        ExampleParameters(
            albums=120,
            multi_artist_albums=30,
            detached_artists=8,
            target_records=40,
        )
    )


@pytest.fixture(scope="session")
def efes():
    return default_efes()


@pytest.fixture(scope="session")
def example_reports(example, efes):
    """The three complexity reports of the running example."""
    return efes.assess(example)
