"""Unit + property tests for the value-fit column statistics."""

import math

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.profiling.statistics import (
    CharacterHistogram,
    Constancy,
    FillStatus,
    MeanStatistic,
    NumericHistogram,
    StringLengthStatistic,
    TextPatternStatistic,
    TopKValues,
    ValueRange,
    histogram_intersection,
    shannon_entropy,
)
from repro.relational.datatypes import DataType

DURATIONS = ["4:43", "6:55", "3:26", "5:01", "2:59"]
LENGTHS_MS = [215900, 238100, 218200, 301000, 179000]


class TestHelpers:
    def test_entropy_of_uniform(self):
        assert abs(shannon_entropy([0.5, 0.5]) - 1.0) < 1e-9

    def test_entropy_of_constant(self):
        assert shannon_entropy([1.0]) == 0.0

    def test_histogram_intersection_identical(self):
        dist = {"a": 0.7, "b": 0.3}
        assert abs(histogram_intersection(dist, dist) - 1.0) < 1e-9

    def test_histogram_intersection_disjoint(self):
        assert histogram_intersection({"a": 1.0}, {"b": 1.0}) == 0.0


class TestFillStatus:
    def test_counts(self):
        stat = FillStatus.compute([1, None, "x"], DataType.INTEGER)
        assert stat.total == 3 and stat.nulls == 1 and stat.uncastable == 1

    def test_filled_fraction(self):
        stat = FillStatus.compute([1, None, "x"], DataType.INTEGER)
        assert abs(stat.filled_fraction - 1 / 3) < 1e-9

    def test_non_null_fraction_ignores_castability(self):
        stat = FillStatus.compute([1, None, "x"], DataType.INTEGER)
        assert abs(stat.non_null_fraction - 2 / 3) < 1e-9

    def test_fit_rewards_completeness(self):
        target = FillStatus.compute([1, 2, 3], DataType.INTEGER)
        full = FillStatus.compute([4, 5, 6], DataType.INTEGER)
        sparse = FillStatus.compute([4, None, None], DataType.INTEGER)
        assert target.fit(full) > target.fit(sparse)

    def test_empty_column(self):
        stat = FillStatus.compute([], DataType.STRING)
        assert stat.filled_fraction == 0.0


class TestConstancy:
    def test_constant_column(self):
        assert Constancy.compute(["a"] * 10).constancy == 1.0

    def test_all_distinct_column(self):
        stat = Constancy.compute(list(range(100)))
        assert stat.constancy < 0.05

    def test_domain_restriction_by_distinct_count(self):
        stat = Constancy.compute(["x", "y"] * 50)
        assert stat.is_domain_restricted

    def test_free_text_not_restricted(self):
        stat = Constancy.compute([f"value {i}" for i in range(100)])
        assert not stat.is_domain_restricted

    def test_nulls_ignored(self):
        assert Constancy.compute([None, "a", None]).distinct_count == 1

    def test_empty_not_restricted(self):
        assert not Constancy.compute([]).is_domain_restricted


class TestTextPattern:
    def test_importance_of_uniform_format(self):
        stat = TextPatternStatistic.compute(DURATIONS)
        assert stat.importance() == 1.0

    def test_importance_of_mixed_formats(self):
        stat = TextPatternStatistic.compute(["4:43", "abc", "1-2", "x y"])
        assert stat.importance() <= 0.5

    def test_fit_identical_formats(self):
        target = TextPatternStatistic.compute(DURATIONS)
        source = TextPatternStatistic.compute(["9:59", "0:01"])
        assert target.fit(source) == pytest.approx(1.0)

    def test_fit_conflicting_formats(self):
        target = TextPatternStatistic.compute(DURATIONS)
        source = TextPatternStatistic.compute([str(v) for v in LENGTHS_MS])
        assert target.fit(source) == 0.0

    def test_free_text_fits_free_text(self):
        target = TextPatternStatistic.compute(["Sweet Home", "One Two Three"])
        source = TextPatternStatistic.compute(["Another Title Here"])
        assert target.fit(source) >= 0.8


class TestStringLength:
    def test_mean_and_std(self):
        stat = StringLengthStatistic.compute(["ab", "abcd"])
        assert stat.mean == 3.0 and stat.std == 1.0

    def test_fit_same_lengths(self):
        target = StringLengthStatistic.compute(["abcde"] * 5)
        source = StringLengthStatistic.compute(["fghij"] * 3)
        assert target.fit(source) == pytest.approx(1.0)

    def test_fit_decays_with_distance(self):
        target = StringLengthStatistic.compute(["abcd"] * 5)
        near = StringLengthStatistic.compute(["abcde"] * 5)
        far = StringLengthStatistic.compute(["a" * 40] * 5)
        assert target.fit(near) > target.fit(far)

    def test_empty_fits_trivially(self):
        target = StringLengthStatistic.compute([])
        source = StringLengthStatistic.compute(["abc"])
        assert target.fit(source) == 1.0


class TestMeanStatistic:
    def test_computation(self):
        stat = MeanStatistic.compute([1, 2, 3])
        assert stat.mean == 2.0 and abs(stat.std - math.sqrt(2 / 3)) < 1e-9

    def test_fit_magnitude_mismatch(self):
        target = MeanStatistic.compute([200, 250, 300])  # seconds
        source = MeanStatistic.compute(LENGTHS_MS)  # milliseconds
        assert target.fit(source) < 0.1

    def test_fit_similar_scale(self):
        target = MeanStatistic.compute([200, 250, 300])
        source = MeanStatistic.compute([210, 260, 280])
        assert target.fit(source) > 0.8

    def test_non_numeric_ignored(self):
        stat = MeanStatistic.compute(["a", 4])
        assert stat.count == 1


class TestNumericHistogram:
    def test_bins_sum_to_one(self):
        stat = NumericHistogram.compute(list(range(100)))
        assert abs(sum(stat.bins) - 1.0) < 1e-9

    def test_fit_identical_distribution(self):
        target = NumericHistogram.compute(list(range(100)))
        source = NumericHistogram.compute(list(range(100)))
        assert target.fit(source) > 0.9

    def test_fit_disjoint_ranges(self):
        target = NumericHistogram.compute(list(range(100)))
        source = NumericHistogram.compute(list(range(10_000, 10_100)))
        assert target.fit(source) == 0.0

    def test_constant_column(self):
        stat = NumericHistogram.compute([5, 5, 5])
        assert stat.lo == stat.hi == 5


class TestValueRange:
    def test_bounds(self):
        stat = ValueRange.compute([3, 1, 7])
        assert (stat.lo, stat.hi) == (1, 7)

    def test_fit_contained(self):
        target = ValueRange.compute([0, 100])
        source = ValueRange.compute([10, 90])
        assert target.fit(source) == pytest.approx(1.0)

    def test_fit_disjoint(self):
        target = ValueRange.compute([0, 100])
        source = ValueRange.compute([1000, 2000])
        assert target.fit(source) == 0.0

    def test_fit_partial_overlap(self):
        target = ValueRange.compute([0, 100])
        source = ValueRange.compute([50, 150])
        assert 0.0 < target.fit(source) < 1.0


class TestTopK:
    def test_discrete_domain_coverage(self):
        stat = TopKValues.compute(["rock", "jazz"] * 50)
        assert stat.coverage == pytest.approx(1.0)
        assert stat.importance() == pytest.approx(1.0)

    def test_free_text_low_importance(self):
        stat = TopKValues.compute([f"title {i}" for i in range(1000)])
        assert stat.importance() < 0.01

    def test_fit_shared_domain(self):
        target = TopKValues.compute(["rock", "jazz", "pop"] * 10)
        source = TopKValues.compute(["rock", "jazz"] * 10)
        assert target.fit(source) == pytest.approx(1.0)

    def test_fit_disjoint_domain(self):
        target = TopKValues.compute(["rock"] * 10)
        source = TopKValues.compute(["metal"] * 10)
        assert target.fit(source) == 0.0


# ----------------------------------------------------------------------
# Properties: every statistic keeps importance and fit within [0, 1]
# ----------------------------------------------------------------------

value_columns = st.lists(
    st.one_of(
        st.none(),
        st.integers(min_value=-10**6, max_value=10**6),
        st.text(max_size=20),
    ),
    max_size=60,
)

STATISTIC_TYPES = [
    Constancy,
    TextPatternStatistic,
    CharacterHistogram,
    StringLengthStatistic,
    MeanStatistic,
    NumericHistogram,
    ValueRange,
    TopKValues,
]


@settings(max_examples=60)
@given(value_columns, value_columns)
@example(  # regression: float rounding pushed the intersection over 1.0
    source_values=[-121, 216, 2071, "0001", "1345Á"],
    target_values=[-121, 216, 2071, "0001", "1345Á"],
)
@pytest.mark.parametrize("statistic_type", STATISTIC_TYPES)
def test_importance_and_fit_bounded(statistic_type, source_values, target_values):
    source = statistic_type.compute(source_values)
    target = statistic_type.compute(target_values)
    assert 0.0 <= target.importance() <= 1.0
    assert 0.0 <= target.fit(source) <= 1.0


@settings(max_examples=60)
@given(value_columns)
@example(values=[])  # regression: empty columns must fit vacuously
@example(values=[str(i) for i in range(30)])  # regression: top-k ties
@pytest.mark.parametrize("statistic_type", STATISTIC_TYPES)
def test_self_fit_is_high(statistic_type, values):
    """A column always fits its own statistics (≥ threshold-level)."""
    stat = statistic_type.compute(values)
    assert stat.fit(stat) >= 0.9
