"""Unit tests for the value-heterogeneities module (Algorithm 1, Tables 6-8)."""

import pytest

from repro.core import ResultQuality
from repro.core.modules.values import (
    DEFAULT_FIT_THRESHOLD,
    ValueFitDetector,
    ValueModule,
    ValueTransformationPlanner,
    weighted_fit,
)
from repro.core.tasks import TaskType, ValueHeterogeneity
from repro.matching import (
    CorrespondenceSet,
    attribute_correspondence,
    relation_correspondence,
)
from repro.relational import Database, DataType, Schema, relation
from repro.scenarios.scenario import IntegrationScenario


def pair_scenario(source_values, target_values, source_type, target_type):
    """A one-attribute-pair scenario for isolated rule testing."""
    source_schema = Schema(
        "src", relations=[relation("s", [("v", source_type)])]
    )
    target_schema = Schema(
        "tgt", relations=[relation("t", [("v", target_type)])]
    )
    source = Database(source_schema)
    source.insert_all("s", [(value,) for value in source_values])
    target = Database(target_schema)
    target.insert_all("t", [(value,) for value in target_values])
    cset = CorrespondenceSet(
        [
            relation_correspondence("s", "t"),
            attribute_correspondence("s.v", "t.v"),
        ]
    )
    return IntegrationScenario("pair", source, target, cset)


def detect(scenario, threshold=DEFAULT_FIT_THRESHOLD):
    detector = ValueFitDetector(fit_threshold=threshold)
    source = scenario.sources[0]
    return detector.detect(
        source, scenario.target, scenario.correspondences[source.name]
    )


class TestAlgorithm1Rules:
    def test_rule1_too_few_elements(self):
        scenario = pair_scenario(
            ["a", None, None, None], ["w", "x", "y", "z"],
            DataType.STRING, DataType.STRING,
        )
        findings = detect(scenario)
        assert any(
            f.heterogeneity is ValueHeterogeneity.TOO_FEW_ELEMENTS
            for f in findings
        )

    def test_rule2_critical_incompatibility(self):
        scenario = pair_scenario(
            ["1999", "unknown", "2001"], [1999, 2001, 2005],
            DataType.STRING, DataType.INTEGER,
        )
        findings = detect(scenario)
        assert any(
            f.heterogeneity
            is ValueHeterogeneity.DIFFERENT_REPRESENTATIONS_CRITICAL
            for f in findings
        )

    def test_rule2_dominates_domain_rules(self):
        scenario = pair_scenario(
            ["x"] * 10, [1, 2, 3], DataType.STRING, DataType.INTEGER
        )
        findings = detect(scenario)
        kinds = {f.heterogeneity for f in findings}
        assert ValueHeterogeneity.DIFFERENT_REPRESENTATIONS not in kinds

    def test_rule3_too_coarse(self):
        # domain-restricted source (two categories) vs free-text target
        scenario = pair_scenario(
            ["hi", "lo"] * 30,
            [f"text {i} {'x' * (i % 5)}" for i in range(60)],
            DataType.STRING, DataType.STRING,
        )
        findings = detect(scenario)
        assert any(
            f.heterogeneity is ValueHeterogeneity.TOO_COARSE_GRAINED
            for f in findings
        )

    def test_rule4_too_fine(self):
        scenario = pair_scenario(
            [f"text {i} {'x' * (i % 5)}" for i in range(60)],
            ["hi", "lo"] * 30,
            DataType.STRING, DataType.STRING,
        )
        findings = detect(scenario)
        assert any(
            f.heterogeneity is ValueHeterogeneity.TOO_FINE_GRAINED
            for f in findings
        )

    def test_rule5_representation_mismatch(self):
        scenario = pair_scenario(
            [215900 + i * 997 for i in range(60)],
            [f"{i % 9}:{i % 60:02d}" for i in range(60)],
            DataType.INTEGER, DataType.STRING,
        )
        findings = detect(scenario)
        assert [f.heterogeneity for f in findings] == [
            ValueHeterogeneity.DIFFERENT_REPRESENTATIONS
        ]

    def test_identical_columns_are_clean(self):
        values = [f"value {i}" for i in range(50)]
        scenario = pair_scenario(
            values, values, DataType.STRING, DataType.STRING
        )
        assert detect(scenario) == []

    def test_threshold_is_configurable(self):
        values = [f"value {i}" for i in range(50)]
        scenario = pair_scenario(
            values, values, DataType.STRING, DataType.STRING
        )
        # An absurd threshold of 1.01 flags even identical columns.
        findings = detect(scenario, threshold=1.01)
        assert findings


class TestTable6Report:
    def test_running_example_report(self, example_reports):
        report = example_reports["values"]
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.heterogeneity is ValueHeterogeneity.DIFFERENT_REPRESENTATIONS
        assert finding.source_attribute == "songs.length"
        assert finding.target_attribute == "tracks.duration"

    def test_parameters_carry_counts(self, example_reports):
        finding = example_reports["values"].findings[0]
        assert finding.parameters["values"] > 0
        assert finding.parameters["distinct_values"] > 0
        assert finding.parameters["fit"] < DEFAULT_FIT_THRESHOLD

    def test_fk_correspondences_skipped(self, example_reports):
        report = example_reports["values"]
        assert not any(
            f.target_attribute == "tracks.record" for f in report.findings
        )


class TestWeightedFit:
    def test_breakdown_exposes_components(self, example):
        from repro.profiling import profile_column

        source = profile_column(
            example.sources[0], "songs", "length", datatype=DataType.STRING
        )
        target = profile_column(example.target, "tracks", "duration")
        breakdown = weighted_fit(source, target)
        assert breakdown.overall < 0.5
        importance, fit = breakdown.component("text_pattern")
        assert importance == pytest.approx(1.0)
        assert fit == 0.0

    def test_unknown_component_raises(self, example):
        from repro.profiling import profile_column

        profile = profile_column(example.target, "tracks", "duration")
        breakdown = weighted_fit(profile, profile)
        with pytest.raises(KeyError):
            breakdown.component("nonexistent")


class TestTable7Planner:
    def _finding(self, heterogeneity, **parameters):
        from repro.core.reports import ValueHeterogeneityFinding

        defaults = {"values": 100.0, "distinct_values": 90.0,
                    "representations": 1.0}
        defaults.update(parameters)
        return ValueHeterogeneityFinding(
            source_database="src",
            source_attribute="s.v",
            target_attribute="t.v",
            heterogeneity=heterogeneity,
            parameters=defaults,
        )

    def test_low_effort_ignores_uncritical(self):
        planner = ValueTransformationPlanner()
        tasks = planner.plan(
            [self._finding(ValueHeterogeneity.DIFFERENT_REPRESENTATIONS)],
            ResultQuality.LOW_EFFORT,
        )
        assert tasks == []

    def test_low_effort_drops_critical(self):
        planner = ValueTransformationPlanner()
        tasks = planner.plan(
            [
                self._finding(
                    ValueHeterogeneity.DIFFERENT_REPRESENTATIONS_CRITICAL
                )
            ],
            ResultQuality.LOW_EFFORT,
        )
        assert [t.type for t in tasks] == [TaskType.DROP_VALUES]

    def test_high_quality_converts(self):
        planner = ValueTransformationPlanner()
        tasks = planner.plan(
            [self._finding(ValueHeterogeneity.DIFFERENT_REPRESENTATIONS)],
            ResultQuality.HIGH_QUALITY,
        )
        assert [t.type for t in tasks] == [TaskType.CONVERT_VALUES]

    def test_granularity_tasks(self):
        planner = ValueTransformationPlanner()
        coarse = planner.plan(
            [self._finding(ValueHeterogeneity.TOO_COARSE_GRAINED)],
            ResultQuality.HIGH_QUALITY,
        )
        fine = planner.plan(
            [self._finding(ValueHeterogeneity.TOO_FINE_GRAINED)],
            ResultQuality.HIGH_QUALITY,
        )
        assert [t.type for t in coarse] == [TaskType.REFINE_VALUES]
        assert [t.type for t in fine] == [TaskType.GENERALIZE_VALUES]


class TestTable8Effort:
    def test_convert_values_costs_15_minutes(self, example, efes):
        """Table 8: the length → duration conversion totals 15 minutes."""
        module = next(m for m in efes.modules if m.name == "values")
        report = module.assess(example)
        tasks = module.plan(example, report, ResultQuality.HIGH_QUALITY)
        from repro.core.effort import price_tasks

        estimate = price_tasks(
            "example", ResultQuality.HIGH_QUALITY, tasks, efes.settings
        )
        assert estimate.total_minutes == 15.0

    def test_low_effort_value_cleaning_is_free(self, example, efes):
        module = next(m for m in efes.modules if m.name == "values")
        report = module.assess(example)
        tasks = module.plan(example, report, ResultQuality.LOW_EFFORT)
        assert tasks == []
