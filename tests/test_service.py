"""The assessment service: store, scheduler, and HTTP API."""

from __future__ import annotations

import threading

import pytest

from repro.core import ResultQuality
from repro.core.serialize import estimate_from_dict, reports_from_dict
from repro.service import (
    BackpressureError,
    JobFailedError,
    JobScheduler,
    JobState,
    QueueFullError,
    ReportStore,
    SchedulerClosedError,
    ServiceClient,
    ServiceError,
    job_key,
    make_server,
)


def blocking_payload(release, started=None):
    """A cooperative payload that runs until ``release`` is set."""

    def payload(job):
        if started is not None:
            started.set()
        while not release.wait(0.01):
            job.check_cancelled()
        return {"ok": True}

    return payload


@pytest.fixture()
def scheduler():
    with JobScheduler(workers=1, max_queue=8) as sched:
        yield sched


class TestJobKey:
    def test_kind_and_quality_separate_addresses(self, small_example):
        assess = job_key(small_example, "assess")
        low = job_key(small_example, "estimate", "low_effort")
        high = job_key(small_example, "estimate", "high_quality")
        assert len({assess, low, high}) == 3

    def test_deterministic(self, small_example):
        assert job_key(small_example, "assess") == job_key(
            small_example, "assess"
        )

    def test_name_does_not_affect_the_address(self, small_example):
        import dataclasses

        renamed = dataclasses.replace(small_example, name="renamed")
        assert job_key(renamed, "assess") == job_key(small_example, "assess")


class TestReportStore:
    def test_put_get_and_counters(self):
        store = ReportStore()
        assert store.get("k") is None
        store.put("k", {"a": 1})
        assert store.get("k") == {"a": 1}
        counters = store.metrics.snapshot().counters
        assert counters["store_misses"] == 1
        assert counters["store_puts"] == 1
        assert counters["store_hits"] == 1

    def test_contains_does_not_touch_counters(self):
        store = ReportStore()
        store.put("k", {"a": 1})
        assert store.contains("k")
        assert not store.contains("other")
        counters = store.metrics.snapshot().counters
        assert "store_hits" not in counters
        assert "store_misses" not in counters

    def test_spool_survives_restart(self, tmp_path):
        first = ReportStore(tmp_path)
        first.put("deadbeef", {"estimate": {"total_minutes": 3.0}})
        assert first.spooled_count() == 1

        second = ReportStore(tmp_path)  # a fresh process would look like this
        assert len(second) == 0
        assert second.get("deadbeef") == {"estimate": {"total_minutes": 3.0}}
        assert second.metrics.snapshot().counters["store_hits"] == 1

    def test_torn_spool_entry_is_a_miss(self, tmp_path):
        (tmp_path / "badkey.json").write_text("{torn", encoding="utf-8")
        store = ReportStore(tmp_path)
        assert store.get("badkey") is None

    def test_clear_with_spool(self, tmp_path):
        store = ReportStore(tmp_path)
        store.put("k", {"a": 1})
        store.clear(spool=True)
        assert len(store) == 0
        assert store.spooled_count() == 0
        assert ReportStore(tmp_path).get("k") is None


class TestScheduler:
    def test_estimate_job_round_trip(self, small_example, efes):
        with JobScheduler(workers=2) as sched:
            job = sched.submit(small_example, "estimate", "high")
            job = sched.wait(job.id, timeout=120)
            assert job.state is JobState.DONE
            restored = estimate_from_dict(job.result["estimate"])
        expected = efes.estimate(small_example, ResultQuality.HIGH_QUALITY)
        assert restored == expected

    def test_assess_job_round_trip(self, small_example, efes):
        with JobScheduler(workers=1) as sched:
            job = sched.submit(small_example, "assess")
            job = sched.wait(job.id, timeout=120)
            assert job.state is JobState.DONE
            restored = reports_from_dict(job.result["reports"])
        assert restored == efes.assess(small_example)

    def test_second_submission_served_from_store(self, small_example):
        with JobScheduler(workers=1) as sched:
            first = sched.submit(small_example, "estimate", "high")
            first = sched.wait(first.id, timeout=120)
            assert first.state is JobState.DONE
            assert not first.from_store

            second = sched.submit(small_example, "estimate", "high")
            # Born DONE: no queueing, no recomputation.
            assert second.state is JobState.DONE
            assert second.from_store
            assert second.result == first.result
            counters = sched.metrics.snapshot().counters
            assert counters["jobs_from_store"] == 1
            assert counters["store_hits"] == 1
            assert sched.stats()["completed_jobs"] == 1

    def test_unknown_kind_rejected(self, small_example, scheduler):
        with pytest.raises(ValueError, match="unknown job kind"):
            scheduler.submit(small_example, "transmogrify")

    def test_queue_saturation_is_explicit_backpressure(self):
        release, started = threading.Event(), threading.Event()
        with JobScheduler(workers=1, max_queue=1) as sched:
            running = sched.submit_callable(
                blocking_payload(release, started), name="running"
            )
            assert started.wait(5.0)
            queued = sched.submit_callable(
                blocking_payload(release), name="queued"
            )
            with pytest.raises(QueueFullError) as excinfo:
                sched.submit_callable(blocking_payload(release), name="third")
            assert excinfo.value.retry_after >= 1.0
            assert excinfo.value.depth == 1
            assert sched.metrics.snapshot().counters["jobs_rejected"] == 1

            release.set()
            assert sched.wait(running.id, timeout=10).state is JobState.DONE
            assert sched.wait(queued.id, timeout=10).state is JobState.DONE

    def test_timeout_fails_the_job_and_frees_the_slot(self, scheduler):
        release = threading.Event()
        stuck = scheduler.submit_callable(
            blocking_payload(release), name="stuck", timeout=0.2
        )
        stuck = scheduler.wait(stuck.id, timeout=10)
        assert stuck.state is JobState.FAILED
        assert "timed out after 0.2s" in stuck.error
        assert scheduler.metrics.snapshot().counters["jobs_timeout"] == 1

        # The slot is free again: new work still runs to completion.
        after = scheduler.submit_callable(lambda job: {"ok": True})
        assert scheduler.wait(after.id, timeout=10).state is JobState.DONE
        release.set()

    def test_cancel_queued_job(self, scheduler):
        release, started = threading.Event(), threading.Event()
        scheduler.submit_callable(blocking_payload(release, started))
        assert started.wait(5.0)
        ran = []
        queued = scheduler.submit_callable(
            lambda job: ran.append(job.id) or {"ok": True}
        )
        cancelled = scheduler.cancel(queued.id)
        assert cancelled.state is JobState.CANCELLED
        release.set()
        scheduler.wait(queued.id, timeout=10)
        assert ran == []

    def test_cancel_running_job(self, scheduler):
        release, started = threading.Event(), threading.Event()
        job = scheduler.submit_callable(blocking_payload(release, started))
        assert started.wait(5.0)
        scheduler.cancel(job.id)
        job = scheduler.wait(job.id, timeout=10)
        assert job.state is JobState.CANCELLED
        assert scheduler.metrics.snapshot().counters["jobs_cancelled"] == 1

    def test_priority_orders_the_queue(self, scheduler):
        release, started = threading.Event(), threading.Event()
        scheduler.submit_callable(blocking_payload(release, started))
        assert started.wait(5.0)
        order = []
        low = scheduler.submit_callable(
            lambda job: order.append("low") or {}, priority=0
        )
        high = scheduler.submit_callable(
            lambda job: order.append("high") or {}, priority=5
        )
        release.set()
        scheduler.wait(low.id, timeout=10)
        scheduler.wait(high.id, timeout=10)
        assert order == ["high", "low"]

    def test_failing_payload_is_isolated(self, scheduler):
        def explode(job):
            raise ValueError("boom")

        job = scheduler.submit_callable(explode)
        job = scheduler.wait(job.id, timeout=10)
        assert job.state is JobState.FAILED
        assert job.error == "ValueError: boom"

    def test_closed_scheduler_rejects_submissions(self):
        sched = JobScheduler(workers=1)
        sched.close()
        with pytest.raises(SchedulerClosedError):
            sched.submit_callable(lambda job: {})

    def test_spooled_store_skips_recompute_across_schedulers(
        self, small_example, tmp_path
    ):
        with JobScheduler(
            workers=1, store=ReportStore(tmp_path)
        ) as first:
            job = first.submit(small_example, "estimate", "high")
            result = first.wait(job.id, timeout=120).result
        # A brand-new scheduler (fresh process, same spool) serves the
        # identical content without running the pipeline.
        with JobScheduler(
            workers=1, store=ReportStore(tmp_path)
        ) as second:
            job = second.submit(small_example, "estimate", "high")
            assert job.from_store
            assert job.result == result
            assert second.stats()["completed_jobs"] == 0


class TestExperimentsIntegration:
    def test_evaluate_domain_via_scheduler_matches_direct(
        self, small_example, efes
    ):
        from repro.experiments import evaluate_domain
        from repro.practitioner import PractitionerSimulator

        direct = evaluate_domain(
            [small_example], efes, PractitionerSimulator()
        )
        with JobScheduler(workers=1) as sched:
            routed = evaluate_domain(
                [small_example], efes, PractitionerSimulator(), sched
            )
        assert [c.efes_total for c in routed] == [
            c.efes_total for c in direct
        ]
        assert [c.measured_total for c in routed] == [
            c.measured_total for c in direct
        ]


@pytest.fixture()
def service():
    scheduler = JobScheduler(workers=2, max_queue=8)
    server = make_server(scheduler, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, scheduler
    finally:
        server.shutdown()
        server.server_close()
        scheduler.close(wait=True, timeout=5.0)
        thread.join(timeout=5.0)


class TestHTTPService:
    def test_full_submit_poll_result_cycle(self, service):
        server, _ = service
        client = ServiceClient(server.url)
        assert client.healthz()["status"] == "ok"

        job = client.submit("s4-s4", kind="estimate", quality="high")
        assert job["state"] in ("queued", "running", "done")
        doc = client.result(job["id"], deadline=120)
        estimate = estimate_from_dict(doc["estimate"])
        assert estimate.total_minutes > 0
        assert client.status(job["id"])["state"] == "done"
        assert any(j["id"] == job["id"] for j in client.jobs())

    def test_duplicate_content_hits_the_store(self, service):
        server, _ = service
        client = ServiceClient(server.url)
        first = client.submit("s4-s4", kind="assess")
        client.result(first["id"], deadline=120)

        second = client.submit("s4-s4", kind="assess")
        assert second["state"] == "done"
        assert second["from_store"]
        metrics = client.metrics()
        assert metrics["counters"]["store_hits"] >= 1
        assert metrics["counters"]["jobs_from_store"] == 1
        assert metrics["scheduler"]["queue_depth"] == 0
        assert metrics["store"]["entries"] >= 1

    def test_unknown_scenario_is_404(self, service):
        server, _ = service
        with pytest.raises(ServiceError) as excinfo:
            ServiceClient(server.url).submit("not-a-scenario")
        assert excinfo.value.status == 404
        assert "unknown scenario" in str(excinfo.value)

    def test_unknown_job_is_404(self, service):
        server, _ = service
        with pytest.raises(ServiceError) as excinfo:
            ServiceClient(server.url).status("nope")
        assert excinfo.value.status == 404

    def test_pending_result_does_not_block_when_wait_is_off(self, service):
        server, scheduler = service
        release, started = threading.Event(), threading.Event()
        job = scheduler.submit_callable(blocking_payload(release, started))
        assert started.wait(5.0)
        client = ServiceClient(server.url)
        with pytest.raises(TimeoutError):
            client.result(job.id, wait=False)
        release.set()

    def test_cancel_over_http(self, service):
        server, scheduler = service
        release, started = threading.Event(), threading.Event()
        job = scheduler.submit_callable(blocking_payload(release, started))
        assert started.wait(5.0)
        client = ServiceClient(server.url)
        assert client.cancel(job.id)["state"] == "cancelled"
        with pytest.raises(JobFailedError) as excinfo:
            client.result(job.id)
        assert excinfo.value.status == 410
        release.set()

    def test_backpressure_is_503_with_retry_after(self):
        scheduler = JobScheduler(workers=1, max_queue=1)
        server = make_server(scheduler, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        release, started = threading.Event(), threading.Event()
        try:
            scheduler.submit_callable(blocking_payload(release, started))
            assert started.wait(5.0)
            scheduler.submit_callable(blocking_payload(release))
            with pytest.raises(BackpressureError) as excinfo:
                ServiceClient(server.url).submit("s4-s4")
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after >= 1.0
        finally:
            release.set()
            server.shutdown()
            server.server_close()
            scheduler.close(wait=True, timeout=5.0)
            thread.join(timeout=5.0)

    def test_bad_request_body_is_400(self, service):
        server, _ = service
        import urllib.request

        request = urllib.request.Request(
            f"{server.url}/jobs",
            data=b"not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        import urllib.error

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
