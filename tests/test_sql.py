"""Tests for the SQL subset: lexer, parser, and executor."""

import pytest

from repro.relational import Database, DataType, Schema, primary_key, relation
from repro.relational.sql import SqlError, TokenType, parse, query, tokenize
from repro.relational.sql.ast import BinaryOp, ColumnRef, Literal, Select


@pytest.fixture
def db():
    schema = Schema(
        "db",
        relations=[
            relation(
                "albums",
                [
                    ("id", DataType.INTEGER),
                    ("name", DataType.STRING),
                    ("year", DataType.INTEGER),
                ],
            ),
            relation(
                "songs",
                [
                    ("album", DataType.INTEGER),
                    ("title", DataType.STRING),
                    ("length", DataType.INTEGER),
                ],
            ),
        ],
        constraints=[primary_key("albums", "id")],
    )
    database = Database(schema)
    database.insert_all(
        "albums",
        [
            (1, "Sweet Home", 1974),
            (2, "Anxiety", 1999),
            (3, "Quiet Nights", None),
        ],
    )
    database.insert_all(
        "songs",
        [
            (1, "Opener", 215),
            (1, "Closer", 310),
            (2, "Single", 187),
            (2, "B-Side", None),
        ],
    )
    return database


class TestLexer:
    def test_keywords_uppercased(self):
        tokens = tokenize("select Name from t")
        assert tokens[0].value == "SELECT"
        assert tokens[1].type is TokenType.IDENTIFIER

    def test_string_with_escaped_quote(self):
        tokens = tokenize("SELECT 'it''s'")
        assert tokens[1].value == "it's"

    def test_numbers(self):
        tokens = tokenize("1 2.5")
        assert [t.value for t in tokens[:2]] == ["1", "2.5"]

    def test_comments_skipped(self):
        tokens = tokenize("SELECT 1 -- trailing comment\n")
        assert [t.value for t in tokens[:2]] == ["SELECT", "1"]

    def test_unterminated_string_rejected(self):
        with pytest.raises(SqlError):
            tokenize("SELECT 'oops")

    def test_unexpected_character_rejected(self):
        with pytest.raises(SqlError):
            tokenize("SELECT #")


class TestParser:
    def test_simple_select_shape(self):
        statement = parse("SELECT a, b FROM t WHERE a = 1")
        assert isinstance(statement, Select)
        assert len(statement.items) == 2
        assert isinstance(statement.where, BinaryOp)

    def test_operator_precedence(self):
        statement = parse("SELECT 1 + 2 * 3")
        expression = statement.items[0].expression
        assert expression.operator == "+"
        assert expression.right.operator == "*"

    def test_and_binds_tighter_than_or(self):
        statement = parse("SELECT 1 WHERE a OR b AND c")
        assert statement.where.operator == "OR"

    def test_qualified_columns(self):
        statement = parse("SELECT t.a FROM t")
        assert statement.items[0].expression == ColumnRef("a", table="t")

    def test_alias_forms(self):
        explicit = parse("SELECT a AS x FROM t")
        implicit = parse("SELECT a x FROM t")
        assert explicit.items[0].alias == "x"
        assert implicit.items[0].alias == "x"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlError):
            parse("SELECT 1 FROM t garbage garbage")

    def test_unsupported_statement_rejected(self):
        with pytest.raises(SqlError):
            parse("DROP TABLE t")

    def test_literals(self):
        statement = parse("SELECT NULL, TRUE, FALSE, 'x'")
        values = [item.expression for item in statement.items]
        assert values == [
            Literal(None),
            Literal(True),
            Literal(False),
            Literal("x"),
        ]


class TestSelectBasics:
    def test_star(self, db):
        rows = query(db, "SELECT * FROM albums")
        assert len(rows) == 3
        assert rows[0] == {"id": 1, "name": "Sweet Home", "year": 1974}

    def test_projection_and_alias(self, db):
        rows = query(db, "SELECT name AS title FROM albums LIMIT 1")
        assert rows == [{"title": "Sweet Home"}]

    def test_where_comparison(self, db):
        rows = query(db, "SELECT id FROM albums WHERE year > 1980")
        assert [row["id"] for row in rows] == [2]

    def test_null_comparison_excludes(self, db):
        """year = NULL is never true; IS NULL is the way."""
        assert query(db, "SELECT id FROM albums WHERE year = NULL") == []
        rows = query(db, "SELECT id FROM albums WHERE year IS NULL")
        assert [row["id"] for row in rows] == [3]

    def test_is_not_null(self, db):
        rows = query(db, "SELECT COUNT(*) AS n FROM albums WHERE year IS NOT NULL")
        assert rows == [{"n": 2}]

    def test_in_list(self, db):
        rows = query(db, "SELECT id FROM albums WHERE id IN (1, 3)")
        assert [row["id"] for row in rows] == [1, 3]

    def test_not_in_list(self, db):
        rows = query(db, "SELECT id FROM albums WHERE id NOT IN (1, 3)")
        assert [row["id"] for row in rows] == [2]

    def test_between(self, db):
        rows = query(db, "SELECT id FROM albums WHERE year BETWEEN 1970 AND 1980")
        assert [row["id"] for row in rows] == [1]

    def test_like(self, db):
        rows = query(db, "SELECT name FROM albums WHERE name LIKE 'S%'")
        assert rows == [{"name": "Sweet Home"}]

    def test_like_underscore(self, db):
        rows = query(db, "SELECT name FROM albums WHERE name LIKE '_nxiety'")
        assert rows == [{"name": "Anxiety"}]

    def test_integer_division_is_sqlite_style(self, db):
        rows = query(db, "SELECT length / 60 AS minutes FROM songs WHERE title = 'Opener'")
        assert rows[0]["minutes"] == 3  # 215 / 60 truncates for int operands

    def test_float_division(self, db):
        rows = query(db, "SELECT length / 60.0 AS minutes FROM songs WHERE title = 'Opener'")
        assert rows[0]["minutes"] == pytest.approx(215 / 60)

    def test_concatenation(self, db):
        rows = query(db, "SELECT name || '!' AS loud FROM albums LIMIT 1")
        assert rows == [{"loud": "Sweet Home!"}]

    def test_order_by_desc(self, db):
        rows = query(db, "SELECT id FROM albums ORDER BY year DESC")
        # NULLs sort first; DESC reverses → NULL last here
        assert [row["id"] for row in rows] == [2, 1, 3]

    def test_order_by_source_column_not_selected(self, db):
        rows = query(db, "SELECT name FROM albums ORDER BY year ASC")
        assert rows[0]["name"] == "Quiet Nights"  # NULL year first

    def test_limit(self, db):
        assert len(query(db, "SELECT id FROM albums LIMIT 2")) == 2

    def test_distinct(self, db):
        rows = query(db, "SELECT DISTINCT album FROM songs")
        assert len(rows) == 2

    def test_select_without_from(self, db):
        assert query(db, "SELECT 1 + 1 AS two") == [{"two": 2}]


class TestJoins:
    def test_inner_join(self, db):
        rows = query(
            db,
            "SELECT a.name, s.title FROM albums a "
            "JOIN songs s ON a.id = s.album",
        )
        assert len(rows) == 4

    def test_left_join_pads(self, db):
        rows = query(
            db,
            "SELECT a.id, s.title FROM albums a "
            "LEFT JOIN songs s ON a.id = s.album",
        )
        padded = [row for row in rows if row["title"] is None]
        assert [row["id"] for row in padded] == [3]

    def test_anti_join_pattern(self, db):
        rows = query(
            db,
            "SELECT a.id FROM albums a LEFT JOIN songs s ON a.id = s.album "
            "WHERE s.title IS NULL",
        )
        assert [row["id"] for row in rows] == [3]

    def test_ambiguous_bare_column_rejected(self):
        schema = Schema(
            "s",
            relations=[relation("x", ["v"]), relation("y", ["v"])],
        )
        database = Database(schema)
        database.insert("x", ("a",))
        database.insert("y", ("a",))
        with pytest.raises(SqlError, match="ambiguous"):
            query(database, "SELECT v FROM x JOIN y ON x.v = y.v")

    def test_null_keys_never_hash_join(self, db):
        db.insert("songs", (None, "Orphan", 10))
        rows = query(
            db,
            "SELECT s.title FROM songs s JOIN albums a ON s.album = a.id",
        )
        assert "Orphan" not in {row["title"] for row in rows}

    def test_non_equi_join_falls_back(self, db):
        rows = query(
            db,
            "SELECT a.id, s.title FROM albums a "
            "JOIN songs s ON s.length > a.year",
        )
        assert rows == []  # lengths are all smaller than years

    def test_join_with_filter(self, db):
        rows = query(
            db,
            "SELECT s.title FROM albums a JOIN songs s ON a.id = s.album "
            "WHERE a.year < 1990 ORDER BY s.title",
        )
        assert [row["title"] for row in rows] == ["Closer", "Opener"]


class TestAggregation:
    def test_count_star(self, db):
        assert query(db, "SELECT COUNT(*) AS n FROM songs") == [{"n": 4}]

    def test_count_ignores_nulls(self, db):
        assert query(db, "SELECT COUNT(length) AS n FROM songs") == [{"n": 3}]

    def test_count_distinct(self, db):
        rows = query(db, "SELECT COUNT(DISTINCT album) AS n FROM songs")
        assert rows == [{"n": 2}]

    def test_sum_avg_min_max(self, db):
        rows = query(
            db,
            "SELECT SUM(length) AS s, AVG(length) AS a, "
            "MIN(length) AS lo, MAX(length) AS hi FROM songs",
        )
        assert rows[0]["s"] == 712
        assert rows[0]["a"] == pytest.approx(712 / 3)
        assert rows[0]["lo"] == 187 and rows[0]["hi"] == 310

    def test_aggregate_of_empty_group_is_null(self, db):
        rows = query(db, "SELECT MAX(length) AS m FROM songs WHERE album = 99")
        assert rows == [{"m": None}]

    def test_group_by(self, db):
        rows = query(
            db,
            "SELECT album, COUNT(*) AS n FROM songs GROUP BY album "
            "ORDER BY album",
        )
        assert rows == [{"album": 1, "n": 2}, {"album": 2, "n": 2}]

    def test_having(self, db):
        rows = query(
            db,
            "SELECT album, COUNT(length) AS n FROM songs GROUP BY album "
            "HAVING COUNT(length) > 1",
        )
        assert rows == [{"album": 1, "n": 2}]

    def test_group_concat(self, db):
        rows = query(
            db,
            "SELECT GROUP_CONCAT(title) AS titles FROM songs WHERE album = 1",
        )
        assert rows[0]["titles"] == "Opener, Closer"

    def test_group_key_in_output(self, db):
        rows = query(
            db,
            "SELECT a.name, COUNT(*) AS n FROM albums a "
            "JOIN songs s ON a.id = s.album GROUP BY a.name ORDER BY n DESC",
        )
        assert {row["name"] for row in rows} == {"Sweet Home", "Anxiety"}


class TestMutations:
    def test_insert_returns_count(self, db):
        count = db.execute("INSERT INTO albums (id, name) VALUES (9, 'New')")
        assert count == 1
        assert len(db.table("albums")) == 4

    def test_insert_multiple_tuples(self, db):
        count = db.execute(
            "INSERT INTO songs (album, title) VALUES (1, 'x'), (1, 'y')"
        )
        assert count == 2

    def test_insert_casts_values(self, db):
        db.execute("INSERT INTO albums (id, name, year) VALUES (9, 'N', '2001')")
        rows = db.query("SELECT year FROM albums WHERE id = 9")
        assert rows == [{"year": 2001}]

    def test_update_with_expression(self, db):
        updated = db.execute(
            "UPDATE songs SET length = length / 1000 WHERE length IS NOT NULL"
        )
        assert updated == 3

    def test_update_where(self, db):
        db.execute("UPDATE albums SET year = 2000 WHERE year IS NULL")
        assert db.query("SELECT COUNT(*) AS n FROM albums WHERE year IS NULL") == [
            {"n": 0}
        ]

    def test_delete(self, db):
        deleted = db.execute("DELETE FROM songs WHERE length IS NULL")
        assert deleted == 1
        assert len(db.table("songs")) == 3

    def test_delete_all(self, db):
        assert db.execute("DELETE FROM songs") == 4


class TestCreateTable:
    def test_create_with_inline_constraints(self, db):
        db.execute(
            "CREATE TABLE genres ("
            "id INTEGER PRIMARY KEY, "
            "name TEXT NOT NULL UNIQUE)"
        )
        assert db.schema.has_relation("genres")
        assert db.schema.primary_key_of("genres") is not None
        assert db.schema.is_not_null("genres", "name")
        assert db.schema.is_unique("genres", "name")

    def test_create_with_table_constraints(self, db):
        db.execute(
            "CREATE TABLE credits ("
            "album INTEGER REFERENCES albums(id), "
            "position INTEGER, "
            "PRIMARY KEY (album, position))"
        )
        pk = db.schema.primary_key_of("credits")
        assert pk.attributes == ("album", "position")
        assert db.schema.foreign_keys_of("credits")

    def test_created_table_is_usable(self, db):
        db.execute("CREATE TABLE t (v TEXT)")
        db.execute("INSERT INTO t (v) VALUES ('hello')")
        assert db.query("SELECT v FROM t") == [{"v": "hello"}]

    def test_unknown_type_rejected(self, db):
        with pytest.raises(SqlError):
            db.execute("CREATE TABLE t (v BLOB)")


class TestPaperCrossChecks:
    """The SQL layer re-derives Table 3's violation counts independently
    of the CSG machinery — two implementations, one truth."""

    def test_multi_artist_albums_503(self, example):
        source = example.sources[0]
        rows = source.query(
            "SELECT a.id, COUNT(DISTINCT c.artist) AS artists "
            "FROM albums a JOIN artist_credits c "
            "ON a.artist_list = c.artist_list "
            "GROUP BY a.id HAVING COUNT(DISTINCT c.artist) > 1"
        )
        assert len(rows) == 503

    def test_detached_artists_102(self, example):
        source = example.sources[0]
        rows = source.query(
            "SELECT COUNT(DISTINCT c.artist) AS n FROM artist_credits c "
            "LEFT JOIN albums a ON c.artist_list = a.artist_list "
            "WHERE a.id IS NULL"
        )
        assert rows == [{"n": 102}]

    def test_sql_agrees_with_csg_detector(self, example, example_reports):
        counts = {
            violation.target_relationship: violation.violation_count
            for violation in example_reports["structure"].violations
        }
        source = example.sources[0]
        sql_multi = len(
            source.query(
                "SELECT a.id FROM albums a JOIN artist_credits c "
                "ON a.artist_list = c.artist_list "
                "GROUP BY a.id HAVING COUNT(DISTINCT c.artist) > 1"
            )
        )
        assert counts["records->records.artist"] == sql_multi
