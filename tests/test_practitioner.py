"""Tests for the practitioner simulator (ground-truth effort measurement)."""

import pytest

from repro.core import ResultQuality
from repro.practitioner import (
    HumanCostModel,
    MAPPING,
    NoisyClock,
    PractitionerSimulator,
    STRUCTURE,
    VALUES,
)
from repro.relational.validation import is_valid
from repro.scenarios import (
    bibliographic_scenarios,
    music_scenarios,
    scenario_s4_s4,
)


@pytest.fixture(scope="module")
def simulator():
    return PractitionerSimulator()


@pytest.fixture(scope="module")
def example_result(simulator, small_example):
    return simulator.integrate(small_example, ResultQuality.HIGH_QUALITY)


class TestNoisyClock:
    def test_deterministic_per_seed(self):
        a = NoisyClock(sigma=0.2, seed=5)
        b = NoisyClock(sigma=0.2, seed=5)
        assert [a.charge(10) for _ in range(5)] == [
            b.charge(10) for _ in range(5)
        ]

    def test_zero_sigma_is_exact(self):
        clock = NoisyClock(sigma=0.0, seed=1)
        assert clock.charge(7.5) == 7.5

    def test_zero_minutes_free(self):
        clock = NoisyClock(sigma=0.2, seed=1)
        assert clock.charge(0.0) == 0.0

    def test_noise_stays_reasonable(self):
        clock = NoisyClock(sigma=0.1, seed=1)
        charges = [clock.charge(10.0) for _ in range(200)]
        assert all(5.0 < value < 20.0 for value in charges)


class TestIntegrationOutcome:
    def test_result_is_valid_target(self, example_result):
        assert is_valid(example_result.target)

    def test_new_rows_were_inserted(self, example_result, small_example):
        before = small_example.target.table("records")
        after = example_result.target.table("records")
        assert len(after) > len(before)

    def test_original_target_untouched(self, simulator, small_example):
        rows_before = small_example.target.total_rows()
        simulator.integrate(small_example, ResultQuality.LOW_EFFORT)
        assert small_example.target.total_rows() == rows_before

    def test_breakdown_covers_total(self, example_result):
        breakdown = example_result.breakdown()
        assert sum(breakdown.values()) == pytest.approx(
            example_result.total_minutes
        )
        assert set(breakdown) == {MAPPING, STRUCTURE, VALUES}

    def test_detached_artists_integrated_at_high_quality(
        self, example_result, small_example
    ):
        """Every source artist must appear in the integrated records."""
        source = small_example.sources[0]
        source_artists = source.table("artist_credits").distinct("artist")
        integrated = example_result.target.table("records").distinct("artist")
        merged_blob = " ".join(str(value) for value in integrated)
        assert all(str(artist) in merged_blob for artist in source_artists)

    def test_durations_converted(self, example_result):
        durations = [
            value
            for value in example_result.target.table("tracks").column(
                "duration"
            )
            if value is not None
        ]
        assert durations
        assert all(":" in str(value) for value in durations)

    def test_low_effort_rejects_instead(self, simulator, small_example):
        low = simulator.integrate(small_example, ResultQuality.LOW_EFFORT)
        high = simulator.integrate(small_example, ResultQuality.HIGH_QUALITY)
        assert len(low.target.table("records")) < len(
            high.target.table("records")
        )


class TestMeasuredEffort:
    def test_high_quality_costs_more(self, simulator, small_example):
        low = simulator.integrate(small_example, ResultQuality.LOW_EFFORT)
        high = simulator.integrate(small_example, ResultQuality.HIGH_QUALITY)
        assert high.total_minutes > low.total_minutes

    def test_deterministic(self, small_example):
        a = PractitionerSimulator(seed=9).integrate(
            small_example, ResultQuality.HIGH_QUALITY
        )
        b = PractitionerSimulator(seed=9).integrate(
            small_example, ResultQuality.HIGH_QUALITY
        )
        assert a.total_minutes == b.total_minutes

    def test_seed_perturbs_measurement(self, small_example):
        a = PractitionerSimulator(seed=1).integrate(
            small_example, ResultQuality.HIGH_QUALITY
        )
        b = PractitionerSimulator(seed=2).integrate(
            small_example, ResultQuality.HIGH_QUALITY
        )
        assert a.total_minutes != b.total_minutes

    def test_actions_log_is_structured(self, example_result):
        assert all(record.minutes >= 0 for record in example_result.actions)
        assert any(
            record.action == "write mapping query"
            for record in example_result.actions
        )

    def test_conversion_charged_once_per_correspondence(self, example_result):
        scripts = example_result.actions_of("write conversion script")
        subjects = [record.subject for record in scripts]
        assert len(subjects) == len(set(subjects))

    def test_cost_model_scales_measurement(self, small_example):
        cheap = PractitionerSimulator(
            HumanCostModel(noise_sigma=0.0), seed=1
        ).integrate(small_example, ResultQuality.HIGH_QUALITY)
        slow_model = HumanCostModel(
            study_source_table=22.0,
            write_query_base=45.0,
            inspect_and_fill_value=16.0,
            noise_sigma=0.0,
        )
        slow = PractitionerSimulator(slow_model, seed=1).integrate(
            small_example, ResultQuality.HIGH_QUALITY
        )
        assert slow.total_minutes > cheap.total_minutes


class TestAllScenariosIntegrate:
    @pytest.mark.parametrize(
        "scenario_index", range(8), ids=lambda i: f"scenario{i}"
    )
    def test_valid_result_both_qualities(self, simulator, scenario_index):
        scenarios = bibliographic_scenarios() + music_scenarios()
        scenario = scenarios[scenario_index]
        for quality in (ResultQuality.LOW_EFFORT, ResultQuality.HIGH_QUALITY):
            result = simulator.integrate(scenario, quality)
            assert is_valid(result.target), (scenario.name, quality)
            assert result.total_minutes > 0

    def test_identity_scenario_needs_no_cleaning(self, simulator):
        result = simulator.integrate(
            scenario_s4_s4(), ResultQuality.HIGH_QUALITY
        )
        breakdown = result.breakdown()
        assert breakdown[STRUCTURE] + breakdown[VALUES] < (
            0.5 * breakdown[MAPPING]
        )
