"""Unit tests for table and figure rendering."""

import pytest

from repro.core.calibration import ComparisonRow, DomainResult, EstimateSummary
from repro.reporting import render_bar, render_domain_figure, render_table


class TestRenderTable:
    def test_basic_shape(self):
        text = render_table(["a", "bb"], [[1, "x"], [22, "yy"]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "a" in lines[0] and "bb" in lines[0]

    def test_title(self):
        text = render_table(["a"], [[1]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_column_alignment(self):
        text = render_table(["col", "x"], [["a", 1], ["longer", 22]])
        lines = text.splitlines()
        separator_positions = {line.index("|") for line in lines if "|" in line}
        assert len(separator_positions) == 1  # all separators align

    def test_float_formatting(self):
        text = render_table(["v"], [[1.5], [2.0]])
        rows = text.splitlines()[2:]
        assert rows[0].strip() == "1.5"
        assert rows[1].strip() == "2"  # trailing zeros stripped

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        text = render_table(["a"], [])
        assert "a" in text


def _domain_result():
    def summary(estimator, total, breakdown):
        return EstimateSummary(estimator, "s1-s2", "low eff.", total, breakdown)

    row = ComparisonRow(
        "s1-s2",
        "low eff.",
        summary("Efes", 60.0, {"Mapping": 40.0, "Cleaning (Values)": 20.0}),
        summary("Measured", 70.0, {"Mapping": 50.0, "Cleaning (Structure)": 20.0}),
        summary("Counting", 90.0, {"Mapping": 40.0, "Cleaning": 50.0}),
    )
    return DomainResult("test", (row,), efes_rmse=0.14, counting_rmse=0.29)


class TestRenderFigure:
    def test_bar_glyphs(self):
        bar = render_bar({"Mapping": 30.0, "Cleaning (Values)": 10.0}, 1.0, 80)
        assert bar.startswith("M" * 30)
        assert bar.endswith("V" * 10)

    def test_bar_respects_width(self):
        bar = render_bar({"Mapping": 500.0}, 1.0, 40)
        assert len(bar) == 40

    def test_zero_segments_skipped(self):
        bar = render_bar({"Mapping": 0.0, "Cleaning": 5.0}, 1.0, 40)
        assert "M" not in bar

    def test_figure_contains_all_estimators(self):
        figure = render_domain_figure(_domain_result())
        for token in ("Efes", "Measured", "Counting"):
            assert token in figure

    def test_figure_reports_rmse(self):
        figure = render_domain_figure(_domain_result())
        assert "rmse" in figure
        assert "0.14" in figure and "0.29" in figure

    def test_figure_reports_improvement(self):
        figure = render_domain_figure(_domain_result())
        assert "×2.1" in figure
