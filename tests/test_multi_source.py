"""Tests for multi-source integration scenarios (abstract: "data
integration projects with multiple sources")."""

import pytest

from repro.core import ResultQuality, default_efes
from repro.practitioner import PractitionerSimulator
from repro.relational.validation import is_valid
from repro.scenarios.bibliographic import scenario_multi_source


@pytest.fixture(scope="module")
def scenario():
    return scenario_multi_source()


@pytest.fixture(scope="module")
def reports(scenario):
    return default_efes().assess(scenario)


class TestMultiSourceAssessment:
    def test_two_sources(self, scenario):
        assert [source.name for source in scenario.sources] == ["s1", "s3"]

    def test_mapping_connections_per_source(self, reports):
        connections = reports["mapping"].connections
        by_source = {}
        for connection in connections:
            by_source.setdefault(connection.source_database, []).append(
                connection
            )
        assert set(by_source) == {"s1", "s3"}

    def test_structure_violations_carry_source_provenance(self, reports):
        sources = {v.source_database for v in reports["structure"].violations}
        assert sources <= {"s1", "s3"}
        assert sources  # both sources have NOT NULL venue gaps etc.

    def test_value_findings_from_both_sources(self, reports):
        sources = {f.source_database for f in reports["values"].findings}
        # s1 has the year-string and author-list problems; s3 the
        # inverted-name format.
        assert "s1" in sources
        assert "s3" in sources

    def test_attribute_count_sums_sources(self, scenario):
        assert scenario.total_source_attributes() == 22  # 11 + 11


class TestMultiSourceEstimation:
    def test_estimates_cover_both_sources(self, scenario):
        efes = default_efes()
        estimate = efes.estimate(scenario, ResultQuality.HIGH_QUALITY)
        subjects = " ".join(entry.task.subject for entry in estimate.entries)
        assert "s1" in subjects and "s3" in subjects

    def test_multi_source_costs_more_than_each_single(self, scenario):
        from repro.scenarios import scenario_s1_s2

        efes = default_efes()
        multi = efes.estimate(scenario, ResultQuality.HIGH_QUALITY)
        single = efes.estimate(scenario_s1_s2(), ResultQuality.HIGH_QUALITY)
        assert multi.total_minutes > single.mapping_minutes()


class TestMultiSourceSimulation:
    @pytest.mark.parametrize(
        "quality", [ResultQuality.LOW_EFFORT, ResultQuality.HIGH_QUALITY]
    )
    def test_integration_reaches_valid_target(self, scenario, quality):
        result = PractitionerSimulator().integrate(scenario, quality)
        assert is_valid(result.target)

    def test_both_sources_contribute_rows(self, scenario):
        result = PractitionerSimulator().integrate(
            scenario, ResultQuality.HIGH_QUALITY
        )
        publications = result.target.table("publications")
        before = scenario.target.table("publications")
        added = len(publications) - len(before)
        articles = len(scenario.source("s1").table("articles"))
        papers = len(scenario.source("s3").table("papers"))
        # Most of both sources' records survive high-quality integration.
        assert added > 0.8 * (articles + papers)
