"""Tests for n-ary uniqueness detection via the join operator (Lemma 3)."""

import pytest

from repro.core import ResultQuality, default_efes
from repro.core.tasks import StructuralConflict, TaskType
from repro.matching import (
    CorrespondenceSet,
    attribute_correspondence,
    relation_correspondence,
)
from repro.practitioner import PractitionerSimulator
from repro.relational import (
    Database,
    DataType,
    Schema,
    primary_key,
    relation,
    unique,
)
from repro.relational.validation import is_valid
from repro.scenarios.scenario import IntegrationScenario


def composite_scenario(source_rows, source_constraints=()):
    source_schema = Schema(
        "src",
        relations=[
            relation(
                "s",
                [("k", DataType.INTEGER), ("pos", DataType.INTEGER), "v"],
            )
        ],
        constraints=list(source_constraints),
    )
    target_schema = Schema(
        "tgt",
        relations=[
            relation(
                "t",
                [("k", DataType.INTEGER), ("pos", DataType.INTEGER), "v"],
            )
        ],
        constraints=[primary_key("t", ("k", "pos"))],
    )
    source = Database(source_schema)
    source.insert_all("s", source_rows)
    target = Database(target_schema)
    correspondences = CorrespondenceSet(
        [
            relation_correspondence("s", "t"),
            attribute_correspondence("s.k", "t.k"),
            attribute_correspondence("s.pos", "t.pos"),
            attribute_correspondence("s.v", "t.v"),
        ]
    )
    return IntegrationScenario("nary", source, target, correspondences)


def composite_violations(scenario):
    report = default_efes().assess(scenario)["structure"]
    return [
        v
        for v in report.violations
        if v.conflict is StructuralConflict.UNIQUE_VIOLATED
        and "(" in v.target_attribute
    ]


class TestDetection:
    def test_duplicate_combination_detected(self):
        scenario = composite_scenario(
            [(1, 1, "a"), (1, 1, "b"), (2, 1, "c"), (2, 2, "d")]
        )
        rows = composite_violations(scenario)
        assert len(rows) == 1
        assert rows[0].violation_count == 1
        assert rows[0].target_attribute == "(k, pos)"

    def test_multiple_duplicates_counted(self):
        scenario = composite_scenario(
            [(1, 1, "a"), (1, 1, "b"), (1, 1, "c"), (2, 2, "d"), (2, 2, "e")]
        )
        rows = composite_violations(scenario)
        assert rows[0].violation_count == 3  # 2 extras + 1 extra

    def test_unique_combinations_are_clean(self):
        scenario = composite_scenario(
            [(1, 1, "a"), (1, 2, "b"), (2, 1, "c")]
        )
        assert composite_violations(scenario) == []

    def test_source_key_suppresses_check(self):
        """If the source already enforces the composite key, the inferred
        join cardinality is ⊆ 1 and no data scan is needed."""
        scenario = composite_scenario(
            [(1, 1, "a"), (1, 2, "b")],
            source_constraints=[unique("s", ("k", "pos"))],
        )
        assert composite_violations(scenario) == []

    def test_null_components_are_exempt(self):
        scenario = composite_scenario(
            [(1, None, "a"), (1, None, "b"), (2, 1, "c")]
        )
        assert composite_violations(scenario) == []

    def test_inferred_cardinality_reported(self):
        scenario = composite_scenario([(1, 1, "a"), (1, 1, "b")])
        rows = composite_violations(scenario)
        assert rows[0].prescribed == "1"
        assert not rows[0].inferred.startswith("1..1")


class TestPlanningAndSimulation:
    def test_high_quality_plan_aggregates_tuples(self):
        scenario = composite_scenario([(1, 1, "a"), (1, 1, "b"), (2, 1, "c")])
        estimate = default_efes().estimate(
            scenario, ResultQuality.HIGH_QUALITY
        )
        types = [entry.task.type for entry in estimate.entries]
        assert TaskType.AGGREGATE_TUPLES in types

    def test_low_effort_plan_nulls_values(self):
        scenario = composite_scenario([(1, 1, "a"), (1, 1, "b"), (2, 1, "c")])
        estimate = default_efes().estimate(scenario, ResultQuality.LOW_EFFORT)
        types = [entry.task.type for entry in estimate.entries]
        assert TaskType.SET_VALUES_TO_NULL in types

    @pytest.mark.parametrize(
        "quality", [ResultQuality.LOW_EFFORT, ResultQuality.HIGH_QUALITY]
    )
    def test_simulator_respects_composite_key(self, quality):
        scenario = composite_scenario(
            [(1, 1, "a"), (1, 1, "b"), (2, 1, "c"), (2, 2, "d")]
        )
        result = PractitionerSimulator().integrate(scenario, quality)
        assert is_valid(result.target)
