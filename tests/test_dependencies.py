"""Unit tests for dependency discovery (UCC / IND / FD)."""

import pytest

from repro.profiling.dependencies import (
    discover_fds,
    discover_inds,
    discover_uccs,
    ind_graph,
)
from repro.relational import Database, DataType, Schema, relation


@pytest.fixture
def database():
    schema = Schema(
        "db",
        relations=[
            relation(
                "r",
                [
                    ("id", DataType.INTEGER),
                    ("code", DataType.STRING),
                    ("grp", DataType.STRING),
                    ("grp_label", DataType.STRING),
                ],
            ),
            relation("s", [("rid", DataType.INTEGER), ("x", DataType.STRING)]),
        ],
    )
    db = Database(schema)
    db.insert_all(
        "r",
        [
            (1, "a", "g1", "Group One"),
            (2, "b", "g1", "Group One"),
            (3, "c", "g2", "Group Two"),
        ],
    )
    db.insert_all("s", [(1, "x"), (2, "y")])
    return db


class TestUccDiscovery:
    def test_unary_uccs_found(self, database):
        uccs = discover_uccs(database, max_arity=1)
        found = {(u.relation, u.attributes) for u in uccs}
        assert ("r", ("id",)) in found
        assert ("r", ("code",)) in found

    def test_non_unique_excluded(self, database):
        uccs = discover_uccs(database, max_arity=1)
        assert ("r", ("grp",)) not in {(u.relation, u.attributes) for u in uccs}

    def test_binary_uccs_are_minimal(self, database):
        uccs = discover_uccs(database, max_arity=2)
        # (id, code) is unique but not minimal — both components are UCCs.
        assert ("r", ("id", "code")) not in {
            (u.relation, u.attributes) for u in uccs
        }

    def test_binary_ucc_found_when_needed(self):
        schema = Schema("db", relations=[relation("t", ["a", "b"])])
        db = Database(schema)
        db.insert_all("t", [("x", "1"), ("x", "2"), ("y", "1")])
        uccs = discover_uccs(db, max_arity=2)
        assert {(u.relation, u.attributes) for u in uccs} == {("t", ("a", "b"))}

    def test_null_containing_column_not_unique(self):
        schema = Schema("db", relations=[relation("t", ["a"])])
        db = Database(schema)
        db.insert_all("t", [("x",), (None,)])
        assert discover_uccs(db, max_arity=1) == []

    def test_empty_relation_yields_nothing(self):
        schema = Schema("db", relations=[relation("t", ["a"])])
        assert discover_uccs(Database(schema)) == []


class TestIndDiscovery:
    def test_fk_like_ind_found(self, database):
        inds = discover_inds(database)
        assert any(
            ind.relation == "s"
            and ind.attribute == "rid"
            and ind.referenced == "r"
            and ind.referenced_attribute == "id"
            for ind in inds
        )

    def test_reflexive_ind_excluded(self, database):
        inds = discover_inds(database)
        assert not any(
            (ind.relation, ind.attribute)
            == (ind.referenced, ind.referenced_attribute)
            for ind in inds
        )

    def test_non_included_column_excluded(self, database):
        inds = discover_inds(database)
        assert not any(
            ind.relation == "r" and ind.attribute == "id" and ind.referenced == "s"
            for ind in inds
        )

    def test_ind_graph_shape(self, database):
        graph = ind_graph(discover_inds(database))
        assert ("s", "rid") in graph


class TestFdDiscovery:
    def test_fd_found(self, database):
        fds = discover_fds(database)
        assert any(
            fd.relation == "r"
            and fd.determinant == "grp"
            and fd.dependent == "grp_label"
            for fd in fds
        )

    def test_violated_fd_excluded(self):
        schema = Schema("db", relations=[relation("t", ["a", "b"])])
        db = Database(schema)
        db.insert_all("t", [("x", "1"), ("x", "2")])
        assert discover_fds(db) == []

    def test_unique_determinants_skipped(self, database):
        fds = discover_fds(database)
        assert not any(fd.determinant == "id" for fd in fds)

    def test_null_determinants_ignored(self):
        schema = Schema("db", relations=[relation("t", ["a", "b"])])
        db = Database(schema)
        db.insert_all("t", [(None, "1"), (None, "2"), ("x", "1"), ("x", "1")])
        fds = discover_fds(db)
        assert any(fd.determinant == "a" and fd.dependent == "b" for fd in fds)
