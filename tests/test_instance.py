"""Unit tests for repro.relational.instance and database."""

import pytest

from repro.relational import (
    Database,
    DataType,
    InstanceError,
    NotNull,
    Schema,
    primary_key,
    relation,
)


@pytest.fixture
def database():
    schema = Schema(
        "db",
        relations=[
            relation(
                "songs",
                [
                    ("id", DataType.INTEGER),
                    ("name", DataType.STRING),
                    ("length", DataType.INTEGER),
                ],
            )
        ],
        constraints=[primary_key("songs", "id"), NotNull("songs", "name")],
    )
    return Database(schema)


class TestInsert:
    def test_positional_insert(self, database):
        database.insert("songs", (1, "Song A", 215900))
        assert len(database.table("songs")) == 1

    def test_mapping_insert(self, database):
        database.insert("songs", {"id": 2, "name": "Song B"})
        row = database.table("songs").rows[0]
        assert row == (2, "Song B", None)

    def test_values_are_cast(self, database):
        database.insert("songs", ("3", "Song C", "100"))
        assert database.table("songs").rows[0] == (3, "Song C", 100)

    def test_arity_mismatch_rejected(self, database):
        with pytest.raises(InstanceError):
            database.insert("songs", (1, "X"))

    def test_unknown_mapping_key_rejected(self, database):
        with pytest.raises(InstanceError):
            database.insert("songs", {"id": 1, "name": "X", "oops": 2})

    def test_insert_all(self, database):
        database.insert_all("songs", [(1, "A", 10), (2, "B", 20)])
        assert len(database.table("songs")) == 2


class TestColumnAccess:
    @pytest.fixture(autouse=True)
    def rows(self, database):
        database.insert_all(
            "songs", [(1, "A", 10), (2, "B", None), (3, "A", 30)]
        )

    def test_column(self, database):
        assert database.table("songs").column("length") == [10, None, 30]

    def test_distinct_skips_nulls(self, database):
        assert database.table("songs").distinct("length") == {10, 30}

    def test_distinct_deduplicates(self, database):
        assert database.table("songs").distinct("name") == {"A", "B"}

    def test_dicts(self, database):
        first = next(database.table("songs").dicts())
        assert first == {"id": 1, "name": "A", "length": 10}


class TestMutation:
    @pytest.fixture(autouse=True)
    def rows(self, database):
        database.insert_all(
            "songs", [(1, "A", 10), (2, "B", 20), (3, "C", 30)]
        )

    def test_delete_where(self, database):
        deleted = database.table("songs").delete_where(
            lambda row: row["length"] > 15
        )
        assert deleted == 2
        assert len(database.table("songs")) == 1

    def test_update_where(self, database):
        updated = database.table("songs").update_where(
            lambda row: row["id"] == 2, {"length": 99}
        )
        assert updated == 1
        assert database.table("songs").column("length") == [10, 99, 30]

    def test_map_column(self, database):
        changed = database.table("songs").map_column(
            "length", lambda value: value * 2
        )
        assert changed == 3
        assert database.table("songs").column("length") == [20, 40, 60]

    def test_map_column_skips_nulls(self, database):
        database.insert("songs", (4, "D", None))
        changed = database.table("songs").map_column(
            "length", lambda value: value + 1
        )
        assert changed == 3  # the NULL row is untouched


class TestDatabase:
    def test_copy_is_deep(self, database):
        database.insert("songs", (1, "A", 10))
        clone = database.copy()
        clone.insert("songs", (2, "B", 20))
        assert len(database.table("songs")) == 1
        assert len(clone.table("songs")) == 2

    def test_total_rows(self, database):
        database.insert_all("songs", [(1, "A", 1), (2, "B", 2)])
        assert database.total_rows() == 2

    def test_instance_must_match_schema(self, database):
        from repro.relational import DatabaseInstance

        other_schema = Schema("other", relations=[relation("r", ["a"])])
        with pytest.raises(ValueError):
            Database(database.schema, DatabaseInstance(other_schema))
