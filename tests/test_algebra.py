"""Unit tests for repro.relational.algebra."""

import pytest

from repro.relational import DataType, Database, Schema, relation
from repro.relational.algebra import (
    aggregate_column,
    distinct,
    group_by,
    natural_join,
    project,
    rename,
    scan,
    select,
    union_all,
)

LEFT = [
    {"id": 1, "name": "A"},
    {"id": 2, "name": "B"},
    {"id": 3, "name": None},
]
RIGHT = [
    {"ref": 1, "value": 10},
    {"ref": 1, "value": 11},
    {"ref": 9, "value": 90},
]


class TestScanSelectProject:
    def test_scan(self):
        schema = Schema("s", relations=[relation("r", [("a", DataType.INTEGER)])])
        database = Database(schema)
        database.insert("r", (1,))
        assert scan(database.table("r")) == [{"a": 1}]

    def test_select(self):
        assert select(LEFT, lambda row: row["id"] > 1) == LEFT[1:]

    def test_project_renames(self):
        result = project(LEFT, {"key": "id"})
        assert result == [{"key": 1}, {"key": 2}, {"key": 3}]

    def test_project_computed(self):
        result = project(LEFT, {"double": lambda row: row["id"] * 2})
        assert [row["double"] for row in result] == [2, 4, 6]

    def test_rename(self):
        result = rename(LEFT, {"id": "identifier"})
        assert "identifier" in result[0] and "id" not in result[0]


class TestJoin:
    def test_inner_join(self):
        result = natural_join(LEFT, RIGHT, "id", "ref")
        assert len(result) == 2
        assert {row["value"] for row in result} == {10, 11}

    def test_left_join_pads_nulls(self):
        result = natural_join(LEFT, RIGHT, "id", "ref", how="left")
        padded = [row for row in result if row["id"] == 2]
        assert padded and padded[0]["value"] is None

    def test_null_keys_never_join(self):
        result = natural_join(
            [{"id": None}], [{"ref": None, "v": 1}], "id", "ref"
        )
        assert result == []

    def test_column_collision_suffixed(self):
        result = natural_join(
            [{"id": 1, "name": "L"}],
            [{"ref": 1, "name": "R"}],
            "id",
            "ref",
        )
        assert result[0]["name"] == "L"
        assert result[0]["name_r"] == "R"

    def test_bad_join_type_rejected(self):
        with pytest.raises(ValueError):
            natural_join(LEFT, RIGHT, "id", "ref", how="outer")


class TestGroupBy:
    def test_count_aggregate(self):
        result = group_by(RIGHT, ["ref"], {"n": aggregate_column("value", "count")})
        by_ref = {row["ref"]: row["n"] for row in result}
        assert by_ref == {1: 2, 9: 1}

    def test_min_max(self):
        result = group_by(
            RIGHT,
            ["ref"],
            {
                "lo": aggregate_column("value", "min"),
                "hi": aggregate_column("value", "max"),
            },
        )
        row = next(r for r in result if r["ref"] == 1)
        assert (row["lo"], row["hi"]) == (10, 11)

    def test_concat(self):
        result = group_by(
            RIGHT, ["ref"], {"all": aggregate_column("value", "concat")}
        )
        row = next(r for r in result if r["ref"] == 1)
        assert row["all"] == "10, 11"

    def test_count_nonnull(self):
        rows = [{"g": 1, "v": None}, {"g": 1, "v": 5}]
        result = group_by(rows, ["g"], {"n": aggregate_column("v", "count_nonnull")})
        assert result[0]["n"] == 1

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(ValueError):
            aggregate_column("v", "median")


class TestSetOperations:
    def test_distinct(self):
        rows = [{"a": 1}, {"a": 1}, {"a": 2}]
        assert distinct(rows) == [{"a": 1}, {"a": 2}]

    def test_distinct_preserves_order(self):
        rows = [{"a": 2}, {"a": 1}, {"a": 2}]
        assert distinct(rows) == [{"a": 2}, {"a": 1}]

    def test_union_all_keeps_duplicates(self):
        assert len(union_all(LEFT, LEFT)) == 6
