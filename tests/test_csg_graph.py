"""Unit tests for CSG graphs, conversion, and instances."""

import pytest

from repro.csg import (
    AT_LEAST_ONE,
    AT_MOST_ONE,
    EXACTLY_ONE,
    Cardinality,
    Csg,
    CsgError,
    CsgInstance,
    NodeKind,
    RelationshipKind,
    database_to_csg,
    schema_to_csg,
    tuple_id,
)
from repro.relational import (
    Database,
    DataType,
    NotNull,
    Schema,
    foreign_key,
    primary_key,
    relation,
    unique,
)


@pytest.fixture
def schema():
    built = Schema(
        "s",
        relations=[
            relation("records", [("id", DataType.INTEGER), "title", "artist"]),
            relation("tracks", [("record", DataType.INTEGER), "title"]),
        ],
        constraints=[
            primary_key("records", "id"),
            NotNull("records", "title"),
            unique("records", "title"),
            foreign_key("tracks", "record", "records", "id"),
            NotNull("tracks", "record"),
        ],
    )
    return built


class TestGraphBasics:
    def test_duplicate_node_rejected(self):
        graph = Csg("g")
        graph.add_table_node("r")
        with pytest.raises(CsgError):
            graph.add_table_node("r")

    def test_unknown_node_rejected(self):
        graph = Csg("g")
        with pytest.raises(CsgError):
            graph.node("missing")

    def test_relationship_pair_binds_inverse(self):
        graph = Csg("g")
        a = graph.add_table_node("a")
        b = graph.add_attribute_node("a", "x")
        fwd, bwd = graph.add_relationship_pair(
            a, b, RelationshipKind.ATTRIBUTE, EXACTLY_ONE, AT_LEAST_ONE
        )
        assert fwd.inverse is bwd and bwd.inverse is fwd

    def test_relationship_endpoints_must_be_in_graph(self):
        graph = Csg("g")
        a = graph.add_table_node("a")
        other = Csg("h").add_table_node("b")
        with pytest.raises(CsgError):
            graph.add_relationship_pair(
                a, other, RelationshipKind.ATTRIBUTE, EXACTLY_ONE, EXACTLY_ONE
            )


class TestSchemaConversion:
    def test_node_kinds(self, schema):
        graph = schema_to_csg(schema)
        assert graph.node("records").kind is NodeKind.TABLE
        assert graph.node("records.title").kind is NodeKind.ATTRIBUTE

    def test_node_counts(self, schema):
        graph = schema_to_csg(schema)
        assert len(graph.table_nodes()) == 2
        assert len(graph.attribute_nodes()) == 5

    def test_not_null_gives_exactly_one(self, schema):
        graph = schema_to_csg(schema)
        rel = graph.relationship("records", "records.title")
        assert rel.cardinality == EXACTLY_ONE

    def test_nullable_gives_at_most_one(self, schema):
        graph = schema_to_csg(schema)
        rel = graph.relationship("records", "records.artist")
        assert rel.cardinality == AT_MOST_ONE

    def test_unique_gives_exactly_one_backward(self, schema):
        graph = schema_to_csg(schema)
        rel = graph.relationship("records.title", "records")
        assert rel.cardinality == EXACTLY_ONE

    def test_non_unique_gives_at_least_one_backward(self, schema):
        graph = schema_to_csg(schema)
        rel = graph.relationship("records.artist", "records")
        assert rel.cardinality == AT_LEAST_ONE

    def test_pk_attribute_is_not_null_and_unique(self, schema):
        graph = schema_to_csg(schema)
        assert graph.relationship("records", "records.id").cardinality == EXACTLY_ONE
        assert graph.relationship("records.id", "records").cardinality == EXACTLY_ONE

    def test_fk_becomes_equality_relationship(self, schema):
        graph = schema_to_csg(schema)
        rel = graph.relationship("tracks.record", "records.id")
        assert rel.kind is RelationshipKind.EQUALITY
        assert rel.cardinality == EXACTLY_ONE
        assert rel.inverse.cardinality == AT_MOST_ONE


class TestInstanceConversion:
    @pytest.fixture
    def database(self, schema):
        db = Database(schema)
        db.insert_all(
            "records",
            [(1, "Sweet Home", "Skynyrd"), (2, "Anxiety", "Skynyrd")],
        )
        db.insert_all("tracks", [(1, "t1"), (1, "t2")])
        return db

    def test_table_elements_are_tuple_ids(self, database):
        _, instance = database_to_csg(database)
        assert tuple_id("records", 0) in instance.elements("records")
        assert len(instance.elements("records")) == 2

    def test_attribute_elements_are_distinct_values(self, database):
        _, instance = database_to_csg(database)
        assert instance.elements("records.artist") == {"Skynyrd"}

    def test_attribute_links(self, database):
        graph, instance = database_to_csg(database)
        rel = graph.relationship("records", "records.title")
        assert (tuple_id("records", 0), "Sweet Home") in instance.links(rel)

    def test_null_values_produce_no_links(self, schema):
        db = Database(schema)
        db.insert("records", (1, "T", None))
        graph, instance = database_to_csg(db)
        rel = graph.relationship("records", "records.artist")
        assert instance.links(rel) == frozenset()

    def test_equality_links_cover_common_values(self, database):
        graph, instance = database_to_csg(database)
        rel = graph.relationship("tracks.record", "records.id")
        assert instance.links(rel) == frozenset({(1, 1)})


class TestImageCounts:
    @pytest.fixture
    def setup(self, schema):
        db = Database(schema)
        db.insert_all(
            "records", [(1, "A", "X"), (2, "B", None), (3, "C", "X")]
        )
        graph, instance = database_to_csg(db)
        path = (graph.relationship("records", "records.artist"),)
        return graph, instance, path

    def test_counts_per_element(self, setup):
        _, instance, path = setup
        counts = instance.image_counts(path)
        assert counts[tuple_id("records", 0)] == 1
        assert counts[tuple_id("records", 1)] == 0

    def test_actual_cardinality_hull(self, setup):
        _, instance, path = setup
        assert str(instance.actual_cardinality(path)) == "0..1"

    def test_count_violations(self, setup):
        _, instance, path = setup
        assert instance.count_violations(path, EXACTLY_ONE) == 1

    def test_violating_elements(self, setup):
        _, instance, path = setup
        offenders = instance.violating_elements(path, EXACTLY_ONE)
        assert offenders == {tuple_id("records", 1): 0}

    def test_empty_path_rejected(self, setup):
        _, instance, _ = setup
        with pytest.raises(CsgError):
            instance.image_counts(())

    def test_empty_node_gives_empty_cardinality(self, schema):
        db = Database(schema)
        graph, instance = database_to_csg(db)
        path = (graph.relationship("records", "records.title"),)
        assert instance.actual_cardinality(path) == Cardinality.empty()

    def test_two_hop_path(self, schema):
        db = Database(schema)
        db.insert_all("records", [(1, "A", "X")])
        db.insert_all("tracks", [(1, "t1"), (1, "t2")])
        graph, instance = database_to_csg(db)
        path = (
            graph.relationship("tracks", "tracks.record"),
            graph.relationship("tracks.record", "records.id"),
            graph.relationship("records.id", "records"),
        )
        counts = instance.image_counts(path)
        assert counts[tuple_id("tracks", 0)] == 1
