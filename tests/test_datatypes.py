"""Unit tests for repro.relational.datatypes."""

import pytest

from repro.relational.datatypes import (
    DataType,
    can_cast,
    cast,
    infer_datatype,
)
from repro.relational.errors import TypeCastError


class TestCastInteger:
    def test_int_passthrough(self):
        assert cast(7, DataType.INTEGER) == 7

    def test_string_parses(self):
        assert cast(" 42 ", DataType.INTEGER) == 42

    def test_negative_string(self):
        assert cast("-13", DataType.INTEGER) == -13

    def test_whole_float_converts(self):
        assert cast(3.0, DataType.INTEGER) == 3

    def test_fractional_float_fails(self):
        with pytest.raises(TypeCastError):
            cast(3.5, DataType.INTEGER)

    def test_text_fails(self):
        with pytest.raises(TypeCastError):
            cast("4:43", DataType.INTEGER)

    def test_bool_converts(self):
        assert cast(True, DataType.INTEGER) == 1


class TestCastFloat:
    def test_string_parses(self):
        assert cast("2.5", DataType.FLOAT) == 2.5

    def test_int_converts(self):
        assert cast(3, DataType.FLOAT) == 3.0

    def test_infinity_rejected(self):
        with pytest.raises(TypeCastError):
            cast("inf", DataType.FLOAT)

    def test_nan_rejected(self):
        with pytest.raises(TypeCastError):
            cast("nan", DataType.FLOAT)


class TestCastString:
    def test_passthrough(self):
        assert cast("abc", DataType.STRING) == "abc"

    def test_integer_renders(self):
        assert cast(215900, DataType.STRING) == "215900"

    def test_bool_renders(self):
        assert cast(False, DataType.STRING) == "false"


class TestCastBoolean:
    @pytest.mark.parametrize("literal", ["true", "T", "yes", "1", "Y"])
    def test_truthy_literals(self, literal):
        assert cast(literal, DataType.BOOLEAN) is True

    @pytest.mark.parametrize("literal", ["false", "F", "no", "0", "N"])
    def test_falsy_literals(self, literal):
        assert cast(literal, DataType.BOOLEAN) is False

    def test_other_string_fails(self):
        with pytest.raises(TypeCastError):
            cast("maybe", DataType.BOOLEAN)

    def test_out_of_range_int_fails(self):
        with pytest.raises(TypeCastError):
            cast(2, DataType.BOOLEAN)


class TestCastDate:
    def test_iso_date(self):
        assert cast("1999-12-31", DataType.DATE) == "1999-12-31"

    def test_bad_month_fails(self):
        with pytest.raises(TypeCastError):
            cast("1999-13-01", DataType.DATE)

    def test_non_date_fails(self):
        with pytest.raises(TypeCastError):
            cast("yesterday", DataType.DATE)


class TestNullHandling:
    @pytest.mark.parametrize("datatype", list(DataType))
    def test_null_passes_through(self, datatype):
        assert cast(None, datatype) is None

    @pytest.mark.parametrize("datatype", list(DataType))
    def test_null_is_castable(self, datatype):
        assert can_cast(None, datatype)


class TestInferDatatype:
    def test_integers(self):
        assert infer_datatype(["1", "2", "3"]) == DataType.INTEGER

    def test_floats(self):
        assert infer_datatype(["1.5", "2"]) == DataType.FLOAT

    def test_booleans(self):
        assert infer_datatype(["true", "false"]) == DataType.BOOLEAN

    def test_dates(self):
        assert infer_datatype(["2001-01-01", "1999-06-15"]) == DataType.DATE

    def test_mixed_falls_back_to_string(self):
        assert infer_datatype(["1", "two"]) == DataType.STRING

    def test_nulls_ignored(self):
        assert infer_datatype([None, "7", None]) == DataType.INTEGER

    def test_empty_defaults_to_string(self):
        assert infer_datatype([]) == DataType.STRING

    def test_all_null_defaults_to_string(self):
        assert infer_datatype([None, None]) == DataType.STRING


class TestDataTypeProperties:
    def test_numeric_flags(self):
        assert DataType.INTEGER.is_numeric
        assert DataType.FLOAT.is_numeric
        assert not DataType.STRING.is_numeric

    def test_textual_flags(self):
        assert DataType.STRING.is_textual
        assert DataType.DATE.is_textual
        assert not DataType.INTEGER.is_textual
