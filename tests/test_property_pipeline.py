"""Property-based end-to-end tests: random scenarios through the pipeline.

Hypothesis generates small random integration scenarios (random schemas,
constraints, instances, correspondences) and checks the system-level
invariants:

* complexity assessment never crashes and is deterministic,
* planned estimates are non-negative and quality-monotone in structure,
* the practitioner simulator always reaches a *valid* target instance,
* violation counts never exceed the scoped element counts.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ResultQuality, default_efes
from repro.core.modules.structure import InfiniteCleaningLoopError
from repro.matching import (
    CorrespondenceSet,
    attribute_correspondence,
    relation_correspondence,
)
from repro.practitioner import PractitionerSimulator
from repro.relational import (
    Database,
    DataType,
    NotNull,
    Schema,
    Unique,
    primary_key,
    relation,
)
from repro.relational.validation import is_valid
from repro.scenarios.scenario import IntegrationScenario

ATTRIBUTES = ("v", "w", "x")

values = st.one_of(
    st.none(),
    st.integers(min_value=0, max_value=5),
    st.sampled_from(["a", "b", "4:43", "hello world", "1999"]),
)


@st.composite
def scenarios(draw):
    """A one-source, one-target scenario with random data + constraints."""
    attr_count = draw(st.integers(min_value=1, max_value=3))
    names = ATTRIBUTES[:attr_count]

    source_schema = Schema(
        "src",
        relations=[
            relation("s", [("id", DataType.INTEGER), *names]),
        ],
        constraints=[primary_key("s", "id")],
    )
    target_constraints = [primary_key("t", "id")]
    for name in names:
        if draw(st.booleans()):
            target_constraints.append(NotNull("t", name))
        if draw(st.booleans()):
            target_constraints.append(Unique("t", (name,)))
    target_schema = Schema(
        "tgt",
        relations=[relation("t", [("id", DataType.INTEGER), *names])],
        constraints=target_constraints,
    )

    source = Database(source_schema)
    row_count = draw(st.integers(min_value=0, max_value=8))
    for index in range(row_count):
        row = {"id": index + 1}
        for name in names:
            row[name] = draw(values)
        source.insert("s", row)

    target = Database(target_schema)
    if draw(st.booleans()):
        target.insert("t", {"id": 1, **{name: "seed" for name in names}})

    correspondences = [relation_correspondence("s", "t")]
    for name in names:
        if draw(st.booleans()):
            correspondences.append(
                attribute_correspondence(f"s.{name}", f"t.{name}")
            )
    return IntegrationScenario(
        "random", source, target, CorrespondenceSet(correspondences)
    )


COMMON_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@COMMON_SETTINGS
@given(scenarios())
def test_assessment_is_deterministic(scenario):
    efes = default_efes()
    first = efes.assess(scenario)
    second = efes.assess(scenario)
    assert [
        (v.target_relationship, v.violation_count)
        for v in first["structure"].violations
    ] == [
        (v.target_relationship, v.violation_count)
        for v in second["structure"].violations
    ]
    assert len(first["values"].findings) == len(second["values"].findings)


@COMMON_SETTINGS
@given(scenarios())
def test_violation_counts_are_bounded_by_scope(scenario):
    efes = default_efes()
    report = efes.assess(scenario)["structure"]
    for violation in report.violations:
        assert 0 <= violation.violation_count <= max(violation.scope, 1)


@COMMON_SETTINGS
@given(scenarios())
def test_estimates_are_finite_and_non_negative(scenario):
    efes = default_efes()
    for quality in (ResultQuality.LOW_EFFORT, ResultQuality.HIGH_QUALITY):
        try:
            estimate = efes.estimate(scenario, quality)
        except InfiniteCleaningLoopError:
            continue  # a detected contradiction is a legal outcome
        assert estimate.total_minutes >= 0
        for entry in estimate.entries:
            assert entry.minutes >= 0


@COMMON_SETTINGS
@given(scenarios())
def test_simulator_always_reaches_a_valid_target(scenario):
    simulator = PractitionerSimulator(seed=3)
    for quality in (ResultQuality.LOW_EFFORT, ResultQuality.HIGH_QUALITY):
        result = simulator.integrate(scenario, quality)
        assert is_valid(result.target), quality
        assert result.total_minutes >= 0


@COMMON_SETTINGS
@given(scenarios())
def test_source_databases_never_mutated(scenario):
    source = scenario.sources[0]
    rows_before = [tuple(row) for row in source.table("s")]
    efes = default_efes()
    efes.assess(scenario)
    try:
        efes.estimate(scenario, ResultQuality.HIGH_QUALITY)
    except InfiniteCleaningLoopError:
        pass
    PractitionerSimulator(seed=1).integrate(
        scenario, ResultQuality.HIGH_QUALITY
    )
    assert [tuple(row) for row in source.table("s")] == rows_before
