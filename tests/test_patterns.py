"""Unit tests for text pattern extraction."""

from hypothesis import given
from hypothesis import strategies as st

from repro.profiling.patterns import (
    dominant_pattern,
    extract_pattern,
    generalize_pattern,
    pattern_distribution,
)


class TestExtractPattern:
    def test_duration_pattern(self):
        assert extract_pattern("4:43") == "N:N"

    def test_milliseconds_pattern(self):
        assert extract_pattern("215900") == "N"

    def test_title_pattern(self):
        assert extract_pattern("Sweet Home Alabama") == "A_A_A"

    def test_inverted_name_pattern(self):
        assert extract_pattern("Smith, Alex") == "A,_A"

    def test_punctuation_kept_verbatim(self):
        assert extract_pattern("12-34") == "N-N"
        assert extract_pattern("(1999)") == "(N)"

    def test_repeated_punctuation_not_collapsed(self):
        assert extract_pattern("a--b") == "A--A"

    def test_empty_string(self):
        assert extract_pattern("") == ""

    def test_mixed_alphanumeric(self):
        assert extract_pattern("A1") == "AN"


class TestGeneralizePattern:
    def test_titles_converge(self):
        assert generalize_pattern("A_A_A") == generalize_pattern("A_A") == "A"

    def test_duration_formats_stay_distinct(self):
        assert generalize_pattern("N:N") != generalize_pattern("N")

    def test_inverted_names_stay_distinct(self):
        assert generalize_pattern("A,_A") == "A,A"
        assert generalize_pattern("A,_A") != generalize_pattern("A_A")

    def test_vinyl_position(self):
        assert generalize_pattern(extract_pattern("A1")) == "AN"


class TestDistribution:
    def test_distribution_sums_to_one(self):
        dist = pattern_distribution(["4:43", "3:26", "215900"])
        assert abs(sum(dist.values()) - 1.0) < 1e-9

    def test_dominant(self):
        pattern, share = dominant_pattern(["4:43", "3:26", "215900"])
        assert pattern == "N:N" and abs(share - 2 / 3) < 1e-9

    def test_empty(self):
        assert dominant_pattern([]) == (None, 0.0)


@given(st.text(max_size=40))
def test_extract_is_deterministic_and_total(text):
    assert extract_pattern(text) == extract_pattern(text)


@given(st.text(max_size=40))
def test_digits_never_survive(text):
    assert not any(char.isdigit() for char in extract_pattern(text))


@given(st.text(max_size=40))
def test_generalize_is_idempotent(text):
    pattern = extract_pattern(text)
    generalized = generalize_pattern(pattern)
    assert generalize_pattern(generalized) == generalized
