"""Unit tests for repro.relational.validation."""

import pytest

from repro.relational import (
    Database,
    DataType,
    IntegrityError,
    NotNull,
    Schema,
    Unique,
    assert_valid,
    check_constraint,
    foreign_key,
    is_valid,
    primary_key,
    relation,
    validate,
)


@pytest.fixture
def database():
    schema = Schema(
        "db",
        relations=[
            relation("records", [("id", DataType.INTEGER), "title"]),
            relation("tracks", [("record", DataType.INTEGER), "title"]),
        ],
        constraints=[
            primary_key("records", "id"),
            NotNull("records", "title"),
            foreign_key("tracks", "record", "records", "id"),
        ],
    )
    return Database(schema)


class TestNotNull:
    def test_clean(self, database):
        database.insert("records", (1, "A"))
        assert is_valid(database)

    def test_null_detected(self, database):
        database.insert("records", (1, None))
        violations = validate(database)
        assert any(v.constraint.kind == "not_null" for v in violations)

    def test_count(self, database):
        database.insert_all("records", [(1, None), (2, None), (3, "ok")])
        violation = next(
            v for v in validate(database) if v.constraint.kind == "not_null"
        )
        assert violation.count == 2


class TestUniqueAndPrimaryKey:
    def test_duplicate_pk_detected(self, database):
        database.insert_all("records", [(1, "A"), (1, "B")])
        assert not is_valid(database)

    def test_null_pk_detected(self, database):
        database.insert("records", (None, "A"))
        assert not is_valid(database)

    def test_unique_ignores_nulls(self, database):
        database.schema.add_constraint(Unique("tracks", ("title",)))
        database.insert("records", (1, "A"))
        database.insert_all("tracks", [(1, None), (1, None)])
        assert is_valid(database)

    def test_unique_counts_extras_only(self, database):
        database.schema.add_constraint(Unique("tracks", ("title",)))
        database.insert("records", (1, "A"))
        database.insert_all("tracks", [(1, "x"), (1, "x"), (1, "x")])
        violation = next(
            v for v in validate(database) if v.constraint.kind == "unique"
        )
        assert violation.count == 2  # three occurrences, two too many

    def test_composite_unique(self, database):
        database.schema.add_constraint(Unique("tracks", ("record", "title")))
        database.insert("records", (1, "A"))
        database.insert_all("tracks", [(1, "x"), (1, "y"), (1, "x")])
        assert not is_valid(database)


class TestForeignKey:
    def test_valid_reference(self, database):
        database.insert("records", (1, "A"))
        database.insert("tracks", (1, "t"))
        assert is_valid(database)

    def test_dangling_detected(self, database):
        database.insert("records", (1, "A"))
        database.insert("tracks", (99, "t"))
        violations = validate(database)
        assert any(v.constraint.kind == "foreign_key" for v in violations)

    def test_null_fk_exempt(self, database):
        database.insert("records", (1, "A"))
        database.insert("tracks", (None, "t"))
        assert is_valid(database)

    def test_check_single_constraint(self, database):
        database.insert("tracks", (5, "t"))
        fk = database.schema.foreign_keys()[0]
        violations = check_constraint(database, fk)
        assert violations and violations[0].count == 1


class TestAssertValid:
    def test_passes_on_clean(self, database):
        database.insert("records", (1, "A"))
        assert_valid(database)

    def test_raises_with_summary(self, database):
        database.insert("records", (1, None))
        with pytest.raises(IntegrityError, match="NOT NULL"):
            assert_valid(database)
