"""Tests for the markdown experiment report and its CLI integration."""

import pytest

from repro.cli import main
from repro.core.calibration import ComparisonRow, DomainResult, EstimateSummary
from repro.reporting import render_experiment_markdown


def _summary(estimator, total):
    return EstimateSummary(
        estimator, "s1-s2", "low eff.", total, {"Mapping": total}
    )


def _fake_report():
    row = ComparisonRow(
        "s1-s2",
        "low eff.",
        _summary("Efes", 60.0),
        _summary("Measured", 70.0),
        _summary("Counting", 90.0),
    )
    bibliographic = DomainResult(
        "bibliographic", (row,), efes_rmse=0.14, counting_rmse=0.29
    )
    music = DomainResult("music", (row,), efes_rmse=0.2, counting_rmse=0.4)

    class FakeExperimentReport:
        pass

    report = FakeExperimentReport()
    report.bibliographic = bibliographic
    report.music = music
    report.overall_efes_rmse = 0.17
    report.overall_counting_rmse = 0.34
    report.overall_improvement = 2.0
    return report


class TestRenderMarkdown:
    @pytest.fixture(scope="class")
    def markdown(self):
        return render_experiment_markdown(_fake_report())

    def test_has_summary_table(self, markdown):
        assert "| Domain | Efes rmse | Counting rmse | Improvement |" in markdown
        assert "| bibliographic | 0.14 | 0.29 | ×2.1 |" in markdown

    def test_has_overall_row(self, markdown):
        assert "| **overall** | **0.17** | **0.34** | **×2.0** |" in markdown

    def test_has_both_figures(self, markdown):
        assert "## Figure 6 — bibliographic domain" in markdown
        assert "## Figure 7 — music domain" in markdown

    def test_per_cell_rows_present(self, markdown):
        assert "| s1-s2 | low eff. | 60.0 | 70.0 | 90.0 |" in markdown

    def test_ascii_figure_embedded(self, markdown):
        assert "```" in markdown and "rmse: Efes=" in markdown


class TestCliOutput:
    def test_experiments_writes_markdown(self, tmp_path, capsys):
        path = tmp_path / "report.md"
        assert main(["experiments", "--output", str(path)]) == 0
        text = path.read_text()
        assert text.startswith("# EFES experiment report")
        assert "| **overall** |" in text
        out = capsys.readouterr().out
        assert str(path) in out
