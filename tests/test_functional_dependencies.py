"""Tests for functional-dependency support (the §4.1 CSG extension)."""

import pytest

from repro.core import ResultQuality, default_efes
from repro.core.tasks import StructuralConflict, TaskType
from repro.matching import (
    CorrespondenceSet,
    attribute_correspondence,
    relation_correspondence,
)
from repro.practitioner import PractitionerSimulator
from repro.relational import (
    Database,
    FunctionalDependencyConstraint,
    NotNull,
    Schema,
    relation,
    validate,
)
from repro.relational.errors import ConstraintError
from repro.relational.validation import is_valid
from repro.scenarios.scenario import IntegrationScenario


def fd_scenario(source_rows, extra_target_constraints=()):
    source_schema = Schema(
        "src", relations=[relation("s", ["grp", "label", "v"])]
    )
    target_schema = Schema(
        "tgt",
        relations=[relation("t", ["grp", "label", "v"])],
        constraints=[
            FunctionalDependencyConstraint("t", "grp", "label"),
            *extra_target_constraints,
        ],
    )
    source = Database(source_schema)
    source.insert_all("s", source_rows)
    target = Database(target_schema)
    correspondences = CorrespondenceSet(
        [
            relation_correspondence("s", "t"),
            attribute_correspondence("s.grp", "t.grp"),
            attribute_correspondence("s.label", "t.label"),
            attribute_correspondence("s.v", "t.v"),
        ]
    )
    return IntegrationScenario("fd", source, target, correspondences)


class TestConstraint:
    def test_trivial_fd_rejected(self):
        with pytest.raises(ConstraintError):
            FunctionalDependencyConstraint("t", "a", "a")

    def test_describe(self):
        fd = FunctionalDependencyConstraint("t", "grp", "label")
        assert fd.describe() == "FD t.grp -> label"

    def test_schema_checks_attribute_references(self):
        schema = Schema("s", relations=[relation("r", ["a", "b"])])
        with pytest.raises(Exception):
            schema.add_constraint(
                FunctionalDependencyConstraint("r", "a", "nope")
            )


class TestValidation:
    def _db(self, rows):
        schema = Schema(
            "db",
            relations=[relation("r", ["grp", "label"])],
            constraints=[FunctionalDependencyConstraint("r", "grp", "label")],
        )
        db = Database(schema)
        db.insert_all("r", rows)
        return db

    def test_holding_fd_is_clean(self):
        assert is_valid(self._db([("g1", "One"), ("g1", "One"), ("g2", "Two")]))

    def test_violating_fd_detected(self):
        violations = validate(self._db([("g1", "One"), ("g1", "Uno")]))
        assert violations and violations[0].constraint.kind == (
            "functional_dependency"
        )

    def test_null_determinants_exempt(self):
        assert is_valid(self._db([(None, "One"), (None, "Two")]))

    def test_count_is_per_determinant(self):
        violations = validate(
            self._db(
                [("g1", "a"), ("g1", "b"), ("g1", "c"), ("g2", "x"), ("g2", "y")]
            )
        )
        assert violations[0].count == 2  # two conflicting determinants


class TestDetection:
    def test_violating_source_detected(self):
        scenario = fd_scenario(
            [("g1", "One", "a"), ("g1", "Uno", "b"), ("g2", "Two", "c")]
        )
        report = default_efes().assess(scenario)["structure"]
        fd_rows = [
            v
            for v in report.violations
            if v.conflict is StructuralConflict.FD_VIOLATED
        ]
        assert len(fd_rows) == 1
        assert fd_rows[0].violation_count == 1
        assert fd_rows[0].prescribed == "0..1"

    def test_conforming_source_is_clean(self):
        scenario = fd_scenario(
            [("g1", "One", "a"), ("g1", "One", "b"), ("g2", "Two", "c")]
        )
        report = default_efes().assess(scenario)["structure"]
        assert not any(
            v.conflict is StructuralConflict.FD_VIOLATED
            for v in report.violations
        )

    def test_unmapped_fd_attributes_skipped(self):
        scenario = fd_scenario([("g1", "One", "a"), ("g1", "Uno", "b")])
        cset = CorrespondenceSet(
            [
                relation_correspondence("s", "t"),
                attribute_correspondence("s.grp", "t.grp"),
                attribute_correspondence("s.v", "t.v"),
            ]
        )
        partial = IntegrationScenario(
            "fd-partial", scenario.sources, scenario.target, cset
        )
        report = default_efes().assess(partial)["structure"]
        assert not any(
            v.conflict is StructuralConflict.FD_VIOLATED
            for v in report.violations
        )


class TestPlanning:
    def test_high_quality_aggregates_values(self):
        scenario = fd_scenario([("g1", "One", "a"), ("g1", "Uno", "b")])
        efes = default_efes()
        estimate = efes.estimate(scenario, ResultQuality.HIGH_QUALITY)
        types = [entry.task.type for entry in estimate.entries]
        assert TaskType.AGGREGATE_VALUES in types

    def test_low_effort_nulls_then_cleans_cascade(self):
        """Nulling conflicting dependents breaks a NOT NULL on them."""
        scenario = fd_scenario(
            [("g1", "One", "a"), ("g1", "Uno", "b")],
            extra_target_constraints=[NotNull("t", "label")],
        )
        efes = default_efes()
        estimate = efes.estimate(scenario, ResultQuality.LOW_EFFORT)
        types = [entry.task.type for entry in estimate.entries]
        assert TaskType.SET_VALUES_TO_NULL in types
        assert TaskType.REJECT_TUPLES in types
        assert types.index(TaskType.SET_VALUES_TO_NULL) < types.index(
            TaskType.REJECT_TUPLES
        )


class TestSimulation:
    def test_simulator_reaches_fd_valid_target(self):
        scenario = fd_scenario(
            [("g1", "One", "a"), ("g1", "Uno", "b"), ("g2", "Two", "c")]
        )
        for quality in (ResultQuality.LOW_EFFORT, ResultQuality.HIGH_QUALITY):
            result = PractitionerSimulator().integrate(scenario, quality)
            assert is_valid(result.target), quality
