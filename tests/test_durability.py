"""Unit tests for the durable job journal and crash recovery.

The adversarial end of this feature lives in ``tests/sim/`` (seeded
crash matrix, real-process ``kill -9``); this module pins the
component-level contracts: journal segments and rotation, flush
policies, replay/plan categories, the restart-surviving idempotency
window, and the report store's protected LRU eviction.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.durability import (
    FlushPolicy,
    JobJournal,
    JournalCrashed,
    JournalError,
    RecoveryManager,
    dispatched_record,
    settled_record,
    submitted_record,
)
from repro.runtime import RuntimeMetrics
from repro.service.jobs import Job, JobState
from repro.service.scheduler import JobScheduler
from repro.service.store import ReportStore


def _submitted(job_id: str, **extra) -> dict:
    job = Job(kind="callable", scenario_name=job_id, id=job_id)
    record = submitted_record(job, **extra)
    return record


class TestFlushPolicy:
    def test_parse_spellings(self):
        assert FlushPolicy.parse("strict") == FlushPolicy.strict()
        assert FlushPolicy.parse("none") == FlushPolicy.relaxed()
        assert FlushPolicy.parse("batch") == FlushPolicy.batched()
        assert FlushPolicy.parse("batch:3").fsync_every_records == 3

    @pytest.mark.parametrize("bad", ["", "batch:", "batch:zero", "batch:0", "often"])
    def test_parse_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            FlushPolicy.parse(bad)


class TestJobJournal:
    def test_append_replay_round_trip(self, tmp_path):
        with JobJournal(tmp_path) as journal:
            journal.append(_submitted("a", payload_ref="ref-a"))
            journal.append(dispatched_record("a"))
            journal.append(settled_record("a", "done"))
        records, stats = JobJournal(tmp_path).replay()
        assert [r["type"] for r in records] == [
            "submitted", "dispatched", "settled",
        ]
        assert stats == {"segments": 1, "records": 3, "torn_records": 0}

    def test_segments_rotate_and_reopen_fresh(self, tmp_path):
        with JobJournal(tmp_path, segment_max_records=2) as journal:
            for index in range(5):
                journal.append(dispatched_record(str(index)))
            assert journal.rotations == 2
        assert len(list(tmp_path.glob("journal-*.wal"))) == 3
        # Reopening appends into a *new* segment, never an old tail.
        with JobJournal(tmp_path, segment_max_records=2) as journal:
            journal.append(dispatched_record("5"))
            assert journal.stats()["active_segment"] == 4

    def test_torn_tail_is_skipped_not_fatal(self, tmp_path):
        with JobJournal(tmp_path) as journal:
            journal.append(dispatched_record("a"))
            journal.append(dispatched_record("b"))
        segment = next(tmp_path.glob("journal-*.wal"))
        text = segment.read_text(encoding="utf-8")
        segment.write_text(text[: len(text) - 4], encoding="utf-8")
        records, stats = JobJournal(tmp_path).replay()
        assert [r["job_id"] for r in records] == ["a"]
        assert stats["torn_records"] == 1

    def test_torn_tail_in_old_segment_spares_later_ones(self, tmp_path):
        with JobJournal(tmp_path, segment_max_records=1) as journal:
            journal.append(dispatched_record("a"))
            journal.append(dispatched_record("b"))
        first = sorted(tmp_path.glob("journal-*.wal"))[0]
        first.write_text(
            first.read_text(encoding="utf-8")[:-5], encoding="utf-8"
        )
        records, stats = JobJournal(tmp_path).replay()
        # Segment 1's record is torn; segment 2's survives.
        assert [r["job_id"] for r in records] == ["b"]
        assert stats["torn_records"] == 1

    def test_compact_removes_only_stale_segments(self, tmp_path):
        with JobJournal(tmp_path) as journal:
            journal.append(dispatched_record("old"))
        journal = JobJournal(tmp_path)
        journal.append(dispatched_record("new"))
        assert journal.compact() == 1
        journal.close()
        records, _ = JobJournal(tmp_path).replay()
        assert [r["job_id"] for r in records] == ["new"]

    def test_batched_policy_lags_then_flushes(self, tmp_path):
        policy = FlushPolicy(
            fsync_on_ack=True, fsync_every_records=100,
            fsync_every_seconds=None,
        )
        with JobJournal(tmp_path, flush=policy) as journal:
            journal.append(dispatched_record("a"), durable=False)
            assert journal.stats()["lag_records"] == 1
            journal.flush()
            assert journal.stats()["lag_records"] == 0
            # Submitted records fsync before returning under fsync_on_ack.
            journal.append(_submitted("b"))
            assert journal.stats()["lag_records"] == 0

    def test_time_based_batch_flush_uses_injected_clock(self, tmp_path):
        clock = [0.0]
        policy = FlushPolicy(
            fsync_on_ack=False, fsync_every_records=0,
            fsync_every_seconds=5.0,
        )
        with JobJournal(
            tmp_path, flush=policy, clock=lambda: clock[0]
        ) as journal:
            journal.append(dispatched_record("a"))
            assert journal.stats()["lag_records"] == 1
            clock[0] = 6.0
            journal.append(dispatched_record("b"))
            assert journal.stats()["lag_records"] == 0

    def test_failpoint_crash_fences_every_later_call(self, tmp_path):
        journal = JobJournal(
            tmp_path, failpoint=lambda index, line: ("crash", 0)
        )
        with pytest.raises(JournalCrashed):
            journal.append(dispatched_record("a"))
        assert journal.crashed
        with pytest.raises(JournalCrashed):
            journal.append(dispatched_record("b"))
        with pytest.raises(JournalCrashed):
            journal.flush()
        assert list(tmp_path.glob("journal-*.wal"))[0].read_text() == ""

    def test_failpoint_torn_leaves_partial_line(self, tmp_path):
        journal = JobJournal(
            tmp_path, failpoint=lambda index, line: ("torn", 7)
        )
        with pytest.raises(JournalCrashed):
            journal.append(dispatched_record("a"))
        segment = next(tmp_path.glob("journal-*.wal"))
        assert len(segment.read_text(encoding="utf-8")) == 7
        records, stats = JobJournal(tmp_path).replay()
        assert records == [] and stats["torn_records"] == 1

    def test_closed_journal_rejects_appends(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.close()
        with pytest.raises(JournalError):
            journal.append(dispatched_record("a"))


class TestRecoveryPlan:
    def test_never_settled_job_is_resubmitted(self, tmp_path):
        with JobJournal(tmp_path) as journal:
            journal.append(_submitted("a", payload_ref="ref-a"))
        summary = RecoveryManager(JobJournal(tmp_path)).inspect()
        assert summary["resubmitted"] == 1
        assert summary["interrupted"] == 0
        assert summary["dry_run"] is True

    def test_dispatched_job_counts_as_interrupted(self, tmp_path):
        with JobJournal(tmp_path) as journal:
            journal.append(_submitted("a", payload_ref="ref-a"))
            journal.append(dispatched_record("a"))
        summary = RecoveryManager(JobJournal(tmp_path)).inspect()
        assert summary["resubmitted"] == 1
        assert summary["interrupted"] == 1

    def test_settled_job_is_terminal_and_checkpointed(self, tmp_path):
        with JobJournal(tmp_path) as journal:
            journal.append(_submitted("a"))
            journal.append(settled_record("a", "done"))
        summary = RecoveryManager(JobJournal(tmp_path)).inspect()
        assert summary["settled"] == 1
        assert summary["resubmitted"] == 0
        assert summary["checkpointed"] == 1

    def test_store_backed_job_completes_from_store(self, tmp_path):
        store = ReportStore()
        store.put("sk-1", {"answer": 42})
        with JobJournal(tmp_path / "j") as journal:
            record = _submitted("a")
            record["store_key"] = "sk-1"
            journal.append(record)
        manager = RecoveryManager(JobJournal(tmp_path / "j"), store)
        summary = manager.inspect()
        assert summary["completed_from_store"] == 1
        assert summary["resubmitted"] == 0

    def test_settled_done_with_vanished_result_is_results_lost(
        self, tmp_path
    ):
        store = ReportStore()  # empty: the promised result is gone
        with JobJournal(tmp_path / "j") as journal:
            record = _submitted("a", scenario_ref="example", seed=1)
            record["store_key"] = "sk-gone"
            journal.append(record)
            journal.append(
                settled_record("a", "done", store_key="sk-gone")
            )
        summary = RecoveryManager(JobJournal(tmp_path / "j"), store).inspect()
        assert summary["results_lost"] == 1
        assert summary["resubmitted"] == 1
        assert summary["settled"] == 0

    def test_restatement_resets_dispatched_flag(self, tmp_path):
        with JobJournal(tmp_path) as journal:
            journal.append(_submitted("a", payload_ref="ref-a"))
            journal.append(dispatched_record("a"))
            restated = _submitted("a", payload_ref="ref-a", recovered=True)
            journal.append(restated)
        replay = RecoveryManager(JobJournal(tmp_path)).replay()
        assert replay.jobs["a"].dispatched is False

    def test_settled_window_bounds_checkpoints(self, tmp_path):
        with JobJournal(tmp_path) as journal:
            for index in range(10):
                journal.append(_submitted(f"job-{index}"))
                journal.append(settled_record(f"job-{index}", "done"))
        manager = RecoveryManager(JobJournal(tmp_path), settled_window=3)
        summary = manager.inspect()
        assert summary["settled"] == 10
        assert summary["checkpointed"] == 3

    def test_compact_offline_restates_live_jobs(self, tmp_path):
        with JobJournal(tmp_path) as journal:
            journal.append(_submitted("live", payload_ref="ref"))
            journal.append(_submitted("done"))
            journal.append(settled_record("done", "done"))
        manager = RecoveryManager(JobJournal(tmp_path))
        summary = manager.compact_offline()
        assert summary["compacted_segments"] == 1
        # After compaction the journal still knows both jobs.
        replay = RecoveryManager(JobJournal(tmp_path)).replay()
        assert replay.jobs["live"].is_settled is False
        assert replay.jobs["live"].submitted["recovered"] is True
        assert replay.jobs["done"].is_settled


class TestSchedulerRecovery:
    def _resolver(self, calls):
        def payload_resolver(ref, job):
            def payload(inner_job):
                calls.append(ref)
                return {"ref": ref}

            return payload

        return payload_resolver

    def test_unsettled_job_reexecutes_after_restart(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.append(_submitted("a", payload_ref="ref-a"))
        journal.append(dispatched_record("a"))
        journal.flush()
        journal.close()
        calls: list[str] = []
        scheduler = JobScheduler(
            workers=1,
            journal=JobJournal(tmp_path),
            payload_resolver=self._resolver(calls),
        )
        try:
            job = scheduler.wait("a", timeout=10)
            assert job.state is JobState.DONE
            assert job.recovered and job.interrupted
            assert calls == ["ref-a"]
            assert scheduler.recovery_summary["interrupted"] == 1
        finally:
            scheduler.close()

    def test_idempotency_window_survives_restart(self, tmp_path):
        journal = JobJournal(tmp_path)
        record = _submitted("a", payload_ref="ref-a")
        record["idempotency_key"] = "stable-key"
        journal.append(record)
        journal.flush()
        journal.close()
        calls: list[str] = []
        scheduler = JobScheduler(
            workers=1,
            journal=JobJournal(tmp_path),
            payload_resolver=self._resolver(calls),
        )
        try:
            scheduler.wait("a", timeout=10)
            # The retried client submit dedups onto the recovered job.
            again = scheduler.submit_callable(
                lambda job: {"dup": True},
                payload_ref="ref-a",
                idempotency_key="stable-key",
            )
            assert again.id == "a"
            assert (
                scheduler.metrics.snapshot().counters["jobs_deduplicated"]
                == 1
            )
        finally:
            scheduler.close()

    def test_settled_checkpoint_keeps_dedup_after_restart(self, tmp_path):
        calls: list[str] = []
        scheduler = JobScheduler(
            workers=1,
            journal=JobJournal(tmp_path),
            payload_resolver=self._resolver(calls),
        )
        try:
            job = scheduler.submit_callable(
                lambda j: {"v": 1},
                payload_ref="ref-a",
                idempotency_key="done-key",
            )
            scheduler.wait(job.id, timeout=10)
        finally:
            scheduler.close()
        restarted = JobScheduler(
            workers=1,
            journal=JobJournal(tmp_path),
            payload_resolver=self._resolver(calls),
        )
        try:
            again = restarted.submit_callable(
                lambda j: {"v": 2},
                payload_ref="ref-a",
                idempotency_key="done-key",
            )
            assert again.id == job.id
            assert again.state is JobState.DONE
            assert calls == []  # never re-executed
        finally:
            restarted.close()

    def test_unresolvable_payload_becomes_failed_tombstone(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.append(_submitted("a", payload_ref="ref-a"))
        journal.flush()
        journal.close()
        scheduler = JobScheduler(
            workers=1,
            journal=JobJournal(tmp_path),
            payload_resolver=lambda ref, job: None,
        )
        try:
            job = scheduler.job("a")
            assert job is not None
            assert job.state is JobState.FAILED
            assert scheduler.recovery_summary["unrecoverable"] == 1
        finally:
            scheduler.close()

    def test_recovery_compacts_old_segments(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.append(_submitted("a", payload_ref="ref-a"))
        journal.flush()
        journal.close()
        assert len(list(tmp_path.glob("journal-*.wal"))) == 1
        scheduler = JobScheduler(
            workers=1,
            journal=JobJournal(tmp_path),
            payload_resolver=self._resolver([]),
        )
        try:
            scheduler.wait("a", timeout=10)
            assert scheduler.recovery_summary["compacted_segments"] == 1
        finally:
            scheduler.close()
        # Only post-restart segments remain, and they cover the job.
        replay = RecoveryManager(JobJournal(tmp_path)).replay()
        assert replay.jobs["a"].is_settled

    def test_submit_fails_loudly_when_journal_cannot_append(self, tmp_path):
        journal = JobJournal(
            tmp_path, failpoint=lambda index, line: ("crash", 0)
        )
        scheduler = JobScheduler(workers=1, journal=journal)
        try:
            with pytest.raises(JournalError):
                scheduler.submit_callable(
                    lambda job: {}, payload_ref="ref", idempotency_key="k"
                )
            # The unacknowledged job must not linger as submitted.
            assert scheduler.job("missing") is None
            assert all(
                job.idempotency_key != "k" for job in scheduler.jobs()
            )
        finally:
            scheduler.close(wait=False, timeout=0.0)

    def test_stats_and_health_expose_journal(self, tmp_path):
        scheduler = JobScheduler(workers=1, journal=JobJournal(tmp_path))
        try:
            stats = scheduler.stats()
            assert stats["journal"]["directory"] == str(tmp_path)
            assert stats["recovery"]["dry_run"] is False
            health = scheduler.health_snapshot()
            assert "journal" in health and "recovery" in health
        finally:
            scheduler.close()


class TestStoreEviction:
    def test_memory_cap_demotes_least_recent(self, tmp_path):
        metrics = RuntimeMetrics()
        store = ReportStore(tmp_path, metrics, max_entries=2)
        store.put("a", {"n": 1})
        store.put("b", {"n": 2})
        store.get("a")  # refresh a: b becomes least-recent
        store.put("c", {"n": 3})
        assert len(store) == 2
        # Demoted, not lost: the spool still serves it.
        assert store.get("b") == {"n": 2}
        assert metrics.snapshot().counters["store_evictions"] >= 1

    def test_memory_cap_without_spool_drops_entry(self):
        store = ReportStore(max_entries=1)
        store.put("a", {"n": 1})
        store.put("b", {"n": 2})
        assert store.get("a") is None
        assert store.get("b") == {"n": 2}

    def test_spool_byte_cap_deletes_oldest_files(self, tmp_path):
        store = ReportStore(tmp_path, max_spool_bytes=400)
        store.put("old", {"n": 0, "pad": "x" * 100})
        time.sleep(0.02)  # distinct mtimes order the eviction
        store.put("mid", {"n": 1, "pad": "x" * 100})
        time.sleep(0.02)
        store.put("new", {"n": 2, "pad": "x" * 100})
        names = {path.stem for path in tmp_path.glob("*.json")}
        assert "new" in names
        assert "old" not in names

    def test_protected_keys_are_never_evicted(self, tmp_path):
        store = ReportStore(tmp_path, max_entries=1, max_spool_bytes=1)
        store.protected_keys = lambda: {"precious"}
        store.put("precious", {"keep": True})
        store.put("expendable", {"keep": False})
        store.sweep()
        assert store.get("precious") == {"keep": True}
        names = {path.stem for path in tmp_path.glob("*.json")}
        assert "precious" in names

    def test_protection_callback_failure_does_not_break_puts(self, tmp_path):
        store = ReportStore(tmp_path, max_entries=1)

        def broken():
            raise RuntimeError("boom")

        store.protected_keys = broken
        store.put("a", {"n": 1})
        store.put("b", {"n": 2})  # sweep must survive the broken callback
        assert len(store) == 1

    def test_scheduler_protects_unsettled_store_keys(self, tmp_path):
        release = threading.Event()
        scheduler = JobScheduler(
            workers=1,
            store=ReportStore(max_entries=1),
            journal=JobJournal(tmp_path),
        )
        try:
            assert scheduler.store.protected_keys is not None
            job = scheduler.submit_callable(
                lambda j: release.wait(5) and {} or {},
                payload_ref="ref-slow",
            )
            job.store_key = "held-by-job"
            assert "held-by-job" in scheduler._unsettled_store_keys()
            release.set()
            scheduler.wait(job.id, timeout=10)
            assert "held-by-job" not in scheduler._unsettled_store_keys()
        finally:
            release.set()
            scheduler.close()

    def test_spool_eviction_tracks_protection_churn(self, tmp_path):
        """Protection is consulted per sweep, not latched at put time:
        a key pinned through many sweeps becomes evictable the moment
        the protection set stops naming it."""
        metrics = RuntimeMetrics()
        protected: set[str] = {"pinned"}
        store = ReportStore(tmp_path, metrics, max_spool_bytes=300)
        store.protected_keys = lambda: set(protected)
        store.put("pinned", {"pad": "x" * 100})
        time.sleep(0.02)
        # Churn the spool hard: "pinned" is always the oldest file and
        # would be the first eviction candidate, but stays immune.
        for index in range(4):
            store.put(f"churn-{index}", {"pad": "x" * 100})
            time.sleep(0.02)
            assert (tmp_path / "pinned.json").exists(), index
        protected.clear()
        store.put("after", {"pad": "x" * 100})
        names = {path.stem for path in tmp_path.glob("*.json")}
        assert "pinned" not in names, "released key survived the sweep"
        assert "after" in names
        assert metrics.snapshot().counters["store_evictions"] >= 1

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            ReportStore(max_entries=0)
        with pytest.raises(ValueError):
            ReportStore(max_spool_bytes=-1)
