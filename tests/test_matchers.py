"""Unit tests for the schema matching substrate."""

import pytest

from repro.matching import (
    CompositeMatcher,
    InstanceMatcher,
    NameMatcher,
    SimilarityFlooding,
    levenshtein,
    match_accuracy,
    name_similarity,
    normalise,
    trigram_similarity,
)
from repro.matching.correspondence import attribute_correspondence
from repro.scenarios.example import (
    build_source,
    build_target,
    correspondences,
    source_schema,
    target_schema,
)
from repro.scenarios.example import ExampleParameters


class TestNameSimilarityPrimitives:
    def test_normalise(self):
        assert normalise("artist_list") == "artistlist"
        assert normalise("ArtistList") == "artistlist"

    def test_levenshtein(self):
        assert levenshtein("kitten", "sitting") == 3
        assert levenshtein("", "abc") == 3
        assert levenshtein("same", "same") == 0

    def test_trigram_identity(self):
        assert trigram_similarity("title", "title") == 1.0

    def test_trigram_disjoint(self):
        assert trigram_similarity("abc", "xyz") == 0.0

    def test_synonym_table(self):
        assert name_similarity("length", "duration") == pytest.approx(0.9)
        assert name_similarity("name", "title") == pytest.approx(0.9)

    def test_similar_names_score_high(self):
        assert name_similarity("artist", "artists") > 0.6

    def test_unrelated_names_score_low(self):
        assert name_similarity("genre", "position") < 0.4


class TestNameMatcher:
    def test_matches_are_one_to_one(self):
        matches = NameMatcher().match(source_schema(), target_schema())
        sources = [(c.source_relation, c.source_attribute) for c in matches]
        targets = [(c.target_relation, c.target_attribute) for c in matches]
        assert len(sources) == len(set(sources))
        assert len(targets) == len(set(targets))

    def test_finds_the_length_duration_pair(self):
        matches = NameMatcher().match(source_schema(), target_schema())
        assert any(
            c.source == "songs.length" and c.target == "tracks.duration"
            for c in matches
        )

    def test_threshold_prunes(self):
        strict = NameMatcher(threshold=0.99).match(
            source_schema(), target_schema()
        )
        loose = NameMatcher(threshold=0.3).match(
            source_schema(), target_schema()
        )
        assert len(strict) < len(loose)


class TestInstanceMatcher:
    @pytest.fixture(scope="class")
    def databases(self):
        parameters = ExampleParameters(
            albums=60, multi_artist_albums=10, detached_artists=4,
            target_records=40,
        )
        return build_source(parameters), build_target(parameters)

    def test_scores_within_unit_interval(self, databases):
        source, target = databases
        scores = InstanceMatcher().score(source, target)
        assert all(0.0 <= value <= 1.0 for value in scores.values())

    def test_artist_columns_match(self, databases):
        source, target = databases
        scores = InstanceMatcher().score(source, target)
        assert scores[("artist_credits", "artist", "records", "artist")] > 0.8

    def test_length_duration_scores_low(self, databases):
        source, target = databases
        scores = InstanceMatcher().score(source, target)
        same_type_scores = scores[("songs", "name", "tracks", "title")]
        mismatch = scores[("songs", "length", "tracks", "duration")]
        assert mismatch < same_type_scores


class TestCompositeMatcher:
    def test_weights_validated(self):
        with pytest.raises(ValueError):
            CompositeMatcher(name_weight=0, instance_weight=0)
        with pytest.raises(ValueError):
            CompositeMatcher(name_weight=-1)

    def test_produces_correspondences(self):
        parameters = ExampleParameters(
            albums=40, multi_artist_albums=8, detached_artists=3,
            target_records=30,
        )
        source, target = build_source(parameters), build_target(parameters)
        matches = CompositeMatcher(threshold=0.5).match(source, target)
        assert matches
        assert all(c.confidence >= 0.5 for c in matches)


class TestSimilarityFlooding:
    def test_converges(self):
        result = SimilarityFlooding().run(source_schema(), target_schema())
        assert result.iterations < 100

    def test_similarities_normalised(self):
        result = SimilarityFlooding().run(source_schema(), target_schema())
        assert max(result.similarities.values()) <= 1.0 + 1e-9

    def test_finds_reasonable_correspondences(self):
        result = SimilarityFlooding().run(source_schema(), target_schema())
        pairs = {(c.source, c.target) for c in result.correspondences}
        assert pairs  # produces at least some 1:1 matches


class TestMatchAccuracy:
    def test_perfect_proposal(self):
        intended = list(correspondences().attribute_correspondences())
        assert match_accuracy(intended, intended) == 1.0

    def test_empty_proposal(self):
        intended = list(correspondences().attribute_correspondences())
        assert match_accuracy([], intended) == 0.0

    def test_wrong_extras_can_go_negative(self):
        intended = [attribute_correspondence("a.x", "b.y")]
        proposed = [
            attribute_correspondence("a.p", "b.q"),
            attribute_correspondence("a.r", "b.s"),
        ]
        assert match_accuracy(proposed, intended) < 0.0

    def test_empty_intended(self):
        assert match_accuracy([], []) == 1.0
