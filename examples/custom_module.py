"""Extensibility: plug a custom estimation module into EFES.

Section 3.2: modularity "establishes the desired extensibility by
plugging new [modules]".  This example adds a *duplicate detection*
module in the spirit of CrowdER [25], whose "back of the envelope"
calculation prices the pairwise comparisons a human worker needs to
confirm duplicates in the integrated data.

The module follows the standard two-phase shape:

* detector — estimate the number of candidate duplicate pairs between
  source and target values of corresponding attributes (after cheap
  normalisation blocking),
* planner — emit an *Aggregate tuples* task per affected target relation,
  parameterised with the comparison count.

    python examples/custom_module.py
"""

from collections import defaultdict

from repro import ResultQuality, default_efes
from repro.core import Efes, default_modules
from repro.core.framework import EstimationModule
from repro.core.reports import ComplexityReport
from repro.core.tasks import Task, TaskType
from repro.reporting import render_table
from repro.scenarios import example_scenario


class DuplicationReport(ComplexityReport):
    """Candidate duplicate pairs per target relation."""

    module = "duplicates"

    def __init__(self, candidate_pairs: dict[str, int]):
        self.candidate_pairs = dict(candidate_pairs)

    def is_empty(self) -> bool:
        return not any(self.candidate_pairs.values())


def _normalise(value: object) -> str:
    return "".join(ch for ch in str(value).lower() if ch.isalnum())


class DuplicationModule(EstimationModule):
    """Estimate entity-resolution effort for the integrated data [25]."""

    name = "duplicates"

    def assess(self, scenario) -> DuplicationReport:
        pairs: dict[str, int] = defaultdict(int)
        for source, correspondences in scenario.pairs():
            for c in correspondences.attribute_correspondences():
                source_values = source.table(c.source_relation).distinct(
                    c.source_attribute
                )
                target_values = scenario.target.table(
                    c.target_relation
                ).distinct(c.target_attribute)
                # Blocking on the normalised value: only values that
                # collide after normalisation need human comparison.
                buckets: dict[str, list[int]] = defaultdict(lambda: [0, 0])
                for value in source_values:
                    buckets[_normalise(value)][0] += 1
                for value in target_values:
                    buckets[_normalise(value)][1] += 1
                pairs[c.target_relation] += sum(
                    s * t for s, t in buckets.values() if s and t
                )
        return DuplicationReport(pairs)

    def plan(self, scenario, report, quality) -> list[Task]:
        if quality is ResultQuality.LOW_EFFORT:
            return []  # duplicates are tolerated in a low-effort result
        tasks = []
        for relation, count in sorted(report.candidate_pairs.items()):
            if not count:
                continue
            tasks.append(
                Task(
                    type=TaskType.AGGREGATE_TUPLES,
                    quality=quality,
                    subject=relation,
                    # CrowdER-style: ~1 comparison batch per 20 pairs.
                    parameters={"repetitions": count, "batches": count / 20},
                    module=self.name,
                )
            )
        return tasks


def main() -> None:
    scenario = example_scenario()

    plain = default_efes()
    extended = Efes(default_modules() + [DuplicationModule()])

    report = extended.assess(scenario)["duplicates"]
    print(
        render_table(
            ["Target relation", "Candidate duplicate pairs"],
            sorted(report.candidate_pairs.items()),
            title="Duplicate-detection complexity report (custom module)",
        )
    )

    rows = []
    for label, efes in (("shipped modules", plain), ("+ duplicates", extended)):
        estimate = efes.estimate(scenario, ResultQuality.HIGH_QUALITY)
        rows.append((label, round(estimate.total_minutes, 1)))
    print()
    print(
        render_table(
            ["Configuration", "High-quality estimate [min]"],
            rows,
            title="Effort with and without the custom module",
        )
    )


if __name__ == "__main__":
    main()
