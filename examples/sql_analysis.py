"""Hand-driven analysis with SQL, cross-checking the detectors.

The paper's prototype "relies on simple SQL queries only for the analysis
of the data" (§6.2), and its ground truth was produced with hand-written
SQL.  This example analyses the running example the manual way — plain
SQL over the embedded engine — and verifies that the numbers agree with
what EFES's CSG-based structure detector reports automatically
(Table 3's 503 and 102).

    python examples/sql_analysis.py
"""

from repro import default_efes
from repro.reporting import render_table
from repro.scenarios import example_scenario


def main() -> None:
    scenario = example_scenario()
    source = scenario.sources[0]

    # The DBA's view of the problem, in SQL.
    multi_artist = source.query(
        "SELECT a.id, a.name, COUNT(DISTINCT c.artist) AS artists "
        "FROM albums a JOIN artist_credits c "
        "ON a.artist_list = c.artist_list "
        "GROUP BY a.id HAVING COUNT(DISTINCT c.artist) > 1 "
        "ORDER BY artists DESC LIMIT 5"
    )
    print(
        render_table(
            ["Album id", "Name", "Distinct artists"],
            [(row["id"], row["name"], row["artists"]) for row in multi_artist],
            title="Worst multi-artist offenders (SQL, top 5)",
        )
    )

    sql_multi = len(
        source.query(
            "SELECT a.id FROM albums a JOIN artist_credits c "
            "ON a.artist_list = c.artist_list "
            "GROUP BY a.id HAVING COUNT(DISTINCT c.artist) > 1"
        )
    )
    sql_detached = source.query(
        "SELECT COUNT(DISTINCT c.artist) AS n FROM artist_credits c "
        "LEFT JOIN albums a ON c.artist_list = a.artist_list "
        "WHERE a.id IS NULL"
    )[0]["n"]

    # The same numbers, found automatically by the structure detector.
    report = default_efes().assess(scenario)["structure"]
    detector = {
        violation.target_relationship: violation.violation_count
        for violation in report.violations
    }

    print()
    print(
        render_table(
            ["Conflict", "Hand-written SQL", "CSG detector"],
            [
                (
                    "records must have exactly one artist",
                    sql_multi,
                    detector["records->records.artist"],
                ),
                (
                    "artists must appear in a record",
                    sql_detached,
                    detector["records.artist->records"],
                ),
            ],
            title="Cross-check: manual SQL vs automatic detection (Table 3)",
        )
    )
    assert sql_multi == detector["records->records.artist"]
    assert sql_detached == detector["records.artist->records"]
    print()
    print("Both methods agree — the detector automates the DBA's queries.")


if __name__ == "__main__":
    main()
