"""Integrating a schemaless CSV dump (the *Completeness* requirement).

Section 3.1: "for some sources (e.g., data dumps), a schema definition
may be completely missing.  To achieve completeness, techniques for
schema reverse engineering and data profiling can reconstruct missing
schema descriptions and constraints from the data."

This example writes the running example's source out as bare CSV files,
loads them back with type inference, reconstructs keys / NOT NULLs /
foreign keys via data profiling, and then estimates the integration
effort against the usual target — no hand-written source schema involved.

    python examples/csv_dump_integration.py
"""

import tempfile
from pathlib import Path

from repro import ResultQuality, default_efes
from repro.profiling import reverse_engineer
from repro.relational import Database, Schema
from repro.relational.csv_io import dump_relation, load_relation
from repro.reporting import render_table
from repro.scenarios import example_scenario
from repro.scenarios.example import correspondences


def main() -> None:
    original = example_scenario()
    source = original.sources[0]

    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)

        # 1. Dump every source relation as a bare CSV file.
        for relation in source.schema.relations:
            dump_relation(
                source.table(relation.name), directory / f"{relation.name}.csv"
            )

        # 2. Reload with datatype inference (no schema given).
        instances = {
            path.stem: load_relation(path)
            for path in sorted(directory.glob("*.csv"))
        }

    reconstructed_schema = Schema(
        "source", relations=[inst.relation for inst in instances.values()]
    )
    reconstructed = Database(reconstructed_schema)
    for name, instance in instances.items():
        for row in instance:
            reconstructed.insert(name, row)

    # 3. Reverse-engineer the constraints from the data alone.
    constraints = reverse_engineer(reconstructed)
    for constraint in constraints:
        reconstructed_schema.add_constraint(constraint)
    print(
        render_table(
            ["Reconstructed constraint"],
            [(c.describe(),) for c in constraints],
            title="Schema reverse engineering from the CSV dump",
        )
    )

    # 4. Estimate as usual.
    scenario = type(original)(
        "csv-dump", reconstructed, original.target, correspondences()
    )
    efes = default_efes()
    reports = efes.assess(scenario)
    estimate = efes.estimate(scenario, ResultQuality.HIGH_QUALITY)
    print()
    print(
        render_table(
            ["Constraint in target schema", "Violations"],
            [
                (f"κ({v.target_relationship}) = {v.prescribed}", v.violation_count)
                for v in reports["structure"].violations
            ],
            title="Structural conflicts (from the reconstructed source)",
        )
    )
    print()
    print(f"High-quality effort estimate: {estimate.total_minutes:.0f} minutes")


if __name__ == "__main__":
    main()
