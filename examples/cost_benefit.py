"""Cost-benefit curves and marginal-gain source ranking (Section 7).

Implements the paper's future-work proposal: combine EFES's effort
estimates with a benefit model ("the more effort, the better the quality
of the result") and rank candidate integrations by benefit per hour, in
the spirit of Dong et al.'s marginal gain [9].

    python examples/cost_benefit.py
"""

from repro import default_efes
from repro.extensions import cost_benefit_curve, marginal_gains
from repro.reporting import render_table
from repro.scenarios import bibliographic_scenarios, example_scenario


def main() -> None:
    efes = default_efes()

    # Cost-benefit curve of the running example.
    curve = cost_benefit_curve(efes, example_scenario())
    print(
        render_table(
            ["Quality", "Estimated effort [min]", "Retained information"],
            [
                (
                    point.quality.label,
                    round(point.effort_minutes, 1),
                    f"{point.benefit:.1%}",
                )
                for point in curve
            ],
            title="Cost-benefit curve — running example",
        )
    )

    # Marginal-gain ranking over the bibliographic candidates.
    gains = marginal_gains(efes, bibliographic_scenarios())
    print()
    print(
        render_table(
            ["Candidate", "Effort [min]", "Benefit", "Benefit per hour"],
            [
                (
                    gain.scenario_name,
                    round(gain.effort_minutes, 1),
                    f"{gain.benefit:.1%}",
                    round(gain.gain_per_hour, 2),
                )
                for gain in gains
            ],
            title="Greedy source selection by marginal gain [9]",
        )
    )
    print()
    print(f"Integrate {gains[0].scenario_name} first — best value per hour.")


if __name__ == "__main__":
    main()
