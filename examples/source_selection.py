"""Source selection: rank integration candidates by estimated effort.

Section 1.2 / 3.3 of the paper: complexity reports are "useful for
several tasks, even if not interpreted as an input to calculate actual
effort.  Examples of application are source selection [9], i.e., given a
set of integration candidates, find the source with the best 'fit'".

The example targets the normalised bibliographic database (s2) and ranks
three candidate sources — s1 (dirty dump), s3 (citation-key style), and
another s2 instance (a sibling system) — by their estimated integration
effort.  Correspondences are generated automatically with the composite
schema matcher, so the whole pipeline is hands-free.

    python examples/source_selection.py
"""

from repro import ResultQuality, default_efes
from repro.matching import CompositeMatcher, CorrespondenceSet
from repro.reporting import render_table
from repro.scenarios.bibliographic import build_s1, build_s2, build_s3
from repro.scenarios.scenario import IntegrationScenario


def main() -> None:
    target = build_s2(seed=2024)
    candidates = {
        "s1 (denormalised dump)": build_s1(seed=1),
        "s3 (citation keys)": build_s3(seed=2),
        "s2' (sibling system)": _renamed(build_s2(seed=3), "s2_sibling"),
    }

    matcher = CompositeMatcher(threshold=0.55)
    efes = default_efes()
    rows = []
    for label, source in candidates.items():
        correspondences = CorrespondenceSet(matcher.match(source, target))
        scenario = IntegrationScenario(
            f"{source.name}->s2", source, target, correspondences
        )
        reports = efes.assess(scenario)
        estimate = efes.estimate(scenario, ResultQuality.HIGH_QUALITY)
        rows.append(
            (
                label,
                len(correspondences),
                reports["structure"].total_violations(),
                len(reports["values"].findings),
                round(estimate.total_minutes, 1),
            )
        )

    rows.sort(key=lambda row: row[-1])
    print(
        render_table(
            [
                "Candidate source",
                "Matched attrs",
                "Structural violations",
                "Value heterogeneities",
                "Estimated effort [min]",
            ],
            rows,
            title="Source selection: cheapest-to-integrate first",
        )
    )
    print()
    print(f"Best fit: {rows[0][0]} ({rows[0][-1]} estimated minutes)")


def _renamed(database, name):
    database.schema.name = name
    return database


if __name__ == "__main__":
    main()
