"""Reproduce the paper's evaluation: Figures 6 and 7 plus Section 6.2.

Runs the full pipeline — scenario generation, ground-truth integration by
the practitioner simulator, raw EFES and counting estimates, cross-domain
calibration — and renders both figures as ASCII stacked bars together
with the relative rmse of each estimator.

    python examples/estimate_vs_measured.py
"""

from repro.experiments import run_experiments
from repro.reporting import render_domain_figure


def main() -> None:
    report = run_experiments(seed=1)

    print(render_domain_figure(report.bibliographic))
    print()
    print(render_domain_figure(report.music))
    print()
    print(
        "Overall (paper: Efes 0.84 vs Counting 1.70): "
        f"Efes {report.overall_efes_rmse:.2f} vs "
        f"Counting {report.overall_counting_rmse:.2f} "
        f"— EFES is ×{report.overall_improvement:.1f} more accurate"
    )


if __name__ == "__main__":
    main()
