"""Quickstart: estimate the effort of the paper's running example.

Runs both EFES phases on the Figure 2 scenario — complexity assessment
(Tables 2, 3, 6) and effort estimation (Tables 5, 8) — for both expected
result qualities.

    python examples/quickstart.py
"""

from repro import ResultQuality, default_efes
from repro.reporting import render_table
from repro.scenarios import example_scenario


def main() -> None:
    scenario = example_scenario()
    efes = default_efes()

    # ------------------------------------------------------------------
    # Phase 1: complexity assessment (objective, context-free)
    # ------------------------------------------------------------------
    reports = efes.assess(scenario)

    print(
        render_table(
            ["Target table", "Source tables", "Attributes", "Primary key"],
            [c.as_row() for c in reports["mapping"].connections],
            title="Mapping complexity (Table 2)",
        )
    )
    print()
    print(
        render_table(
            ["Constraint in target schema", "Violation count"],
            [
                (f"κ({v.target_relationship}) = {v.prescribed}", v.violation_count)
                for v in reports["structure"].violations
            ],
            title="Structural conflicts (Table 3)",
        )
    )
    print()
    print(
        render_table(
            ["Value heterogeneity", "Attribute pair"],
            [
                (f.heterogeneity.value, f"{f.source_attribute} -> {f.target_attribute}")
                for f in reports["values"].findings
            ],
            title="Value heterogeneities (Table 6)",
        )
    )

    # ------------------------------------------------------------------
    # Phase 2: effort estimation (context-dependent)
    # ------------------------------------------------------------------
    for quality in (ResultQuality.LOW_EFFORT, ResultQuality.HIGH_QUALITY):
        estimate = efes.estimate(scenario, quality)
        print()
        print(
            render_table(
                ["Task", "Effort [min]"],
                [
                    (entry.task.describe(), round(entry.minutes, 1))
                    for entry in estimate.entries
                ],
                title=f"Effort estimate — {quality.label}",
            )
        )
        for category, minutes in estimate.by_category().items():
            print(f"  {category.value:22s} {minutes:8.1f} min")
        print(f"  {'Total':22s} {estimate.total_minutes:8.1f} min")


if __name__ == "__main__":
    main()
